//! Property tests for the incremental coverage engine: after any insert (or
//! mixed insert/delete) stream, the maintained MUP set must equal a batch
//! DEEPDIVER run over the materialized dataset — for absolute thresholds
//! (pure delta path) and for rate thresholds (whose resolved τ shifts as
//! the dataset grows or shrinks, forcing re-resolution and occasional
//! full-recompute fallbacks). The same equivalences are asserted for the
//! engine over a [`ShardedOracle`] backend with a random shard count, and
//! for snapshot round trips (including the compacted v2 on-disk form).

use mithra::index::{CoverageBackend, ShardedOracle};
use mithra::prelude::*;
use mithra::service::oplog::{read_entries_from, LoggedOp, OpLog, SyncPolicy};
use mithra::service::replica::replay_entries;
use mithra::service::snapshot::{
    parse_snapshot, parse_snapshot_anchored, snapshot_string, snapshot_string_anchored,
};
use proptest::prelude::*;

/// Row multiset — snapshot compaction and shard routing do not preserve row
/// order, only the multiset.
fn sorted_rows(ds: &Dataset) -> Vec<Vec<u8>> {
    let mut rows: Vec<Vec<u8>> = ds.rows().map(<[u8]>::to_vec).collect();
    rows.sort();
    rows
}

/// A random shape, base dataset, and insert stream over a shared schema:
/// 2–4 attributes of cardinality 2–4, 0–40 base rows, 1–60 streamed rows.
fn workload_strategy() -> impl Strategy<Value = (Dataset, Vec<Vec<u8>>)> {
    (2usize..=4, 2u8..=4)
        .prop_flat_map(|(d, c)| {
            let base = proptest::collection::vec(proptest::collection::vec(0..c, d), 0..40);
            let stream = proptest::collection::vec(proptest::collection::vec(0..c, d), 1..60);
            (Just((d, c)), base, stream)
        })
        .prop_map(|((d, c), base, stream)| {
            let schema = Schema::with_cardinalities(&vec![c as usize; d]).unwrap();
            (Dataset::from_rows(schema, &base).unwrap(), stream)
        })
}

/// Applies the stream through the engine in mixed batch sizes (1, 2, 3, …)
/// so both `insert` and `insert_batch` paths are exercised, asserting
/// equivalence with the batch algorithm at every step. Generic over the
/// coverage backend and its shard layout.
fn assert_engine_tracks_batch<B: CoverageBackend>(
    base: Dataset,
    stream: &[Vec<u8>],
    threshold: Threshold,
    shards: usize,
) -> Result<(), TestCaseError> {
    let mut engine = CoverageEngine::<B>::with_shards(base.clone(), threshold, shards).unwrap();
    let mut materialized = base;
    let mut cursor = 0usize;
    let mut batch_size = 1usize;
    while cursor < stream.len() {
        let end = (cursor + batch_size).min(stream.len());
        let chunk = &stream[cursor..end];
        if chunk.len() == 1 {
            engine.insert(&chunk[0]).unwrap();
        } else {
            engine.insert_batch(chunk).unwrap();
        }
        for row in chunk {
            materialized.push_row(row).unwrap();
        }
        let mut expected = DeepDiver::default()
            .find_mups(&materialized, threshold)
            .unwrap();
        expected.sort();
        prop_assert_eq!(
            engine.mups(),
            expected.as_slice(),
            "divergence after {} rows (threshold {:?})",
            materialized.len(),
            threshold
        );
        prop_assert_eq!(
            engine.tau(),
            threshold.resolve(materialized.len() as u64).unwrap()
        );
        cursor = end;
        batch_size = batch_size % 5 + 1;
    }
    Ok(())
}

/// A random shape, base dataset, and *mixed* op stream: each op is
/// `(selector, row, delete_seed)` — a selector of 0 or 1 deletes a
/// currently-present row chosen by the seed (falling back to an insert when
/// the dataset is empty); anything else inserts `row`.
fn mixed_workload_strategy() -> impl Strategy<Value = (Dataset, Vec<(u8, Vec<u8>, u16)>)> {
    (2usize..=3, 2u8..=3)
        .prop_flat_map(|(d, c)| {
            let base = proptest::collection::vec(proptest::collection::vec(0..c, d), 0..25);
            let ops = proptest::collection::vec(
                (0u8..6, proptest::collection::vec(0..c, d), 0u16..1000),
                1..40,
            );
            (Just((d, c)), base, ops)
        })
        .prop_map(|((d, c), base, ops)| {
            let schema = Schema::with_cardinalities(&vec![c as usize; d]).unwrap();
            (Dataset::from_rows(schema, &base).unwrap(), ops)
        })
}

/// Replays a mixed insert/delete stream through the engine, asserting
/// equivalence with batch DEEPDIVER over the materialized multiset after
/// every op. Deletes arrive through `remove` and (for pairs of consecutive
/// deletes) `remove_batch`, so both entry points are exercised.
fn assert_engine_tracks_batch_mixed<B: CoverageBackend>(
    base: Dataset,
    ops: &[(u8, Vec<u8>, u16)],
    threshold: Threshold,
    shards: usize,
) -> Result<(), TestCaseError> {
    let schema = base.schema().clone();
    let mut engine = CoverageEngine::<B>::with_shards(base.clone(), threshold, shards).unwrap();
    let mut rows: Vec<Vec<u8>> = base.rows().map(<[u8]>::to_vec).collect();
    for (selector, row, delete_seed) in ops {
        let delete = *selector < 2 && !rows.is_empty();
        if delete {
            let victim = rows.swap_remove(*delete_seed as usize % rows.len());
            if *selector == 0 && !rows.is_empty() {
                // Two-victim batch through remove_batch.
                let second = rows.swap_remove(*delete_seed as usize % rows.len());
                engine.remove_batch(&[victim, second]).unwrap();
            } else {
                engine.remove(&victim).unwrap();
            }
        } else {
            engine.insert(row).unwrap();
            rows.push(row.clone());
        }
        let materialized = Dataset::from_rows(schema.clone(), &rows).unwrap();
        let mut expected = DeepDiver::default()
            .find_mups(&materialized, threshold)
            .unwrap();
        expected.sort();
        prop_assert_eq!(
            engine.mups(),
            expected.as_slice(),
            "divergence at {} rows after {} (threshold {:?})",
            rows.len(),
            if delete { "a delete" } else { "an insert" },
            threshold
        );
        prop_assert_eq!(engine.tau(), threshold.resolve(rows.len() as u64).unwrap());
    }
    Ok(())
}

/// A random shape plus a grow/insert op stream: a selector of 0 grows a
/// random attribute's value dictionary (bounded so the pattern space stays
/// testable); anything else inserts the row template mapped into the
/// *current* grown value ranges, so streamed rows may carry grown codes.
fn grow_workload_strategy() -> impl Strategy<Value = (Dataset, Vec<(u8, u8, Vec<u8>)>)> {
    (2usize..=3, 2u8..=3)
        .prop_flat_map(|(d, c)| {
            let base = proptest::collection::vec(proptest::collection::vec(0..c, d), 0..25);
            let ops = proptest::collection::vec(
                (0u8..4, 0u8..8, proptest::collection::vec(0u8..=u8::MAX, d)),
                1..35,
            );
            (Just((d, c)), base, ops)
        })
        .prop_map(|((d, c), base, ops)| {
            let schema = Schema::with_cardinalities(&vec![c as usize; d]).unwrap();
            (Dataset::from_rows(schema, &base).unwrap(), ops)
        })
}

/// Upper bound on a grown attribute's cardinality in the property tests —
/// keeps the pattern graph small enough for the per-op batch re-audit.
const GROW_CARD_CAP: usize = 6;

/// Replays a grow/insert stream through the engine, asserting after every
/// op that the maintained MUP set equals a batch DeepDiver run over the
/// rebuilt *grown* dataset (same cardinalities, same row multiset).
fn assert_grow_stream_tracks_batch<B: CoverageBackend>(
    base: Dataset,
    ops: &[(u8, u8, Vec<u8>)],
    threshold: Threshold,
    shards: usize,
) -> Result<(), TestCaseError> {
    let mut engine = CoverageEngine::<B>::with_shards(base.clone(), threshold, shards).unwrap();
    let mut cards: Vec<usize> = base
        .schema()
        .cardinalities()
        .iter()
        .map(|&c| c as usize)
        .collect();
    let mut rows: Vec<Vec<u8>> = base.rows().map(<[u8]>::to_vec).collect();
    let mut grown = vec![0usize; cards.len()];
    for (selector, attr_choice, template) in ops {
        let attr = *attr_choice as usize % cards.len();
        if *selector == 0 && cards[attr] < GROW_CARD_CAP {
            let code = engine
                .grow_value(attr, format!("g{attr}-{}", grown[attr]))
                .unwrap();
            prop_assert_eq!(
                code as usize,
                cards[attr],
                "new code is the old cardinality"
            );
            grown[attr] += 1;
            cards[attr] += 1;
        } else {
            let row: Vec<u8> = template
                .iter()
                .zip(&cards)
                .map(|(&t, &c)| t % c as u8)
                .collect();
            engine.insert(&row).unwrap();
            rows.push(row);
        }
        let schema = Schema::with_cardinalities(&cards).unwrap();
        let materialized = Dataset::from_rows(schema, &rows).unwrap();
        let mut expected = DeepDiver::default()
            .find_mups(&materialized, threshold)
            .unwrap();
        expected.sort();
        prop_assert_eq!(
            engine.mups(),
            expected.as_slice(),
            "divergence at {} rows / cardinalities {:?} (threshold {:?})",
            rows.len(),
            cards,
            threshold
        );
        prop_assert_eq!(engine.tau(), threshold.resolve(rows.len() as u64).unwrap());
    }
    let total_grown: u64 = engine.dictionary_growth().iter().sum();
    prop_assert_eq!(total_grown as usize, grown.iter().sum::<usize>());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Absolute thresholds: the delta path alone must track batch discovery.
    #[test]
    fn engine_matches_deepdiver_under_count_threshold(
        workload in workload_strategy(),
        tau in 1u64..12,
    ) {
        let (base, stream) = workload;
        assert_engine_tracks_batch::<CoverageOracle>(base, &stream, Threshold::Count(tau), 1)?;
    }

    /// Rate thresholds: τ = max(1, round(f·n)) moves as n grows; the engine
    /// must re-resolve it on every batch and stay equivalent.
    #[test]
    fn engine_matches_deepdiver_under_rate_threshold(
        workload in workload_strategy(),
        rate_milli in 5u64..300,
    ) {
        let (base, stream) = workload;
        let rate = rate_milli as f64 / 1000.0;
        assert_engine_tracks_batch::<CoverageOracle>(base, &stream, Threshold::Fraction(rate), 1)?;
    }

    /// Mixed insert/delete streams under absolute thresholds: the insert
    /// and delete delta paths must compose to exactly batch discovery.
    #[test]
    fn engine_matches_deepdiver_under_mixed_stream_count_threshold(
        workload in mixed_workload_strategy(),
        tau in 1u64..10,
    ) {
        let (base, ops) = workload;
        assert_engine_tracks_batch_mixed::<CoverageOracle>(base, &ops, Threshold::Count(tau), 1)?;
    }

    /// Mixed streams under rate thresholds: τ steps up on growth and *down*
    /// on shrinkage; both directions must trigger sound fallbacks.
    #[test]
    fn engine_matches_deepdiver_under_mixed_stream_rate_threshold(
        workload in mixed_workload_strategy(),
        rate_milli in 5u64..300,
    ) {
        let (base, ops) = workload;
        let rate = rate_milli as f64 / 1000.0;
        assert_engine_tracks_batch_mixed::<CoverageOracle>(base, &ops, Threshold::Fraction(rate), 1)?;
    }

    /// The sharded backend with a random shard count must behave exactly
    /// like the single-shard engine — and like batch DEEPDIVER — over
    /// arbitrary insert streams.
    #[test]
    fn sharded_engine_matches_deepdiver_under_count_threshold(
        workload in workload_strategy(),
        tau in 1u64..12,
        shards in 1usize..=4,
    ) {
        let (base, stream) = workload;
        assert_engine_tracks_batch::<ShardedOracle>(base, &stream, Threshold::Count(tau), shards)?;
    }

    /// …and over arbitrary *mixed* insert/delete streams, where deletes must
    /// find their victim row in whichever shard holds a copy.
    #[test]
    fn sharded_engine_matches_deepdiver_under_mixed_stream(
        workload in mixed_workload_strategy(),
        tau in 1u64..10,
        shards in 1usize..=4,
    ) {
        let (base, ops) = workload;
        assert_engine_tracks_batch_mixed::<ShardedOracle>(base, &ops, Threshold::Count(tau), shards)?;
    }

    /// Sharded engines under rate thresholds: the full-recompute fallback
    /// runs DEEPDIVER *over the sharded backend* and must stay equivalent.
    #[test]
    fn sharded_engine_matches_deepdiver_under_mixed_stream_rate_threshold(
        workload in mixed_workload_strategy(),
        rate_milli in 5u64..300,
        shards in 1usize..=4,
    ) {
        let (base, ops) = workload;
        let rate = rate_milli as f64 / 1000.0;
        assert_engine_tracks_batch_mixed::<ShardedOracle>(base, &ops, Threshold::Fraction(rate), shards)?;
    }

    /// Dictionary growth interleaved with inserts: the O(1) growth delta
    /// plus the ordinary insert delta must track batch discovery over the
    /// rebuilt grown dataset — single-shard backend, count thresholds.
    #[test]
    fn grow_stream_matches_deepdiver_under_count_threshold(
        workload in grow_workload_strategy(),
        tau in 1u64..10,
    ) {
        let (base, ops) = workload;
        assert_grow_stream_tracks_batch::<CoverageOracle>(base, &ops, Threshold::Count(tau), 1)?;
    }

    /// …and under rate thresholds: growth never moves n (so never steps τ),
    /// while the interleaved inserts do — both deltas must compose.
    #[test]
    fn grow_stream_matches_deepdiver_under_rate_threshold(
        workload in grow_workload_strategy(),
        rate_milli in 5u64..300,
    ) {
        let (base, ops) = workload;
        let rate = rate_milli as f64 / 1000.0;
        assert_grow_stream_tracks_batch::<CoverageOracle>(base, &ops, Threshold::Fraction(rate), 1)?;
    }

    /// The sharded backend grows every shard in lock-step and must stay
    /// equivalent to batch discovery over the grown dataset.
    #[test]
    fn sharded_grow_stream_matches_deepdiver_under_count_threshold(
        workload in grow_workload_strategy(),
        tau in 1u64..10,
        shards in 1usize..=4,
    ) {
        let (base, ops) = workload;
        assert_grow_stream_tracks_batch::<ShardedOracle>(base, &ops, Threshold::Count(tau), shards)?;
    }

    /// Sharded backend, rate thresholds: the full-recompute fallback (when
    /// an insert steps τ) runs DeepDiver over the *grown* sharded oracle.
    #[test]
    fn sharded_grow_stream_matches_deepdiver_under_rate_threshold(
        workload in grow_workload_strategy(),
        rate_milli in 5u64..300,
        shards in 1usize..=4,
    ) {
        let (base, ops) = workload;
        let rate = rate_milli as f64 / 1000.0;
        assert_grow_stream_tracks_batch::<ShardedOracle>(base, &ops, Threshold::Fraction(rate), shards)?;
    }

    /// Snapshot round trip at an arbitrary point in a stream: the restored
    /// engine serves identical MUPs/τ/stats and keeps tracking batch
    /// discovery afterwards.
    #[test]
    fn snapshot_round_trip_preserves_engine_equivalence(
        workload in mixed_workload_strategy(),
        tau in 1u64..10,
    ) {
        let (base, ops) = workload;
        let threshold = Threshold::Count(tau);
        let arity = base.arity();
        let mut engine = CoverageEngine::new(base.clone(), threshold).unwrap();
        let mut rows: Vec<Vec<u8>> = base.rows().map(<[u8]>::to_vec).collect();
        let mut grown = 0usize;
        for (selector, row, delete_seed) in &ops {
            if *selector < 2 && !rows.is_empty() {
                let victim = rows.swap_remove(*delete_seed as usize % rows.len());
                engine.remove(&victim).unwrap();
            } else if *selector == 2 && grown < 3 {
                // Snapshot v3 must carry grown dictionaries (incl. values
                // with zero rows) and the growth counters.
                let attr = *delete_seed as usize % arity;
                engine.grow_value(attr, format!("grown-{grown}")).unwrap();
                grown += 1;
            } else {
                engine.insert(row).unwrap();
                rows.push(row.clone());
            }
        }
        let restored: CoverageEngine = parse_snapshot(&snapshot_string(&engine).unwrap()).unwrap();
        prop_assert_eq!(restored.mups(), engine.mups());
        prop_assert_eq!(restored.tau(), engine.tau());
        prop_assert_eq!(restored.stats(), engine.stats());
        prop_assert_eq!(restored.dictionary_growth(), engine.dictionary_growth());
        prop_assert_eq!(
            restored.dataset().schema(),
            engine.dataset().schema(),
            "grown dictionaries must round-trip"
        );
        prop_assert_eq!(sorted_rows(restored.dataset()), sorted_rows(engine.dataset()));
    }

    /// Snapshot compaction (v2 stores unique combos + counts): a heavily
    /// duplicated dataset must round-trip exactly AND land on disk in far
    /// fewer bytes than the raw-rows encoding needs (≥ 2d+2 bytes per row).
    #[test]
    fn compacted_snapshots_round_trip_and_shrink(
        shape in (2usize..=3, 2u8..=3).prop_flat_map(|(d, c)| {
            let combos = proptest::collection::vec(
                proptest::collection::vec(0..c, d), 1..5);
            (Just((d, c)), combos, 200usize..400)
        }),
    ) {
        let ((d, c), combos, n) = shape;
        let schema = Schema::with_cardinalities(&vec![c as usize; d]).unwrap();
        let rows: Vec<Vec<u8>> = (0..n).map(|i| combos[i % combos.len()].clone()).collect();
        let base = Dataset::from_rows(schema, &rows).unwrap();
        let engine = CoverageEngine::new(base, Threshold::Count(1)).unwrap();
        let text = snapshot_string(&engine).unwrap();
        let raw_rows_lower_bound = n * (2 * d + 2);
        prop_assert!(
            text.len() < raw_rows_lower_bound,
            "compacted snapshot ({} bytes) must undercut raw rows (≥ {} bytes, {} rows)",
            text.len(), raw_rows_lower_bound, n
        );
        let restored: CoverageEngine = parse_snapshot(&text).unwrap();
        prop_assert_eq!(restored.mups(), engine.mups());
        prop_assert_eq!(sorted_rows(restored.dataset()), sorted_rows(engine.dataset()));
    }
}

/// Deterministic regression: a rate stream crossing many τ steps, checked
/// against the count of full recomputes actually triggered (the fallback
/// must fire, but only when the resolved τ moves).
#[test]
fn rate_threshold_fallbacks_are_bounded_by_tau_steps() {
    let schema = Schema::with_cardinalities(&[2, 3]).unwrap();
    let base = Dataset::from_rows(schema, &[vec![0, 0], vec![1, 1]]).unwrap();
    let threshold = Threshold::Fraction(0.25); // τ steps every 4 rows
    let mut engine = CoverageEngine::new(base.clone(), threshold).unwrap();
    let mut materialized = base;
    let mut tau_steps = 0u64;
    let mut tau = engine.tau();
    for i in 0..40usize {
        let row = vec![(i % 2) as u8, (i % 3) as u8];
        engine.insert(&row).unwrap();
        materialized.push_row(&row).unwrap();
        let resolved = threshold.resolve(materialized.len() as u64).unwrap();
        if resolved != tau {
            tau_steps += 1;
            tau = resolved;
        }
    }
    assert_eq!(engine.stats().full_recomputes, tau_steps);
    assert!(tau_steps > 0, "stream must actually cross τ steps");
    let mut expected = DeepDiver::default()
        .find_mups(&materialized, threshold)
        .unwrap();
    expected.sort();
    assert_eq!(engine.mups(), expected.as_slice());
}

/// A unique scratch path for an op-log file (proptest runs cases
/// concurrently across test binaries, so pid + counter both matter).
fn scratch_log(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "mithra-props-{tag}-{}-{}.oplog",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Renders an encoded row back to the raw strings a client would have sent
/// (the op log stores raw values, not codes).
fn raw_row(schema: &Schema, row: &[u8]) -> Vec<String> {
    row.iter()
        .enumerate()
        .map(|(i, &v)| schema.attribute(i).value_name(v))
        .collect()
}

/// Drives a mixed mutation stream through a live engine while logging every
/// op to a real on-disk [`OpLog`]; snapshots (anchored) after `cut` ops;
/// then recovers a second engine as a restart would — snapshot + replay of
/// the log tail past the anchor — and asserts full state equivalence.
fn oplog_replay_matches_live<B: CoverageBackend>(
    base: &Dataset,
    ops: &[(u8, Vec<u8>, u16)],
    cut: usize,
    tau: u64,
    tag: &str,
) -> Result<(), TestCaseError> {
    let path = scratch_log(tag);
    let mut log = OpLog::open(&path, SyncPolicy::Off).unwrap();
    let threshold = Threshold::Count(tau);
    let arity = base.arity();
    let mut engine = CoverageEngine::<B>::with_shards(base.clone(), threshold, 2).unwrap();
    let mut rows: Vec<Vec<u8>> = base.rows().map(<[u8]>::to_vec).collect();
    let mut grown = 0usize;
    let mut snapshot: Option<(String, u64)> = None;
    let mut take_cut = |engine: &CoverageEngine<B>, log: &OpLog, applied: usize| {
        if applied == cut {
            snapshot = Some((
                snapshot_string_anchored(engine, log.last_seq()).unwrap(),
                log.last_seq(),
            ));
        }
    };
    take_cut(&engine, &log, 0);
    for (applied, (selector, row, delete_seed)) in ops.iter().enumerate() {
        // Every iteration applies exactly one engine mutation and logs it,
        // mirroring what the serving path does after each accepted request.
        if *selector < 2 && !rows.is_empty() {
            let victim = rows.swap_remove(*delete_seed as usize % rows.len());
            let raw = raw_row(engine.dataset().schema(), &victim);
            engine.remove(&victim).unwrap();
            log.append(LoggedOp::Delete { rows: vec![raw] }).unwrap();
        } else if *selector == 2 && grown < 3 {
            let attr = *delete_seed as usize % arity;
            let name = engine.dataset().schema().attribute(attr).name().to_string();
            engine.grow_value(attr, format!("grown-{grown}")).unwrap();
            log.append(LoggedOp::Grow {
                attribute: name,
                value: format!("grown-{grown}"),
            })
            .unwrap();
            grown += 1;
        } else {
            let raw = raw_row(engine.dataset().schema(), row);
            engine.insert(row).unwrap();
            rows.push(row.clone());
            log.append(LoggedOp::Insert { rows: vec![raw] }).unwrap();
        }
        take_cut(&engine, &log, applied + 1);
    }
    log.sync_batch().unwrap();
    let final_seq = log.last_seq();
    drop(log);

    let (text, expected_anchor) = snapshot.expect("cut is always within 0..=ops.len()");
    let (mut recovered, anchor) = parse_snapshot_anchored::<B>(&text, None).unwrap();
    prop_assert_eq!(anchor, expected_anchor, "snapshot must carry its anchor");
    let tail = read_entries_from(&path, anchor + 1).unwrap();
    let applied = replay_entries(&mut recovered, &tail, anchor).unwrap();
    std::fs::remove_file(&path).ok();
    prop_assert_eq!(applied, final_seq, "replay must reach the log head");

    prop_assert_eq!(recovered.mups(), engine.mups());
    prop_assert_eq!(recovered.tau(), engine.tau());
    prop_assert_eq!(recovered.dictionary_growth(), engine.dictionary_growth());
    prop_assert_eq!(
        recovered.dataset().schema(),
        engine.dataset().schema(),
        "replayed grows must rebuild the grown dictionaries"
    );
    prop_assert_eq!(
        sorted_rows(recovered.dataset()),
        sorted_rows(engine.dataset())
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Crash-recovery equivalence: for any mixed mutation stream and any
    /// snapshot point within it, `snapshot + op-log tail replay` rebuilds an
    /// engine indistinguishable from the one that never went down — MUPs,
    /// τ, grown dictionaries, and the row multiset all match. Checked for
    /// both oracle backends (followers may run either).
    #[test]
    fn snapshot_plus_oplog_tail_replay_matches_the_live_engine(
        workload in mixed_workload_strategy(),
        cut_seed in 0usize..1000,
        tau in 1u64..6,
    ) {
        let (base, ops) = workload;
        let cut = cut_seed % (ops.len() + 1);
        oplog_replay_matches_live::<CoverageOracle>(&base, &ops, cut, tau, "single")?;
        oplog_replay_matches_live::<ShardedOracle>(&base, &ops, cut, tau, "sharded")?;
    }
}

/// A kill -9 mid-append leaves a torn final line. Recovery must keep every
/// complete entry, drop the torn bytes, and continue numbering densely —
/// end to end through the same snapshot + tail replay path a restart uses.
#[test]
fn torn_oplog_tail_recovers_to_the_last_complete_entry() {
    use std::io::Write;

    let path = scratch_log("torn");
    let schema = Schema::with_cardinalities(&[2, 2]).unwrap();
    let base = Dataset::from_rows(schema, &[vec![0, 0]]).unwrap();
    let mut engine = CoverageEngine::new(base, Threshold::Count(1)).unwrap();
    let text = snapshot_string_anchored(&engine, 0).unwrap();

    let mut log = OpLog::open(&path, SyncPolicy::Always).unwrap();
    for row in [vec![0u8, 1], vec![1, 0], vec![1, 1]] {
        let raw = raw_row(engine.dataset().schema(), &row);
        engine.insert(&row).unwrap();
        log.append(LoggedOp::Insert { rows: vec![raw] }).unwrap();
    }
    drop(log);

    // Simulate the crash: a fourth entry begins but the write is cut short.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    file.write_all(br#"{"v":1,"seq":4,"op":{"insert":"#)
        .unwrap();
    drop(file);

    // The read-side scan stops at the last complete entry…
    let entries = read_entries_from(&path, 1).unwrap();
    assert_eq!(entries.len(), 3);
    assert_eq!(entries.last().unwrap().seq, 3);

    // …and a recovering engine lands exactly on the pre-crash state.
    let (mut recovered, anchor) = parse_snapshot_anchored::<CoverageOracle>(&text, None).unwrap();
    assert_eq!(anchor, 0);
    let applied = replay_entries(&mut recovered, &entries, anchor).unwrap();
    assert_eq!(applied, 3);
    assert_eq!(recovered.mups(), engine.mups());
    assert_eq!(
        sorted_rows(recovered.dataset()),
        sorted_rows(engine.dataset())
    );

    // Reopening for writes drops the torn bytes and keeps numbering dense.
    let mut log = OpLog::open(&path, SyncPolicy::Batch).unwrap();
    assert_eq!(log.last_seq(), 3);
    let seq = log
        .append(LoggedOp::Grow {
            attribute: "a0".into(),
            value: "extra".into(),
        })
        .unwrap();
    assert_eq!(seq, 4);
    drop(log);
    assert_eq!(read_entries_from(&path, 1).unwrap().len(), 4);
    std::fs::remove_file(&path).ok();
}
