//! Integration drive of the event-driven TCP front end (`--io event`): one
//! readiness loop multiplexing every connection, incremental NDJSON frame
//! decoding, cross-connection insert coalescing, and admission control. The
//! blocking pool and the in-process [`handle_line`] path serve as the
//! reference — the event loop must produce byte-identical responses.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mithra::prelude::*;
use mithra::service::protocol::Json;
use mithra::service::server::MAX_LINE_BYTES;
use mithra::service::{handle_line, serve, IoMode, ServeOptions};
use proptest::prelude::*;

/// Same COMPAS-flavored fixture as `serve_protocol.rs`, so both suites
/// exercise identical value dictionaries and frontier shapes.
fn engine() -> CoverageEngine {
    let schema = Schema::new(vec![
        Attribute::with_values("sex", ["m", "f"]).unwrap(),
        Attribute::with_values("race", ["white", "black", "hispanic"]).unwrap(),
        Attribute::with_values("age", ["young", "old"]).unwrap(),
    ])
    .unwrap();
    let rows = [
        vec![0, 0, 0],
        vec![0, 0, 1],
        vec![0, 1, 0],
        vec![1, 0, 0],
        vec![1, 0, 1],
        vec![0, 2, 0],
    ];
    let ds = Dataset::from_rows(schema, &rows).unwrap();
    CoverageEngine::new(ds, Threshold::Count(1)).unwrap()
}

/// Binds an ephemeral port and serves the fixture engine on a background
/// thread, returning the address and a shared handle onto the engine.
fn spawn(options: ServeOptions) -> (SocketAddr, Arc<Mutex<CoverageEngine>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let shared = Arc::new(Mutex::new(engine()));
    let server = Arc::clone(&shared);
    std::thread::spawn(move || {
        let _ = serve(server, options, listener);
    });
    (addr, shared)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Writes `payload` in one syscall and reads exactly `n` response lines.
fn ask_pipelined(stream: &mut TcpStream, payload: &str, n: usize) -> Vec<String> {
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (0..n)
        .map(|i| {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap_or_else(|e| {
                panic!("response {i}/{n} never arrived: {e}");
            });
            line.trim_end().to_string()
        })
        .collect()
}

/// Pipelined requests on one connection come back one response per request,
/// in request order, each echoing its caller-chosen `id`.
#[test]
fn pipelined_requests_answer_in_order_with_ids() {
    let (addr, _) = spawn(ServeOptions::new());
    let mut stream = connect(addr);
    let script = concat!(
        "{\"id\":7,\"op\":\"insert\",\"row\":[\"f\",\"black\",\"young\"]}\n",
        "{\"id\":\"second\",\"op\":\"coverage\",\"pattern\":\"11X\"}\n",
        "{\"id\":9,\"op\":\"mups\",\"limit\":2}\n",
    );
    let responses = ask_pipelined(&mut stream, script, 3);
    assert_eq!(
        responses[0],
        r#"{"ok":true,"id":7,"op":"insert","inserted":1,"rows":7}"#
    );
    let doc = Json::parse(&responses[1]).unwrap();
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("second"));
    assert_eq!(doc.get("covered").and_then(Json::as_bool), Some(true));
    let doc = Json::parse(&responses[2]).unwrap();
    assert_eq!(doc.get("id").and_then(Json::as_u64), Some(9));
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
}

/// A request delivered one byte at a time — worst-case fragmentation — is
/// reassembled across readiness events and answered exactly once.
#[test]
fn fragmented_frames_reassemble_across_reads() {
    let (addr, _) = spawn(ServeOptions::new());
    let mut stream = connect(addr);
    let line = "{\"id\":1,\"op\":\"coverage\",\"pattern\":\"0XX\"}\n";
    for byte in line.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
    }
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let doc = Json::parse(response.trim()).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("coverage").and_then(Json::as_u64), Some(4));
}

/// An oversized line is rejected with `line_too_long` in bounded memory and
/// the connection resynchronizes at the next newline — the following
/// request on the same connection is served normally.
#[test]
fn oversized_lines_error_then_resync() {
    let (addr, _) = spawn(ServeOptions::new());
    let mut stream = connect(addr);
    let mut payload = String::with_capacity(MAX_LINE_BYTES + 128);
    payload.push_str("{\"op\":\"mups\",\"junk\":\"");
    payload.push_str(&"a".repeat(MAX_LINE_BYTES + 16));
    payload.push_str("\"}\n{\"id\":2,\"op\":\"stats\"}\n");
    let responses = ask_pipelined(&mut stream, &payload, 2);
    let doc = Json::parse(&responses[0]).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("code").and_then(Json::as_str),
        Some("line_too_long")
    );
    let doc = Json::parse(&responses[1]).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("id").and_then(Json::as_u64), Some(2));
}

/// A client that pipelines a batch of inserts and vanishes without reading
/// a single response must not wedge the loop: the writes it managed to send
/// still land, and the engine stays consistent with a batch audit.
#[test]
fn mid_batch_disconnect_leaves_the_engine_consistent() {
    let (addr, shared) = spawn(ServeOptions::new());
    {
        let mut stream = connect(addr);
        let burst: String = (0..8)
            .map(|_| "{\"op\":\"insert\",\"row\":[\"f\",\"hispanic\",\"old\"]}\n")
            .collect();
        stream.write_all(burst.as_bytes()).unwrap();
        stream.flush().unwrap();
        // Dropped here: FIN after the payload, no response ever read.
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        {
            let engine = shared.lock().unwrap();
            if engine.dataset().len() == 6 + 8 {
                let batch = CoverageReport::audit(engine.dataset(), Threshold::Count(1)).unwrap();
                assert_eq!(engine.mups(), batch.mups.as_slice());
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "inserts sent before the disconnect never landed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The front end is still alive for the next client.
    let mut stream = connect(addr);
    let responses = ask_pipelined(&mut stream, "{\"op\":\"mups\"}\n", 1);
    assert!(responses[0].starts_with("{\"ok\":true"), "{}", responses[0]);
}

/// The event loop and the blocking pool are interchangeable on the wire:
/// an identical pipelined script (mutations, queries, and errors) yields
/// byte-identical response streams, which also match `handle_line`.
#[test]
fn event_and_blocking_front_ends_serve_identical_bytes() {
    let script = [
        r#"{"id":1,"op":"insert","rows":[["f","black","young"],["f","hispanic","old"]]}"#,
        r#"{"id":2,"op":"coverage","pattern":"11X"}"#,
        r#"{"op":"mups"}"#,
        r#"{"id":3,"op":"insert","row":["m","martian","old"]}"#,
        r#"{"id":4,"op":"delete","row":["f","black","young"]}"#,
        "not json at all",
        r#"{"id":5,"op":"coverage","pattern":"X0X"}"#,
    ];
    let mut reference = engine();
    let options = ServeOptions::new();
    let expected: Vec<String> = script
        .iter()
        .map(|line| handle_line(&mut reference, &options, line))
        .collect();

    let payload: String = script.iter().map(|l| format!("{l}\n")).collect();
    for io in [IoMode::Event, IoMode::Blocking] {
        let (addr, _) = spawn(ServeOptions::new().with_io(io).with_workers(2));
        let mut stream = connect(addr);
        let responses = ask_pipelined(&mut stream, &payload, script.len());
        assert_eq!(responses, expected, "front end {io:?} diverged");
    }
}

fn io_counter(stats: &Json, key: &str) -> u64 {
    stats
        .get("io")
        .and_then(|io| io.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats io section missing `{key}`"))
}

/// Inserts pipelined into one readiness tick coalesce into fewer engine
/// batches than requests — observable through the `stats` io counters, with
/// every request still answered individually and row counts advancing one
/// insert at a time.
#[test]
fn pipelined_insert_bursts_coalesce_into_fewer_engine_batches() {
    let (addr, _) = spawn(ServeOptions::new());
    let mut stream = connect(addr);
    let per_burst = 32usize;
    let burst: String = (0..per_burst)
        .map(|i| format!("{{\"id\":{i},\"op\":\"insert\",\"row\":[\"m\",\"black\",\"old\"]}}\n"))
        .collect();
    let mut coalesced = false;
    for attempt in 0..10 {
        let responses = ask_pipelined(&mut stream, &burst, per_burst);
        for (i, response) in responses.iter().enumerate() {
            let expected_rows = 6 + attempt * per_burst + i + 1;
            assert_eq!(
                *response,
                format!(
                    "{{\"ok\":true,\"id\":{i},\"op\":\"insert\",\"inserted\":1,\"rows\":{expected_rows}}}"
                ),
            );
        }
        let stats = ask_pipelined(&mut stream, "{\"op\":\"stats\"}\n", 1);
        let doc = Json::parse(&stats[0]).unwrap();
        if io_counter(&doc, "coalesced_inserts") > 0 {
            assert!(
                io_counter(&doc, "insert_engine_batches") < io_counter(&doc, "insert_requests"),
                "coalescing must collapse engine batches: {}",
                stats[0]
            );
            coalesced = true;
            break;
        }
    }
    assert!(
        coalesced,
        "ten pipelined bursts of {per_burst} inserts never shared an engine batch"
    );
}

/// With `max_pending` forced to 1, a pipelined burst trips admission
/// control: excess requests are answered `overloaded` (a response, not a
/// dropped connection) and the front end keeps serving afterwards.
#[test]
fn admission_control_sheds_bursts_with_overloaded_responses() {
    let (addr, _) = spawn(ServeOptions::new().with_max_pending(1));
    let mut stream = connect(addr);
    let per_burst = 256usize;
    let burst: String = "{\"op\":\"coverage\",\"pattern\":\"11X\"}\n".repeat(per_burst);
    let mut shed = 0usize;
    for _ in 0..5 {
        let responses = ask_pipelined(&mut stream, &burst, per_burst);
        for response in &responses {
            let doc = Json::parse(response).unwrap();
            if doc.get("code").and_then(Json::as_str) == Some("overloaded") {
                assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
                shed += 1;
            } else {
                assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
            }
        }
        if shed > 0 {
            break;
        }
    }
    assert!(
        shed > 0,
        "a max_pending=1 server should shed part of a {per_burst}-request burst"
    );
    // Shedding is per-request, not per-connection: the line is still open.
    let responses = ask_pipelined(&mut stream, "{\"op\":\"mups\",\"limit\":1}\n", 1);
    assert!(responses[0].starts_with("{\"ok\":true"), "{}", responses[0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any chunking of a pipelined read-only script — including splits in
    /// the middle of a frame — produces exactly the reference responses.
    #[test]
    fn any_chunking_yields_reference_responses(cuts in proptest::collection::vec(0usize..200, 0..8)) {
        let script = [
            r#"{"id":1,"op":"coverage","pattern":"11X"}"#,
            r#"{"op":"mups","limit":2}"#,
            "{malformed",
            r#"{"id":2,"op":"coverage","pattern":"X0X"}"#,
        ];
        let mut reference = engine();
        let options = ServeOptions::new();
        let expected: Vec<String> = script
            .iter()
            .map(|line| handle_line(&mut reference, &options, line))
            .collect();
        let payload: String = script.iter().map(|l| format!("{l}\n")).collect();

        let (addr, _) = spawn(ServeOptions::new());
        let mut stream = connect(addr);
        let bytes = payload.as_bytes();
        let mut cuts: Vec<usize> = cuts.iter().map(|c| c % bytes.len()).collect();
        cuts.push(bytes.len());
        cuts.sort_unstable();
        let mut start = 0usize;
        for cut in cuts {
            if cut > start {
                stream.write_all(&bytes[start..cut]).unwrap();
                stream.flush().unwrap();
                start = cut;
            }
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let responses: Vec<String> = (0..script.len())
            .map(|_| {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                line.trim_end().to_string()
            })
            .collect();
        prop_assert_eq!(responses, expected);
    }
}
