//! End-to-end pipelines spanning every crate: audit → enhance → re-audit,
//! CSV round trips, and the coverage-aware classification workflow.

use mithra::prelude::*;

/// The full remediation loop must deliver Problem 2's guarantee: after
/// applying the plan with deficit-closing copies, no material uncovered
/// pattern remains at level ≤ λ.
#[test]
fn audit_enhance_reaudit_guarantee() {
    for (seed, tau, lambda) in [(1u64, 8u64, 1usize), (2, 5, 2), (3, 12, 2)] {
        let base = mithra::data::generators::bluenile_like(400, seed)
            .unwrap()
            .project(&[1, 4, 5, 6])
            .unwrap();
        let report = CoverageReport::audit(&base, Threshold::Count(tau)).unwrap();
        if report.mup_count() == 0 {
            continue;
        }
        let plan = CoverageEnhancer::default()
            .plan_for_level(
                &GreedyHittingSet,
                &report.mups,
                &base.schema().cardinalities(),
                lambda,
            )
            .unwrap();
        let oracle = CoverageReport::oracle_for(&base);
        let copies = plan.required_copies(&oracle, tau);
        let mut enhanced = base.clone();
        plan.apply_to(&mut enhanced, &copies).unwrap();

        let after = CoverageReport::audit(&enhanced, Threshold::Count(tau)).unwrap();
        assert!(
            after.mups.iter().all(|m| m.level() > lambda),
            "seed={seed}: MUP at level ≤ {lambda} remains: {:?}",
            after.mups
        );
        assert!(after.maximum_covered_level() >= lambda);
    }
}

/// Greedy and naïve hitting sets deliver plans of identical size (same
/// greedy strategy, different machinery).
#[test]
fn greedy_and_naive_solvers_agree_on_plan_size() {
    let ds = mithra::data::generators::airbnb_like(800, 7, 5).unwrap();
    let report = CoverageReport::audit(&ds, Threshold::Count(20)).unwrap();
    let cards = ds.schema().cardinalities();
    for lambda in [1usize, 2, 3] {
        let fast = CoverageEnhancer::default()
            .plan_for_level(&GreedyHittingSet, &report.mups, &cards, lambda)
            .unwrap();
        let naive = CoverageEnhancer::default()
            .plan_for_level(&NaiveHittingSet::default(), &report.mups, &cards, lambda)
            .unwrap();
        assert_eq!(fast.input_size(), naive.input_size(), "lambda={lambda}");
        assert_eq!(fast.output_size(), naive.output_size(), "lambda={lambda}");
    }
}

/// CSV round trip: write an audited dataset out, read it back, re-audit —
/// identical MUPs.
#[test]
fn csv_roundtrip_preserves_audit() {
    let ds = mithra::data::generators::compas_like(&Default::default()).unwrap();
    let before = CoverageReport::audit(&ds, Threshold::Count(10)).unwrap();

    let mut buf = Vec::new();
    mithra::data::io::write_csv(&mut buf, &ds).unwrap();
    let back = mithra::data::io::read_csv_auto(
        buf.as_slice(),
        &["sex", "age", "race", "marital"],
        Some("label"),
    )
    .unwrap();
    // Auto-encoding assigns codes in first-seen order, which may differ from
    // the generator's dictionary — compare through decoded string forms.
    let decode = |ds: &Dataset, mups: &[Pattern]| -> Vec<String> {
        let mut out: Vec<String> = mups
            .iter()
            .map(|m| {
                (0..ds.arity())
                    .map(|i| match m.get(i) {
                        Some(v) => ds.schema().attribute(i).value_name(v),
                        None => "*".into(),
                    })
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        out.sort();
        out
    };
    let after = CoverageReport::audit(&back, Threshold::Count(10)).unwrap();
    assert_eq!(decode(&ds, &before.mups), decode(&back, &after.mups));
}

/// The coverage-aware ML workflow of §V-B: a model trained without a
/// subgroup underperforms on it; adding subgroup rows recovers accuracy
/// while overall accuracy stays put.
#[test]
fn classifier_subgroup_recovery() {
    use mithra::data::generators::{FEMALE, HISPANIC};
    use mithra::ml::{take_rows, train_and_evaluate, TreeConfig};

    let ds = mithra::data::generators::compas_like(&Default::default()).unwrap();
    let hf: Vec<usize> = (0..ds.len())
        .filter(|&i| ds.row(i)[2] == HISPANIC && ds.row(i)[0] == FEMALE)
        .collect();
    let rest: Vec<usize> = (0..ds.len())
        .filter(|&i| !(ds.row(i)[2] == HISPANIC && ds.row(i)[0] == FEMALE))
        .collect();
    let (test_hf, pool_hf) = hf.split_at(20);
    let test = take_rows(&ds, test_hf);

    let without = train_and_evaluate(&take_rows(&ds, &rest), &test, &TreeConfig::default());
    let mut with_idx = rest.clone();
    with_idx.extend_from_slice(pool_hf);
    let with = train_and_evaluate(&take_rows(&ds, &with_idx), &test, &TreeConfig::default());
    assert!(
        with.accuracy() > without.accuracy(),
        "coverage remediation did not help: {} -> {}",
        without.accuracy(),
        with.accuracy()
    );
}

/// Value-count variant end to end: every uncovered pattern hiding at least
/// `v` combinations is hit by the plan.
#[test]
fn value_count_variant_end_to_end() {
    let ds = mithra::data::generators::bluenile_like(300, 11)
        .unwrap()
        .project(&[0, 1, 4])
        .unwrap(); // cards [10, 4, 3]
    let report = CoverageReport::audit(&ds, Threshold::Count(4)).unwrap();
    let cards = ds.schema().cardinalities();
    let min_vc = 12u128;
    let plan = CoverageEnhancer::default()
        .plan_for_value_count(&GreedyHittingSet, &report.mups, &cards, min_vc)
        .unwrap();
    for t in &plan.targets {
        assert!(t.value_count(&cards) >= min_vc);
        assert!(plan.combinations.iter().any(|c| t.matches(c)));
    }
}

/// Bucketization + audit: continuous ages become the paper's four buckets
/// and the audit runs over them.
#[test]
fn bucketized_continuous_attribute_pipeline() {
    let bucketizer = Bucketizer::from_boundaries(vec![20.0, 40.0, 60.0]).unwrap();
    let ages = [17.0, 25.0, 33.0, 45.0, 52.0, 61.0, 70.0, 38.0, 41.0, 19.0];
    let schema = Schema::new(vec![
        bucketizer.to_attribute("age").unwrap(),
        Attribute::binary("employed"),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for (i, &age) in ages.iter().enumerate() {
        ds.push_row(&[bucketizer.encode(age), (i % 2) as u8])
            .unwrap();
    }
    let report = CoverageReport::audit(&ds, Threshold::Count(1)).unwrap();
    // With 10 rows over 8 cells some cells are empty — MUPs exist and all
    // verify against the oracle.
    let oracle = CoverageReport::oracle_for(&ds);
    for m in &report.mups {
        assert!(oracle.coverage(m.codes()) < 1);
        for parent in m.parents() {
            assert!(oracle.coverage(parent.codes()) >= 1);
        }
    }
}
