//! End-to-end drive of the `mithra serve` NDJSON protocol: the engine is
//! spawned in-process and exercised through the same [`handle_line`] /
//! [`serve_lines`] / [`serve`] entry points the CLI uses, including
//! malformed-request error responses and a real TCP round trip.

use std::io::{BufRead, BufReader, Write};

use mithra::prelude::*;
use mithra::service::protocol::Json;
use mithra::service::{handle_line, load_snapshot, serve, serve_lines, IoMode, ServeOptions};

/// COMPAS-flavored fixture with value dictionaries, so protocol rows can be
/// sent as value names.
fn engine() -> CoverageEngine {
    let schema = Schema::new(vec![
        Attribute::with_values("sex", ["m", "f"]).unwrap(),
        Attribute::with_values("race", ["white", "black", "hispanic"]).unwrap(),
        Attribute::with_values("age", ["young", "old"]).unwrap(),
    ])
    .unwrap();
    let rows = [
        vec![0, 0, 0],
        vec![0, 0, 1],
        vec![0, 1, 0],
        vec![1, 0, 0],
        vec![1, 0, 1],
        vec![0, 2, 0],
    ];
    let ds = Dataset::from_rows(schema, &rows).unwrap();
    CoverageEngine::new(ds, Threshold::Count(1)).unwrap()
}

fn request(engine: &mut CoverageEngine, line: &str) -> Json {
    request_on(engine, line)
}

fn request_on<B: mithra::index::CoverageBackend>(
    engine: &mut CoverageEngine<B>,
    line: &str,
) -> Json {
    let response = handle_line(engine, &ServeOptions::new(), line);
    Json::parse(&response).unwrap_or_else(|e| panic!("bad JSON `{response}`: {e}"))
}

fn assert_ok(doc: &Json, line: &str) {
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {line} → {doc:?}"
    );
}

/// The ISSUE's acceptance sequence: insert → mups → coverage → stats, each
/// answered with one valid JSON line, with state visibly advancing.
#[test]
fn insert_mups_coverage_stats_sequence() {
    let mut engine = engine();
    let initial_mups = engine.mups().len();
    assert!(initial_mups > 0, "fixture must start uncovered");

    // 1. Insert a batch closing part of the frontier.
    let line = r#"{"op":"insert","rows":[["f","black","young"],["f","hispanic","old"]]}"#;
    let doc = request(&mut engine, line);
    assert_ok(&doc, line);
    assert_eq!(doc.get("inserted").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(8));

    // 2. The MUP list reflects the inserts and matches the engine state.
    let doc = request(&mut engine, r#"{"op":"mups"}"#);
    assert_ok(&doc, "mups");
    let listed = doc.get("mups").unwrap().as_array().unwrap().len();
    assert_eq!(listed, engine.mups().len());
    assert!(listed < initial_mups + 2, "frontier should have shrunk");

    // 3. Coverage of the batch's pattern went up.
    let line = r#"{"op":"coverage","pattern":"11X"}"#; // f|black|X
    let doc = request(&mut engine, line);
    assert_ok(&doc, line);
    assert_eq!(doc.get("coverage").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("covered").and_then(Json::as_bool), Some(true));

    // 4. Stats report the maintenance that just happened — including the
    // shard layout (a single shard holding every row, for this engine).
    let doc = request(&mut engine, r#"{"op":"stats"}"#);
    assert_ok(&doc, "stats");
    assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(8));
    assert_eq!(doc.get("inserts").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("batches").and_then(Json::as_u64), Some(1));
    assert_eq!(
        doc.get("mups").and_then(Json::as_u64),
        Some(engine.mups().len() as u64)
    );
    let shards = doc.get("shards").expect("stats must carry shard layout");
    assert_eq!(shards.get("count").and_then(Json::as_u64), Some(1));
}

/// A sharded serving engine answers byte-identical `mups`/`coverage`
/// responses to the single-shard engine over the same request stream, and
/// its `stats` expose per-shard row counts that sum to the dataset size.
#[test]
fn sharded_engine_serves_identical_answers_and_reports_skew() {
    use mithra::service::ShardedCoverageEngine;

    let dataset = engine().dataset().clone();
    let mut single = engine();
    let mut sharded = ShardedCoverageEngine::with_shards(dataset, Threshold::Count(1), 3).unwrap();
    let script = [
        r#"{"op":"mups"}"#,
        r#"{"op":"insert","rows":[["f","black","young"],["f","hispanic","old"]]}"#,
        r#"{"op":"coverage","pattern":"11X"}"#,
        r#"{"op":"delete","row":["f","black","young"]}"#,
        r#"{"op":"mups"}"#,
        r#"{"op":"coverage","pattern":"X0X"}"#,
    ];
    let options = ServeOptions::new();
    for line in script {
        assert_eq!(
            handle_line(&mut single, &options, line),
            handle_line(&mut sharded, &options, line),
            "single- and sharded-backend responses diverged on {line}"
        );
    }
    let doc = request_on(&mut sharded, r#"{"op":"stats"}"#);
    let shards = doc.get("shards").unwrap();
    assert_eq!(shards.get("count").and_then(Json::as_u64), Some(3));
    let per_shard: Vec<u64> = shards
        .get("rows")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(per_shard.len(), 3);
    assert_eq!(
        per_shard.iter().sum::<u64>(),
        sharded.dataset().len() as u64,
        "per-shard rows must sum to the dataset size"
    );
}

/// Engine state advanced through the protocol equals a batch DEEPDIVER
/// audit of the same materialized dataset.
#[test]
fn protocol_inserts_match_batch_audit() {
    let mut engine = engine();
    let mut materialized = engine.dataset().clone();
    let inserts = [
        ("m", "hispanic", "old"),
        ("f", "white", "young"),
        ("f", "white", "young"),
        ("m", "black", "old"),
    ];
    for (sex, race, age) in inserts {
        let line = format!(r#"{{"op":"insert","row":["{sex}","{race}","{age}"]}}"#);
        let doc = request(&mut engine, &line);
        assert_ok(&doc, &line);
        let row = [
            materialized.schema().attribute(0).code_of(sex).unwrap(),
            materialized.schema().attribute(1).code_of(race).unwrap(),
            materialized.schema().attribute(2).code_of(age).unwrap(),
        ];
        materialized.push_row(&row).unwrap();
    }
    let batch = CoverageReport::audit(&materialized, Threshold::Count(1)).unwrap();
    assert_eq!(engine.mups(), batch.mups.as_slice());
}

/// Every malformed request yields `{"ok":false}` with a reason — and the
/// engine keeps serving afterwards, with no state damage.
#[test]
fn malformed_requests_get_error_responses() {
    let mut engine = engine();
    let rows_before = engine.dataset().len();
    let bad_lines = [
        "",                                       // handled upstream (blank skipped) but must not panic
        "{",                                      // truncated JSON
        "[]",                                     // not an object
        r#"{"op":"audit"}"#,                      // unknown op
        r#"{"op":"insert"}"#,                     // missing rows
        r#"{"op":"insert","row":["m","black"]}"#, // arity mismatch
        r#"{"op":"insert","row":["m","martian","old"]}"#, // unknown value
        r#"{"op":"insert","rows":[["m","white","old"],["m","martian","old"]]}"#, // bad batch → atomic reject
        r#"{"op":"coverage","pattern":"1X"}"#,                                   // pattern arity
        r#"{"op":"coverage","pattern":"1?X"}"#,                                  // pattern syntax
        r#"{"op":"enhance","lambda":0}"#,                                        // λ out of range
        r#"{"op":"mups","limit":"ten"}"#,                                        // wrong type
    ];
    for line in bad_lines {
        let doc = request(&mut engine, line);
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(false),
            "`{line}` should have been rejected"
        );
        let reason = doc.get("error").and_then(Json::as_str).unwrap();
        assert!(!reason.is_empty());
    }
    assert_eq!(
        engine.dataset().len(),
        rows_before,
        "rejected requests must not mutate the dataset"
    );
    let doc = request(&mut engine, r#"{"op":"stats"}"#);
    assert_ok(&doc, "stats after errors");
}

/// The bug this PR fixes, end-to-end: a row carrying a previously unseen
/// value string arrives over the protocol. Strict mode still rejects it;
/// under `--grow-schema` (or an explicit `grow` op) it lands, the engine's
/// MUP set equals a batch audit of the rebuilt grown dataset, and snapshot
/// v3 round-trips the grown dictionaries through a process restart.
#[test]
fn unseen_values_grow_through_the_serving_path() {
    let dir = std::env::temp_dir().join(format!("mithra-grow-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.snapshot");
    let options = ServeOptions::new()
        .with_snapshot_path(Some(path.clone()))
        .with_grow_schema(true);

    let mups_response = {
        let mut engine = engine();
        // Strict mode: the unseen value is rejected (default behavior).
        let strict = handle_line(
            &mut engine,
            &ServeOptions::new(),
            r#"{"op":"insert","row":["f","asian","old"]}"#,
        );
        assert!(strict.contains("\"ok\":false"), "{strict}");

        // Growth mode: the same insert registers `asian` and lands the row.
        let line = r#"{"op":"insert","row":["f","asian","old"]}"#;
        let doc = Json::parse(&handle_line(&mut engine, &options, line)).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(7));

        // An explicit grow op registers a value with zero rows.
        let line = r#"{"op":"grow","attr":"age","value":"middle"}"#;
        let doc = Json::parse(&handle_line(&mut engine, &options, line)).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("code").and_then(Json::as_u64), Some(2));

        // The maintained MUP set equals a batch audit of the grown dataset.
        let batch = CoverageReport::audit(engine.dataset(), Threshold::Count(1)).unwrap();
        assert_eq!(engine.mups(), batch.mups.as_slice());

        let doc = Json::parse(&handle_line(&mut engine, &options, r#"{"op":"snapshot"}"#)).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        handle_line(&mut engine, &ServeOptions::new(), r#"{"op":"mups"}"#)
        // …engine dropped: process state gone.
    };

    let mut revived: CoverageEngine = load_snapshot(&path).expect("snapshot v3 loads");
    assert_eq!(
        handle_line(&mut revived, &ServeOptions::new(), r#"{"op":"mups"}"#),
        mups_response,
        "restored engine must serve the identical mups response"
    );
    assert_eq!(revived.dictionary_growth(), &[0, 1, 1]);
    let schema = revived.dataset().schema();
    assert_eq!(schema.attribute(1).code_of("asian").unwrap(), 3);
    assert_eq!(schema.attribute(2).code_of("middle").unwrap(), 2);
    // The revived engine keeps accepting rows on the grown values.
    let line = r#"{"op":"insert","row":["m","asian","middle"]}"#;
    let doc = Json::parse(&handle_line(&mut revived, &options, line)).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    let batch = CoverageReport::audit(revived.dataset(), Threshold::Count(1)).unwrap();
    assert_eq!(revived.mups(), batch.mups.as_slice());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Deletes through the protocol are the exact inverse of inserts: after an
/// insert+delete pair the MUP set, coverage answers, and row count are back
/// to baseline, and a delete of an absent row is rejected atomically.
#[test]
fn protocol_deletes_mirror_inserts() {
    let mut engine = engine();
    let baseline_mups = request(&mut engine, r#"{"op":"mups"}"#);
    let line = r#"{"op":"insert","rows":[["f","black","young"],["f","black","young"]]}"#;
    assert_ok(&request(&mut engine, line), line);

    let line = r#"{"op":"delete","row":["f","black","young"]}"#;
    let doc = request(&mut engine, line);
    assert_ok(&doc, line);
    assert_eq!(doc.get("deleted").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(7));

    let line = r#"{"op":"delete","rows":[["f","black","young"]]}"#;
    assert_ok(&request(&mut engine, line), line);
    let after = request(&mut engine, r#"{"op":"mups"}"#);
    assert_eq!(
        baseline_mups.get("mups").unwrap().as_array().unwrap(),
        after.get("mups").unwrap().as_array().unwrap(),
        "insert+delete must be a no-op on the frontier"
    );

    // Both copies are gone: a third delete is rejected and changes nothing.
    let doc = request(&mut engine, line);
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(engine.dataset().len(), 6);

    // The protocol-maintained state still equals a batch audit.
    let batch = CoverageReport::audit(engine.dataset(), Threshold::Count(1)).unwrap();
    assert_eq!(engine.mups(), batch.mups.as_slice());
}

/// The durability acceptance path: mutate through the protocol, `snapshot`,
/// kill the engine, restore from disk — the revived engine serves byte-for-
/// byte identical `mups` and `stats` responses without a re-audit.
#[test]
fn killed_and_restored_engine_serves_identical_responses() {
    let dir = std::env::temp_dir().join(format!("mithra-proto-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.snapshot");

    let (mups_response, stats_response) = {
        let mut engine = engine();
        for line in [
            r#"{"op":"insert","rows":[["f","black","young"],["m","hispanic","old"]]}"#,
            r#"{"op":"delete","row":["m","white","young"]}"#,
        ] {
            assert_ok(&request(&mut engine, line), line);
        }
        let snap_options = ServeOptions::new().with_snapshot_path(Some(path.clone()));
        let doc = Json::parse(&handle_line(
            &mut engine,
            &snap_options,
            r#"{"op":"snapshot"}"#,
        ))
        .unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        (
            handle_line(&mut engine, &ServeOptions::new(), r#"{"op":"mups"}"#),
            handle_line(&mut engine, &ServeOptions::new(), r#"{"op":"stats"}"#),
        )
        // …engine dropped here: the process state is gone.
    };

    let mut revived: CoverageEngine = load_snapshot(&path).expect("snapshot loads");
    assert_eq!(
        handle_line(&mut revived, &ServeOptions::new(), r#"{"op":"mups"}"#),
        mups_response
    );
    // Stats must agree on every durable field; the memo-cache gauges are
    // process-local (a restored engine starts cold) and are exempt.
    let revived_stats = handle_line(&mut revived, &ServeOptions::new(), r#"{"op":"stats"}"#);
    let expected = Json::parse(&stats_response).unwrap();
    let got = Json::parse(&revived_stats).unwrap();
    for key in [
        "ok",
        "rows",
        "attributes",
        "tau",
        "mups",
        "max_covered_level",
        "inserts",
        "batches",
        "deletes",
        "delete_batches",
        "mups_retired",
        "mups_discovered",
        "full_recomputes",
    ] {
        assert_eq!(got.get(key), expected.get(key), "stats field `{key}`");
    }
    assert!(got.get("cache").is_some());
    // And it is a live engine, not a read-only replica.
    let line = r#"{"op":"insert","row":["f","white","old"]}"#;
    assert_ok(&request(&mut revived, line), line);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `serve_lines` (the stdin/stdout mode): a scripted session produces one
/// response line per request, in order.
#[test]
fn scripted_stdio_session() {
    let mut engine = engine();
    let script = "\
{\"op\":\"stats\"}\n\
not json\n\
{\"op\":\"insert\",\"row\":[\"f\",\"black\",\"young\"]}\n\
{\"op\":\"mups\",\"limit\":3}\n";
    let mut output = Vec::new();
    serve_lines(
        &mut engine,
        &ServeOptions::new(),
        script.as_bytes(),
        &mut output,
    )
    .unwrap();
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);
    let oks: Vec<Option<bool>> = lines
        .iter()
        .map(|l| Json::parse(l).unwrap().get("ok").and_then(Json::as_bool))
        .collect();
    assert_eq!(oks, vec![Some(true), Some(false), Some(true), Some(true)]);
}

/// Full TCP round trip: bind an ephemeral port, serve with the blocking
/// two-thread pool, and run two sequential client connections against the
/// shared engine — state must persist across connections.
#[test]
fn tcp_round_trip_shares_one_engine() {
    use std::net::{TcpListener, TcpStream};
    use std::sync::{Arc, Mutex};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let shared = Arc::new(Mutex::new(engine()));
    let server = Arc::clone(&shared);
    std::thread::spawn(move || {
        let options = ServeOptions::new()
            .with_io(IoMode::Blocking)
            .with_workers(2);
        let _ = serve(server, options, listener);
    });

    let ask = |line: &str| -> Json {
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        drop(stream);
        Json::parse(response.trim()).unwrap()
    };

    let doc = ask(r#"{"op":"insert","row":["f","black","young"]}"#);
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    // A second connection sees the first connection's insert.
    let doc = ask(r#"{"op":"stats"}"#);
    assert_eq!(doc.get("rows").and_then(Json::as_u64), Some(7));
    assert_eq!(doc.get("inserts").and_then(Json::as_u64), Some(1));
    // And the in-process handle agrees.
    assert_eq!(shared.lock().unwrap().dataset().len(), 7);
}
