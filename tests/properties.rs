//! Property-based tests (proptest) over the core invariants, spanning the
//! data, index, and core crates.

use mithra::prelude::*;
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// A random small dataset: 2–4 attributes of cardinality 2–4, 0–120 rows.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=4, 2u8..=4)
        .prop_flat_map(|(d, c)| {
            let rows = proptest::collection::vec(proptest::collection::vec(0..c, d), 0..120);
            (Just((d, c)), rows)
        })
        .prop_map(|((d, c), rows)| {
            let schema = Schema::with_cardinalities(&vec![c as usize; d]).unwrap();
            Dataset::from_rows(schema, &rows).unwrap()
        })
}

/// A random pattern for a given shape.
fn pattern_strategy(d: usize, c: u8) -> impl Strategy<Value = Pattern> {
    proptest::collection::vec(prop_oneof![4 => (0..c).prop_map(Some), 3 => Just(None)], d).prop_map(
        |elems| {
            Pattern::from_codes(
                elems
                    .into_iter()
                    .map(|e| e.unwrap_or(mithra::index::X))
                    .collect::<Vec<_>>(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The oracle's coverage equals brute-force counting, and `covered`
    /// agrees with it for arbitrary thresholds.
    #[test]
    fn oracle_matches_brute_force(ds in dataset_strategy(), tau in 0u64..40) {
        let oracle = CoverageReport::oracle_for(&ds);
        let c = ds.schema().cardinality(0);
        let d = ds.arity();
        let runner = pattern_strategy(d, c);
        let mut runner_rng = proptest::test_runner::TestRunner::deterministic();
        for _ in 0..10 {
            let p = runner.new_tree(&mut runner_rng).unwrap().current();
            let expected = ds.count_where(|row, _| p.matches(row)) as u64;
            prop_assert_eq!(oracle.coverage(p.codes()), expected);
            prop_assert_eq!(oracle.covered(p.codes(), tau), expected >= tau);
        }
    }

    /// Every reported MUP satisfies Definition 5, the output is an
    /// antichain, and it is complete (no uncovered pattern escapes
    /// domination by a reported MUP).
    #[test]
    fn mup_definition_invariants(ds in dataset_strategy(), tau in 1u64..30) {
        let oracle = CoverageReport::oracle_for(&ds);
        let mups = DeepDiver::default().find_mups(&ds, Threshold::Count(tau)).unwrap();
        // Definition 5 per pattern.
        for m in &mups {
            prop_assert!(oracle.coverage(m.codes()) < tau, "{} covered", m);
            for parent in m.parents() {
                prop_assert!(oracle.coverage(parent.codes()) >= tau);
            }
        }
        // Antichain.
        for a in &mups {
            for b in &mups {
                prop_assert!(a == b || !a.dominates(b));
            }
        }
        // Completeness: every uncovered pattern is dominated by some MUP
        // (checked by full enumeration — the spaces are small).
        let cards = ds.schema().cardinalities();
        let mut queue = vec![Pattern::all_x(ds.arity())];
        let mut cursor = 0;
        while cursor < queue.len() {
            let p = queue[cursor].clone();
            queue.extend(p.rule1_children(&cards));
            if oracle.coverage(p.codes()) < tau {
                prop_assert!(
                    mups.iter().any(|m| m.dominates(&p)),
                    "uncovered {} not dominated", p
                );
            }
            cursor += 1;
        }
    }

    /// Coverage is monotone: a parent covers at least as much as its child.
    #[test]
    fn coverage_monotonicity(ds in dataset_strategy()) {
        let oracle = CoverageReport::oracle_for(&ds);
        let c = ds.schema().cardinality(0);
        let runner = pattern_strategy(ds.arity(), c);
        let mut rng = proptest::test_runner::TestRunner::deterministic();
        for _ in 0..10 {
            let p = runner.new_tree(&mut rng).unwrap().current();
            let cov = oracle.coverage(p.codes());
            for parent in p.parents() {
                prop_assert!(oracle.coverage(parent.codes()) >= cov);
            }
        }
    }

    /// The hitting-set output hits every target, and the enhancement raises
    /// the maximum covered level to at least λ.
    #[test]
    fn enhancement_guarantee(ds in dataset_strategy(), tau in 2u64..12, lambda in 1usize..3) {
        let report = CoverageReport::audit(&ds, Threshold::Count(tau)).unwrap();
        let cards = ds.schema().cardinalities();
        let lambda = lambda.min(ds.arity());
        let plan = CoverageEnhancer::default()
            .plan_for_level(&GreedyHittingSet, &report.mups, &cards, lambda)
            .unwrap();
        for t in &plan.targets {
            prop_assert!(plan.combinations.iter().any(|c| t.matches(c)));
        }
        let oracle = CoverageReport::oracle_for(&ds);
        let copies = plan.required_copies(&oracle, tau);
        let mut enhanced = ds.clone();
        plan.apply_to(&mut enhanced, &copies).unwrap();
        let after = CoverageReport::audit(&enhanced, Threshold::Count(tau)).unwrap();
        prop_assert!(after.maximum_covered_level() >= lambda,
            "max covered level {} < {lambda}", after.maximum_covered_level());
    }

    /// Rule 1 / Rule 2 generator uniqueness on random shapes: every node's
    /// generator regenerates it.
    #[test]
    fn rule_generators_roundtrip(d in 2usize..5, c in 2u8..4) {
        let cards = vec![c; d];
        let runner = pattern_strategy(d, c);
        let mut rng = proptest::test_runner::TestRunner::deterministic();
        for _ in 0..20 {
            let p = runner.new_tree(&mut rng).unwrap().current();
            if let Some(generator) = p.rule1_generator() {
                prop_assert!(generator.rule1_children(&cards).contains(&p));
            }
            if let Some(generator) = p.rule2_generator() {
                prop_assert!(generator.rule2_parents().contains(&p));
            }
        }
    }

    /// Dominance is consistent with matching: if P dominates Q, every tuple
    /// matching Q matches P.
    #[test]
    fn dominance_implies_match_subset(ds in dataset_strategy()) {
        let c = ds.schema().cardinality(0);
        let runner = pattern_strategy(ds.arity(), c);
        let mut rng = proptest::test_runner::TestRunner::deterministic();
        for _ in 0..10 {
            let p = runner.new_tree(&mut rng).unwrap().current();
            let q = runner.new_tree(&mut rng).unwrap().current();
            if p.dominates(&q) {
                for row in ds.rows() {
                    if q.matches(row) {
                        prop_assert!(p.matches(row));
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All algorithms agree on random datasets (the heaviest property —
    /// fewer cases).
    #[test]
    fn algorithms_agree_on_random_data(ds in dataset_strategy(), tau in 1u64..20) {
        let reference = NaiveMup::default().find_mups(&ds, Threshold::Count(tau)).unwrap();
        let algorithms: Vec<Box<dyn MupAlgorithm>> = vec![
            Box::new(PatternBreaker::default()),
            Box::new(PatternCombiner::default()),
            Box::new(DeepDiver::default()),
            Box::new(Apriori::default()),
        ];
        for alg in &algorithms {
            let got = alg.find_mups(&ds, Threshold::Count(tau)).unwrap();
            prop_assert_eq!(&got, &reference, "{} disagrees", alg.name());
        }
    }
}
