//! Integration drive of the durability and replication subsystem: a leader
//! serving with `--oplog`, a TCP follower tailing it through the
//! `replicate` op, a file-tailing follower sharing the log path, and
//! multi-dataset tenancy routing by the `"dataset"` request field. The
//! leader's own responses are the reference — a caught-up follower must
//! serve byte-identical reads and reject mutations with `read_only`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mithra::prelude::*;
use mithra::service::oplog::read_entries_from;
use mithra::service::protocol::Json;
use mithra::service::{
    load_snapshot_anchored, replay_entries, run_follower, serve, serve_tenants, IoMode, OpLog,
    ReplicaSource, ReplicationStatus, ServeOptions, SyncPolicy, TenantSpec,
};

/// Same COMPAS-flavored fixture as the protocol suites, so the replicated
/// state has value dictionaries and a non-trivial MUP frontier.
fn engine() -> CoverageEngine {
    let schema = Schema::new(vec![
        Attribute::with_values("sex", ["m", "f"]).unwrap(),
        Attribute::with_values("race", ["white", "black", "hispanic"]).unwrap(),
        Attribute::with_values("age", ["young", "old"]).unwrap(),
    ])
    .unwrap();
    let rows = [
        vec![0, 0, 0],
        vec![0, 0, 1],
        vec![0, 1, 0],
        vec![1, 0, 0],
        vec![1, 0, 1],
        vec![0, 2, 0],
    ];
    let ds = Dataset::from_rows(schema, &rows).unwrap();
    CoverageEngine::new(ds, Threshold::Count(1)).unwrap()
}

fn scratch_log(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mithra-replication-{tag}-{}.oplog",
        std::process::id()
    ))
}

/// Serves `engine` on an ephemeral port in a background thread.
fn spawn(engine: Arc<Mutex<CoverageEngine>>, options: ServeOptions) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = serve(engine, options, listener);
    });
    addr
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Writes `payload` in one syscall and reads exactly `n` response lines.
fn ask_pipelined(stream: &mut TcpStream, payload: &str, n: usize) -> Vec<String> {
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (0..n)
        .map(|i| {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap_or_else(|e| {
                panic!("response {i}/{n} never arrived: {e}");
            });
            line.trim_end().to_string()
        })
        .collect()
}

/// Polls until the follower's applied seq reaches `seq` (10 s deadline).
fn await_catchup(status: &ReplicationStatus, seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while status.applied_seq() < seq {
        assert!(
            Instant::now() < deadline,
            "follower stuck at seq {} waiting for {seq} ({} errors)",
            status.applied_seq(),
            status.errors()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Leader with an op log, TCP follower tailing `replicate`: after catch-up
/// the follower answers reads byte-for-byte like the leader — including
/// dictionary growth it learned from the log — rejects writes with the
/// stable `read_only` code, and reports its position under
/// `stats.replication`.
#[test]
fn tcp_follower_replays_the_leader_and_serves_identical_reads() {
    let path = scratch_log("tcp");
    let log = Arc::new(Mutex::new(OpLog::open(&path, SyncPolicy::Batch).unwrap()));
    let leader = Arc::new(Mutex::new(engine()));
    let leader_addr = spawn(
        Arc::clone(&leader),
        ServeOptions::new()
            .with_oplog(Some(Arc::clone(&log)))
            .with_grow_schema(true),
    );

    // Three logged mutations: a two-row insert, an insert that grows the
    // `race` dictionary, and a delete.
    let mut stream = connect(leader_addr);
    let script = concat!(
        "{\"op\":\"insert\",\"rows\":[[\"f\",\"black\",\"young\"],[\"f\",\"hispanic\",\"old\"]]}\n",
        "{\"op\":\"insert\",\"row\":[\"m\",\"martian\",\"old\"]}\n",
        "{\"op\":\"delete\",\"row\":[\"f\",\"hispanic\",\"old\"]}\n",
    );
    for response in ask_pipelined(&mut stream, script, 3) {
        let doc = Json::parse(&response).unwrap();
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
    }

    // A follower bootstrapped from the same base CSV state tails the leader.
    let follower = Arc::new(Mutex::new(engine()));
    let status = Arc::new(ReplicationStatus::new(format!("tcp://{leader_addr}"), 0));
    let stop = Arc::new(AtomicBool::new(false));
    let tail = {
        let (engine, status, stop) = (
            Arc::clone(&follower),
            Arc::clone(&status),
            Arc::clone(&stop),
        );
        let source = ReplicaSource::Tcp(leader_addr.to_string());
        std::thread::spawn(move || {
            run_follower(engine, source, status, Duration::from_millis(10), stop)
        })
    };
    await_catchup(&status, 3);

    let follower_addr = spawn(
        Arc::clone(&follower),
        ServeOptions::new()
            .with_read_only(true)
            .with_replication(Some(Arc::clone(&status))),
    );
    let mut follower_stream = connect(follower_addr);

    // Byte-identical reads, leader vs follower.
    let reads = concat!(
        "{\"id\":1,\"op\":\"mups\"}\n",
        "{\"id\":2,\"op\":\"coverage\",\"pattern\":\"11X\"}\n",
        "{\"id\":3,\"op\":\"coverage\",\"pattern\":\"X0X\"}\n",
    );
    let from_leader = ask_pipelined(&mut stream, reads, 3);
    let from_follower = ask_pipelined(&mut follower_stream, reads, 3);
    assert_eq!(from_follower, from_leader, "follower reads diverged");

    // Mutations are refused with the stable code — nothing is applied.
    let rejected = ask_pipelined(
        &mut follower_stream,
        "{\"op\":\"insert\",\"row\":[\"m\",\"white\",\"old\"]}\n",
        1,
    );
    let doc = Json::parse(&rejected[0]).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("code").and_then(Json::as_str), Some("read_only"));

    // The follower's stats expose its replication position.
    let stats = ask_pipelined(&mut follower_stream, "{\"op\":\"stats\"}\n", 1);
    let doc = Json::parse(&stats[0]).unwrap();
    let replication = doc.get("replication").expect("stats.replication section");
    assert_eq!(
        replication.get("role").and_then(Json::as_str),
        Some("follower")
    );
    assert_eq!(
        replication.get("applied_seq").and_then(Json::as_u64),
        Some(3)
    );

    stop.store(true, Ordering::Relaxed);
    tail.join().unwrap().unwrap();
    std::fs::remove_file(&path).ok();
}

/// A follower can also tail a shared log *file* (no leader process at all):
/// it applies the entries through the ordinary engine path and converges on
/// the state of an engine that applied them directly.
#[test]
fn file_tailing_follower_catches_up_from_a_shared_log() {
    use mithra::service::LoggedOp;

    let path = scratch_log("file");
    let mut reference = engine();
    {
        let mut log = OpLog::open(&path, SyncPolicy::Always).unwrap();
        for row in [["f", "black", "young"], ["f", "hispanic", "old"]] {
            let raw: Vec<String> = row.iter().map(|s| s.to_string()).collect();
            let coded: Vec<u8> = raw
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    reference
                        .dataset()
                        .schema()
                        .attribute(i)
                        .code_of(v)
                        .unwrap()
                })
                .collect();
            reference.insert(&coded).unwrap();
            log.append(LoggedOp::Insert { rows: vec![raw] }).unwrap();
        }
    }

    let follower = Arc::new(Mutex::new(engine()));
    let status = Arc::new(ReplicationStatus::new("file://shared", 0));
    let stop = Arc::new(AtomicBool::new(false));
    let tail = {
        let (engine, status, stop) = (
            Arc::clone(&follower),
            Arc::clone(&status),
            Arc::clone(&stop),
        );
        let source = ReplicaSource::File(path.clone());
        std::thread::spawn(move || {
            run_follower(engine, source, status, Duration::from_millis(10), stop)
        })
    };
    await_catchup(&status, 2);
    stop.store(true, Ordering::Relaxed);
    tail.join().unwrap().unwrap();
    std::fs::remove_file(&path).ok();

    let follower = follower.lock().unwrap();
    assert_eq!(follower.mups(), reference.mups());
    assert_eq!(follower.dataset().len(), reference.dataset().len());
    assert_eq!(status.entries_applied(), 2);
}

/// Two datasets behind one event loop: requests route by the `"dataset"`
/// field (absent = tenant 0), mutations stay isolated to their tenant,
/// unknown names get the stable `unknown_dataset` code, and `stats` lists
/// the hosted datasets.
#[test]
fn datasets_route_by_name_and_stay_isolated() {
    let hr = {
        let schema = Schema::new(vec![
            Attribute::with_values("dept", ["eng", "sales"]).unwrap(),
            Attribute::with_values("level", ["junior", "senior"]).unwrap(),
        ])
        .unwrap();
        let ds = Dataset::from_rows(schema, &[vec![0, 0], vec![1, 1]]).unwrap();
        CoverageEngine::new(ds, Threshold::Count(1)).unwrap()
    };
    let default_engine = Arc::new(Mutex::new(engine()));
    let hr_engine = Arc::new(Mutex::new(hr));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let tenants = vec![
        TenantSpec::new("default", Arc::clone(&default_engine), ServeOptions::new()),
        TenantSpec::new("hr", Arc::clone(&hr_engine), ServeOptions::new()),
    ];
    std::thread::spawn(move || {
        let _ = serve_tenants(tenants, listener);
    });

    let mut stream = connect(addr);
    let script = concat!(
        "{\"id\":1,\"op\":\"insert\",\"row\":[\"f\",\"black\",\"young\"]}\n",
        "{\"id\":2,\"dataset\":\"hr\",\"op\":\"insert\",\"row\":[\"eng\",\"senior\"]}\n",
        "{\"id\":3,\"dataset\":\"default\",\"op\":\"mups\"}\n",
        "{\"id\":4,\"dataset\":\"hr\",\"op\":\"mups\"}\n",
        "{\"id\":5,\"dataset\":\"payroll\",\"op\":\"mups\"}\n",
    );
    let responses = ask_pipelined(&mut stream, script, 5);
    assert_eq!(
        responses[0],
        r#"{"ok":true,"id":1,"op":"insert","inserted":1,"rows":7}"#
    );
    assert_eq!(
        responses[1],
        r#"{"ok":true,"id":2,"op":"insert","inserted":1,"rows":3}"#
    );
    for response in &responses[2..4] {
        let doc = Json::parse(response).unwrap();
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
    }
    let doc = Json::parse(&responses[4]).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("code").and_then(Json::as_str),
        Some("unknown_dataset")
    );

    // Isolation: each mutation landed only in its own engine.
    assert_eq!(default_engine.lock().unwrap().dataset().len(), 7);
    assert_eq!(hr_engine.lock().unwrap().dataset().len(), 3);

    // The default tenant's stats list every hosted dataset with its
    // routed-request counts.
    let stats = ask_pipelined(&mut stream, "{\"op\":\"stats\"}\n", 1);
    let doc = Json::parse(&stats[0]).unwrap();
    let datasets = doc
        .get("io")
        .and_then(|io| io.get("datasets"))
        .and_then(Json::as_array)
        .expect("stats.io.datasets section");
    let names: Vec<&str> = datasets
        .iter()
        .filter_map(|d| d.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, ["default", "hr"]);
}

/// A `snapshot` pipelined into the *same event-loop tick* as preceding
/// mutations must anchor past them: the event front end stages op-log
/// appends until the engine lock drops, so the snapshot arm has to drain
/// that stage before reading the anchor. Before that drain existed, the
/// snapshot captured engine state including the tick's mutations while the
/// anchor (and the truncation) excluded them — recovery and follower
/// snapshot-sync then replayed the tail and double-applied the rows.
#[test]
fn same_tick_snapshot_anchors_past_staged_mutations() {
    let log_path = scratch_log("snap-anchor");
    let snap_path = std::env::temp_dir().join(format!(
        "mithra-replication-snap-anchor-{}.snap",
        std::process::id()
    ));
    std::fs::remove_file(&log_path).ok();
    std::fs::remove_file(&snap_path).ok();
    let log = Arc::new(Mutex::new(
        OpLog::open(&log_path, SyncPolicy::Batch).unwrap(),
    ));
    let live = Arc::new(Mutex::new(engine()));
    let addr = spawn(
        Arc::clone(&live),
        ServeOptions::new()
            .with_io(IoMode::Event)
            .with_oplog(Some(Arc::clone(&log)))
            .with_snapshot_path(Some(snap_path.clone())),
    );

    // One write, so the whole script lands in one readiness tick: three
    // mutations, a snapshot mid-segment, then two more mutations whose
    // entries form the post-anchor tail.
    let mut stream = connect(addr);
    let script = concat!(
        "{\"op\":\"insert\",\"row\":[\"f\",\"black\",\"young\"]}\n",
        "{\"op\":\"insert\",\"row\":[\"f\",\"hispanic\",\"old\"]}\n",
        "{\"op\":\"insert\",\"row\":[\"m\",\"black\",\"old\"]}\n",
        "{\"op\":\"snapshot\"}\n",
        "{\"op\":\"insert\",\"row\":[\"f\",\"hispanic\",\"old\"]}\n",
        "{\"op\":\"delete\",\"row\":[\"f\",\"black\",\"young\"]}\n",
    );
    let responses = ask_pipelined(&mut stream, script, 6);
    for response in &responses {
        let doc = Json::parse(response).unwrap();
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
    }
    // The snapshot anchored *after* the three staged inserts, whether or
    // not they shared its tick.
    let snapshot = Json::parse(&responses[3]).unwrap();
    assert_eq!(snapshot.get("oplog_seq").and_then(Json::as_u64), Some(3));

    // Recovery (snapshot + tail replay) reproduces the live engine exactly
    // — no double-applied rows.
    let live_rows = live.lock().unwrap().dataset().len();
    assert_eq!(live_rows, 6 + 4 - 1);
    let (mut recovered, anchor): (CoverageEngine, u64) =
        load_snapshot_anchored(&snap_path, None).unwrap();
    assert_eq!(anchor, 3);
    let tail = read_entries_from(&log_path, anchor + 1).unwrap();
    let applied = replay_entries(&mut recovered, &tail, anchor).unwrap();
    assert_eq!(applied, 5);
    assert_eq!(recovered.dataset().len(), live_rows);
    assert_eq!(recovered.mups(), live.lock().unwrap().mups());

    std::fs::remove_file(&log_path).ok();
    std::fs::remove_file(&snap_path).ok();
}
