//! Cross-algorithm agreement: all five MUP identification algorithms must
//! return the same set on every dataset.

use mithra::prelude::*;

fn all_algorithms() -> Vec<Box<dyn MupAlgorithm>> {
    vec![
        Box::new(NaiveMup::default()),
        Box::new(PatternBreaker::default()),
        Box::new(PatternCombiner::default()),
        Box::new(DeepDiver::default()),
        Box::new(Apriori::default()),
    ]
}

fn assert_all_agree(ds: &Dataset, threshold: Threshold, label: &str) {
    let algorithms = all_algorithms();
    let reference = algorithms[0]
        .find_mups(ds, threshold)
        .unwrap_or_else(|e| panic!("{label}: reference failed: {e}"));
    for alg in &algorithms[1..] {
        let got = alg
            .find_mups(ds, threshold)
            .unwrap_or_else(|e| panic!("{label}/{}: failed: {e}", alg.name()));
        assert_eq!(got, reference, "{label}: {} disagrees", alg.name());
    }
}

#[test]
fn agree_on_airbnb_like_across_thresholds() {
    let ds = mithra::data::generators::airbnb_like(2_000, 8, 42).unwrap();
    for tau in [1, 5, 25, 100, 500] {
        assert_all_agree(&ds, Threshold::Count(tau), &format!("airbnb tau={tau}"));
    }
}

#[test]
fn agree_on_bluenile_like_high_cardinality() {
    let ds = mithra::data::generators::bluenile_like(3_000, 7)
        .unwrap()
        .project(&[0, 1, 4, 6])
        .unwrap();
    for tau in [2, 20, 200] {
        assert_all_agree(&ds, Threshold::Count(tau), &format!("bluenile tau={tau}"));
    }
}

#[test]
fn agree_on_compas_like() {
    let ds = mithra::data::generators::compas_like(&Default::default()).unwrap();
    for tau in [10, 50] {
        assert_all_agree(&ds, Threshold::Count(tau), &format!("compas tau={tau}"));
    }
}

#[test]
fn agree_on_diagonal_worst_case() {
    let ds = mithra::data::generators::diagonal_dataset(8).unwrap();
    assert_all_agree(&ds, Threshold::Count(5), "diagonal");
}

#[test]
fn agree_on_vertex_cover_reduction() {
    let ds = mithra::data::generators::vertex_cover_dataset(
        &mithra::data::generators::SampleGraph::figure1(),
    )
    .unwrap();
    assert_all_agree(&ds, Threshold::Count(3), "vertex-cover");
}

#[test]
fn agree_with_fractional_thresholds() {
    let ds = mithra::data::generators::airbnb_like(1_500, 7, 9).unwrap();
    for rate in [1e-4, 1e-2, 0.2] {
        assert_all_agree(&ds, Threshold::Fraction(rate), &format!("rate={rate}"));
    }
}

#[test]
fn level_bounded_variants_agree_with_filtered_full_output() {
    let ds = mithra::data::generators::bluenile_like(1_000, 3)
        .unwrap()
        .project(&[1, 2, 4, 5])
        .unwrap();
    let full = DeepDiver::default()
        .find_mups(&ds, Threshold::Count(15))
        .unwrap();
    for max_level in 1..=4 {
        let expected: Vec<_> = full
            .iter()
            .filter(|m| m.level() <= max_level)
            .cloned()
            .collect();
        let dd = DeepDiver::with_max_level(max_level)
            .find_mups(&ds, Threshold::Count(15))
            .unwrap();
        let pb = PatternBreaker::with_max_level(max_level)
            .find_mups(&ds, Threshold::Count(15))
            .unwrap();
        assert_eq!(dd, expected, "DeepDiver max_level={max_level}");
        assert_eq!(pb, expected, "PatternBreaker max_level={max_level}");
    }
}
