//! Smoke tests: every example in `examples/` must run to completion via
//! `cargo run --example`, keeping the quickstart documentation honest.

use std::process::Command;

/// Runs one example through Cargo (the same entry point the README
/// documents) and asserts it exits successfully with non-empty output.
fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` failed with {:?}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example `{name}` printed nothing"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn compas_audit_runs() {
    run_example("compas_audit");
}

#[test]
fn nutritional_label_runs() {
    run_example("nutritional_label");
}

#[test]
fn data_acquisition_runs() {
    run_example("data_acquisition");
}
