//! Offline shim for the subset of the `csv` crate API this workspace uses:
//! header-aware reading via `ReaderBuilder`/`Reader::records`, and writing
//! via `Writer`. Parsing is RFC-4180: quoted fields may contain commas,
//! doubled quotes, and embedded line breaks; CRLF and LF line endings are
//! accepted. Not implemented: custom delimiters, serde, byte records.

use std::fmt;
use std::io::{self, Read, Write};

/// An error produced while reading or writing CSV data.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// One parsed row of string fields.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StringRecord {
    fields: Vec<String>,
}

impl StringRecord {
    pub fn get(&self, index: usize) -> Option<&str> {
        self.fields.get(index).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(String::as_str)
    }
}

impl<'a> IntoIterator for &'a StringRecord {
    type Item = &'a str;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, String>, fn(&'a String) -> &'a str>;
    fn into_iter(self) -> Self::IntoIter {
        self.fields.iter().map(String::as_str)
    }
}

/// Builder mirroring `csv::ReaderBuilder`.
#[derive(Clone, Debug)]
pub struct ReaderBuilder {
    has_headers: bool,
}

impl Default for ReaderBuilder {
    fn default() -> Self {
        Self { has_headers: true }
    }
}

impl ReaderBuilder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self::default()
    }

    pub fn has_headers(&mut self, yes: bool) -> &mut Self {
        self.has_headers = yes;
        self
    }

    pub fn from_reader<R: Read>(&self, reader: R) -> Reader<R> {
        Reader {
            reader: Some(reader),
            has_headers: self.has_headers,
            state: None,
        }
    }
}

/// Parsed-input state: all records, plus the header row if one was read.
struct Parsed {
    headers: StringRecord,
    records: std::vec::IntoIter<StringRecord>,
    error: Option<String>,
}

/// A CSV reader over any `io::Read`.
pub struct Reader<R> {
    reader: Option<R>,
    has_headers: bool,
    state: Option<Parsed>,
}

impl<R: Read> Reader<R> {
    pub fn from_reader(reader: R) -> Self {
        ReaderBuilder::new().from_reader(reader)
    }

    /// Reads (or returns the cached) header record. With `has_headers(false)`
    /// this is an empty record — a deliberate divergence from upstream
    /// (which returns the first data row); this workspace always reads with
    /// headers enabled.
    pub fn headers(&mut self) -> Result<&StringRecord, Error> {
        self.ensure_parsed()?;
        let state = self.state.as_ref().expect("parsed above");
        Ok(&state.headers)
    }

    /// Iterates over data records (header excluded when `has_headers`).
    pub fn records(&mut self) -> Records<'_> {
        let parse_error = self.ensure_parsed().err();
        Records {
            state: self.state.as_mut(),
            parse_error,
        }
    }

    fn ensure_parsed(&mut self) -> Result<(), Error> {
        if self.state.is_some() {
            return Ok(());
        }
        let mut input = String::new();
        self.reader
            .take()
            .expect("reader consumed exactly once")
            .read_to_string(&mut input)?;
        let (rows, error) = parse_all(&input);
        let mut rows = rows.into_iter();
        let headers = if self.has_headers {
            rows.next().unwrap_or_default()
        } else {
            StringRecord::default()
        };
        self.state = Some(Parsed {
            headers,
            records: rows.collect::<Vec<_>>().into_iter(),
            error,
        });
        Ok(())
    }
}

/// Iterator over `Result<StringRecord, Error>`.
pub struct Records<'r> {
    state: Option<&'r mut Parsed>,
    parse_error: Option<Error>,
}

impl Iterator for Records<'_> {
    type Item = Result<StringRecord, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(e) = self.parse_error.take() {
            return Some(Err(e));
        }
        let state = self.state.as_mut()?;
        match state.records.next() {
            Some(rec) => Some(Ok(rec)),
            None => state.error.take().map(|m| Err(Error::new(m))),
        }
    }
}

/// Parses the whole input; returns complete records plus a trailing error
/// (e.g. an unterminated quote) to surface after the good records.
fn parse_all(input: &str) -> (Vec<StringRecord>, Option<String>) {
    let mut records = Vec::new();
    let mut fields: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut field_started = false;

    macro_rules! end_field {
        () => {{
            fields.push(std::mem::take(&mut field));
            field_started = false;
        }};
    }
    macro_rules! end_record {
        () => {{
            end_field!();
            // Skip blank lines (a single empty field), as upstream does.
            if !(fields.len() == 1 && fields[0].is_empty()) {
                records.push(StringRecord {
                    fields: std::mem::take(&mut fields),
                });
            } else {
                fields.clear();
            }
        }};
    }

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' if !field_started => {
                in_quotes = true;
                field_started = true;
            }
            ',' => end_field!(),
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                end_record!();
            }
            '\n' => end_record!(),
            _ => {
                field.push(c);
                field_started = true;
            }
        }
    }
    if in_quotes {
        return (records, Some("unterminated quoted field".to_string()));
    }
    // Final record when the input lacks a trailing newline.
    if field_started || !fields.is_empty() {
        fields.push(field);
        if !(fields.len() == 1 && fields[0].is_empty()) {
            records.push(StringRecord { fields });
        }
    }
    (records, None)
}

/// A CSV writer over any `io::Write`.
pub struct Writer<W: Write> {
    writer: W,
}

impl<W: Write> Writer<W> {
    pub fn from_writer(writer: W) -> Self {
        Self { writer }
    }

    pub fn write_record<I, T>(&mut self, record: I) -> Result<(), Error>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<str>,
    {
        let mut first = true;
        for cell in record {
            if !first {
                self.writer.write_all(b",")?;
            }
            first = false;
            let cell = cell.as_ref();
            if cell.contains(['"', ',', '\n', '\r']) {
                let escaped = cell.replace('"', "\"\"");
                write!(self.writer, "\"{escaped}\"")?;
            } else {
                self.writer.write_all(cell.as_bytes())?;
            }
        }
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(input: &str) -> (StringRecord, Vec<StringRecord>) {
        let mut rdr = ReaderBuilder::new()
            .has_headers(true)
            .from_reader(input.as_bytes());
        let headers = rdr.headers().unwrap().clone();
        let records: Vec<_> = rdr.records().map(|r| r.unwrap()).collect();
        (headers, records)
    }

    #[test]
    fn plain_fields_and_headers() {
        let (h, rows) = read_all("a,b,c\n1,2,3\n4,5,6\n");
        assert_eq!(h.iter().collect::<Vec<_>>(), ["a", "b", "c"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get(2), Some("6"));
        assert_eq!(rows[0].get(9), None);
    }

    #[test]
    fn quoted_fields_with_commas_newlines_and_quotes() {
        let (_, rows) = read_all("h1,h2\n\"a,b\",\"line1\nline2\"\n\"say \"\"hi\"\"\",x\n");
        assert_eq!(rows[0].get(0), Some("a,b"));
        assert_eq!(rows[0].get(1), Some("line1\nline2"));
        assert_eq!(rows[1].get(0), Some("say \"hi\""));
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let (_, rows) = read_all("h\r\nv1\r\nv2");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get(0), Some("v2"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let (_, rows) = read_all("h\n\nv\n\n");
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let mut rdr = ReaderBuilder::new().from_reader("h\n\"open\n".as_bytes());
        let results: Vec<_> = rdr.records().collect();
        assert!(results.last().unwrap().is_err());
    }

    #[test]
    fn writer_round_trips_with_quoting() {
        let mut buf = Vec::new();
        {
            let mut w = Writer::from_writer(&mut buf);
            w.write_record(["h1", "h2"]).unwrap();
            w.write_record(["a,b", "say \"hi\""]).unwrap();
            w.flush().unwrap();
        }
        let (h, rows) = read_all(std::str::from_utf8(&buf).unwrap());
        assert_eq!(h.get(1), Some("h2"));
        assert_eq!(rows[0].get(0), Some("a,b"));
        assert_eq!(rows[0].get(1), Some("say \"hi\""));
    }
}
