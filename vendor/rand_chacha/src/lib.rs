//! Offline shim for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the workspace `rand` shim's `RngCore`/`SeedableRng`.
//!
//! The block function is the genuine ChaCha permutation (RFC 7539 layout,
//! 8 double-rounds ⇒ "ChaCha8"), so the statistical quality matches the
//! upstream crate; only the seed-to-stream mapping details (nonce handling)
//! are simplified. All consumers in this workspace construct it through
//! `SeedableRng::seed_from_u64`, which is deterministic here as upstream.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const CHACHA8_DOUBLE_ROUNDS: usize = 4; // 8 rounds total

/// A ChaCha RNG with 8 rounds, seeded from 32 bytes.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` means "refill".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, 64-bit block counter, zero nonce.
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA8_DOUBLE_ROUNDS {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buffer[self.cursor];
        self.cursor += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buffer: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let first: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        let mut a2 = ChaCha8Rng::seed_from_u64(42);
        assert_ne!(first, (0..4).map(|_| a2.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn unit_interval_and_ranges_work() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 1000 uniforms should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
        for _ in 0..100 {
            let v: u8 = r.random_range(0..3);
            assert!(v < 3);
        }
    }

    #[test]
    fn blocks_continue_across_refills() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..40).map(|_| r.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(1);
        let second: Vec<u32> = (0..40).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        // 40 words spans multiple 16-word blocks; ensure not all equal.
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
