//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! It keeps proptest's *shape* — `Strategy`, `ValueTree`, `prop_map` /
//! `prop_flat_map`, `proptest::collection::vec`, `prop_oneof!`, the
//! `proptest!` macro with `#![proptest_config]`, and `prop_assert*` — backed
//! by a deterministic ChaCha8 generator, so property tests explore a fixed,
//! reproducible sample of the input space on every run. Shrinking of failing
//! cases is not implemented: a failure reports the case number and message,
//! and the deterministic RNG means the same case reproduces under a
//! debugger. Swap in upstream `proptest` for minimized counterexamples.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strategy),+)
    };
}

/// Property-test declaration: each `fn name(binding in strategy, ...)` body
/// runs `config.cases` times with fresh generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::deterministic();
                for case in 0..config.cases {
                    $(
                        let $binding = $crate::strategy::ValueTree::current(
                            &$crate::strategy::Strategy::new_tree(&($strategy), &mut runner)
                                .expect("strategy generation cannot fail in the shim"),
                        );
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Like `assert!` but reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` but reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, "{left:?} != {right:?}");
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, "{left:?} != {right:?}: {}", format!($($fmt)+));
    }};
}

/// Like `assert_ne!` but reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "both sides equal {left:?}");
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "both sides equal {left:?}: {}", format!($($fmt)+));
    }};
}
