//! Test-runner state: configuration, the deterministic RNG, and the failure
//! type threaded through `prop_assert*`.

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-`proptest!` block configuration. Only `cases` is honoured by the
/// shim; the other knobs upstream offers (forking, shrink iterations,
/// persistence) have no equivalent here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated input cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Carries generator state through a property run.
pub struct TestRunner {
    rng: ChaCha8Rng,
}

impl TestRunner {
    /// A runner with a fixed seed: every `cargo test` run explores the same
    /// inputs, which is what this repo's CI reproducibility story needs.
    pub fn deterministic() -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(0x70726f7074657374), // "proptest"
        }
    }

    pub(crate) fn random_f64(&mut self) -> f64 {
        self.rng.random()
    }

    pub(crate) fn random_u64(&mut self) -> u64 {
        self.rng.random()
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub(crate) fn random_usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        if hi == usize::MAX {
            // Avoid overflow in the exclusive upper bound; this extreme
            // never occurs with the size ranges used in practice.
            return self.rng.random();
        }
        self.rng.random_range(lo..hi + 1)
    }
}

/// A failed property case (no shrinking in the shim — see crate docs).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }

    /// Upstream-compatible alias.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::fail(reason)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias mirroring upstream.
pub type TestCaseResult = Result<(), TestCaseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_runners_agree() {
        let mut a = TestRunner::deterministic();
        let mut b = TestRunner::deterministic();
        for _ in 0..32 {
            assert_eq!(a.random_u64(), b.random_u64());
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = TestRunner::deterministic();
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..200 {
            match r.random_usize_inclusive(2, 4) {
                2 => lo_seen = true,
                4 => hi_seen = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
