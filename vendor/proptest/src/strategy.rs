//! Strategies: composable random-value generators.
//!
//! The shim collapses proptest's strategy/value-tree split: a "tree" is just
//! the generated value (no shrinking), so `Strategy::new_tree` always
//! succeeds and `ValueTree::current` clones the value out.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRunner;

/// A generated value plus (upstream) its shrink state; here, just the value.
pub trait ValueTree {
    type Value;
    fn current(&self) -> Self::Value;
}

/// The trivial value tree wrapping an already-generated value.
pub struct Node<T: Clone>(T);

impl<T: Clone> ValueTree for Node<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    type Value: Clone;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Upstream-compatible entry point used by `proptest!` and by tests that
    /// drive strategies manually.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Node<Self::Value>, String> {
        Ok(Node(self.generate(runner)))
    }

    fn prop_map<O: Clone, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |runner| self.generate(runner)))
    }
}

/// A type-erased strategy (the closure owns the original).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRunner) -> T>);

impl<T: Clone> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (self.0)(runner)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.generate(runner))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, runner: &mut TestRunner) -> O::Value {
        (self.f)(self.source.generate(runner)).generate(runner)
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            variants.iter().any(|(w, _)| *w > 0),
            "prop_oneof! requires at least one positive weight"
        );
        Self { variants }
    }
}

impl<T: Clone> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = (runner.random_f64() * total as f64) as u64;
        for (weight, strategy) in &self.variants {
            let weight = *weight as u64;
            if pick < weight {
                return strategy.generate(runner);
            }
            pick -= weight;
        }
        // Floating-point edge (pick == total): fall back to the last
        // positively-weighted variant.
        self.variants
            .iter()
            .rev()
            .find(|(w, _)| *w > 0)
            .expect("validated in new()")
            .1
            .generate(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (runner.random_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (runner.random_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut runner = TestRunner::deterministic();
        let strategy = (0u8..4).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = strategy.new_tree(&mut runner).unwrap().current();
            assert!(v % 10 == 0 && v < 40);
        }
    }

    #[test]
    fn flat_map_threads_intermediate_values() {
        let mut runner = TestRunner::deterministic();
        let strategy = (1usize..=3).prop_flat_map(|n| crate::collection::vec(0u8..2, n));
        for _ in 0..50 {
            let v = strategy.generate(&mut runner);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 2));
        }
    }

    #[test]
    fn union_respects_zero_weights() {
        let mut runner = TestRunner::deterministic();
        let strategy = Union::new(vec![(0, Just(1u8).boxed()), (5, Just(2u8).boxed())]);
        for _ in 0..100 {
            assert_eq!(strategy.generate(&mut runner), 2);
        }
    }

    #[test]
    fn union_mixes_weighted_variants() {
        let mut runner = TestRunner::deterministic();
        let strategy = crate::prop_oneof![3 => Just(0u8), 1 => Just(1u8)];
        let draws: Vec<u8> = (0..400).map(|_| strategy.generate(&mut runner)).collect();
        let ones = draws.iter().filter(|&&v| v == 1).count();
        assert!(ones > 40 && ones < 200, "weighting off: {ones}/400 ones");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut runner = TestRunner::deterministic();
        let strategy = (2usize..=4, 2u8..=4);
        for _ in 0..50 {
            let (d, c) = strategy.generate(&mut runner);
            assert!((2..=4).contains(&d));
            assert!((2..=4).contains(&c));
        }
    }
}
