//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        Self {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        let len = runner.random_usize_inclusive(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut runner = TestRunner::deterministic();
        let exact = vec(0u8..5, 7usize);
        assert_eq!(exact.generate(&mut runner).len(), 7);

        let ranged = vec(0u8..5, 0..120);
        let mut lens: Vec<usize> = Vec::new();
        for _ in 0..200 {
            lens.push(ranged.generate(&mut runner).len());
        }
        assert!(lens.iter().all(|&l| l < 120));
        // With 200 draws over [0,119] we should see real spread.
        assert!(lens.iter().max() != lens.iter().min());
    }

    #[test]
    fn nested_vectors() {
        let mut runner = TestRunner::deterministic();
        let rows = vec(vec(0u8..3, 4usize), 2..=5);
        for _ in 0..50 {
            let m = rows.generate(&mut runner);
            assert!((2..=5).contains(&m.len()));
            assert!(m
                .iter()
                .all(|row| row.len() == 4 && row.iter().all(|&v| v < 3)));
        }
    }
}
