//! Sequence helpers (`SliceRandom::shuffle`).

use crate::{RngCore, SampleUniform};

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle, deterministic given the RNG state.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_in(rng, 0, i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }
    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut Counter::seed_from_u64(9));
        b.shuffle(&mut Counter::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }

    // Compile-time check that the upstream import shape works.
    #[allow(dead_code)]
    fn upstream_shape(rng: &mut Counter) {
        let mut v = [1, 2, 3];
        v.shuffle(rng);
        let _unused = crate::Rng::random_bool(rng, 0.5);
    }
}
