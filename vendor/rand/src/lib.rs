//! Offline shim for the subset of the `rand` 0.9 API used by this workspace.
//!
//! See README.md: this is a deterministic, dependency-free stand-in, not the
//! upstream crate. Generators in this repo rely on *self*-consistency (same
//! seed ⇒ same stream), which this shim guarantees; bit-compatibility with
//! upstream `rand` streams is not a goal.

pub mod seq;

/// A source of random `u32`/`u64` values plus byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the scheme upstream
    /// `rand` documents for this method) and builds the RNG from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used for seed expansion and as the engine behind small tools.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from the "standard" distribution
/// (`rng.random::<T>()`).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with `random_range`.
pub trait SampleUniform: Copy {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_exclusive: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift keeps modulo bias below 2^-64 for every span
                // this workspace uses.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + WrappingStep> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, hi.wrapping_next())
    }
}

/// Helper for inclusive ranges: the successor value. Wrapping, which means
/// a full-domain range (`lo..=T::MAX`) is NOT supported — the bound wraps
/// to zero and `sample_in` panics on the empty range. No caller in this
/// workspace draws full-domain inclusive ranges; extend `sample_in` with a
/// widened bound before adding one.
pub trait WrappingStep {
    fn wrapping_next(self) -> Self;
}

macro_rules! impl_wrapping_step {
    ($($t:ty),*) => {$(
        impl WrappingStep for $t {
            fn wrapping_next(self) -> Self {
                self.wrapping_add(1)
            }
        }
    )*};
}
impl_wrapping_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for all `RngCore`.
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sm(SplitMix64);
    impl RngCore for Sm {
        fn next_u32(&mut self) -> u32 {
            (self.0.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Sm(SplitMix64 { state: 1 });
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Sm(SplitMix64 { state: 2 });
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: u8 = r.random_range(3..=4);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Sm(SplitMix64 { state: 3 });
        let _: u8 = r.random_range(5..5);
    }
}
