//! Offline shim for the subset of the Criterion benchmarking API this
//! workspace uses. It is a real (if simple) harness: `Bencher::iter`
//! auto-calibrates an iteration count, measures wall-clock time, and prints
//! `benchmark-id ... time: <mean>` lines, so `cargo bench` both compiles
//! and produces useful numbers without the upstream dependency. Statistical
//! analysis (outlier detection, regression vs. saved baselines, HTML
//! reports) is intentionally out of scope.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark; kept short because the shim does
/// no statistical analysis that would benefit from long runs.
const TARGET_TIME: Duration = Duration::from_millis(300);
const DEFAULT_SAMPLE_SIZE: usize = 100;

/// Entry point handed to benchmark functions by `criterion_group!`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [FILTER]`; honour a
        // positional filter so `cargo bench -- <substring>` narrows the run.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Self { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Upstream uses this to trade precision for speed; the shim scales its
    /// calibration budget accordingly.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &full, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &full, self.sample_size, |b| {
            b_input(&mut f, b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn b_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(f: &mut F, b: &mut Bencher, input: &I) {
    f(b, input)
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name in `bench_function`-style calls.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the measured closure; collects one timing estimate.
pub struct Bencher {
    mean_ns: f64,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: double the iteration count until the batch is long
        // enough to time reliably, then measure within the budget.
        let mut iters: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= (1 << 20) {
                break;
            }
            iters *= 2;
        }
        let mut total = elapsed;
        let mut total_iters = iters;
        while total < self.budget {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            total += start.elapsed();
            total_iters += iters;
        }
        self.mean_ns = total.as_nanos() as f64 / total_iters as f64;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, sample_size: usize, mut f: F) {
    if !c.matches(id) {
        return;
    }
    // Small sample sizes signal heavy benchmarks upstream; shrink the budget
    // proportionally so whole suites stay fast.
    let budget = TARGET_TIME.mul_f64((sample_size as f64 / DEFAULT_SAMPLE_SIZE as f64).min(1.0));
    let mut bencher = Bencher {
        mean_ns: 0.0,
        budget,
    };
    f(&mut bencher);
    println!("{id:<60} time: {:>12}", format_time(bencher.mean_ns));
}

/// Declares a function that runs each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; $($rest:tt)*) => { $crate::criterion_group!($name, $($rest)*); };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            mean_ns: 0.0,
            budget: Duration::from_millis(5),
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("cov", 3).into_benchmark_id(), "cov/3");
        assert_eq!(BenchmarkId::from_parameter(9).into_benchmark_id(), "9");
    }

    #[test]
    fn format_time_scales() {
        assert_eq!(format_time(12.0), "12.0 ns");
        assert_eq!(format_time(1_500.0), "1.50 µs");
        assert_eq!(format_time(2_000_000.0), "2.00 ms");
        assert_eq!(format_time(3.2e9), "3.200 s");
    }
}
