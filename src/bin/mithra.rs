//! `mithra` — command-line coverage auditing for CSV datasets.
//!
//! ```text
//! mithra audit   <file.csv> --attrs sex,race,age --tau 30 [--max-level L]
//! mithra enhance <file.csv> --attrs sex,race,age --tau 30 --lambda 2
//! ```
//!
//! `audit` prints the coverage report (MUPs per level, maximum covered
//! level, decoded patterns); `enhance` additionally plans the minimum data
//! collection that fixes every uncovered pattern at level λ.

use std::process::ExitCode;

use mithra::data::io::read_csv_auto_path;
use mithra::prelude::*;

struct Args {
    command: String,
    file: String,
    attrs: Vec<String>,
    tau: Threshold,
    lambda: usize,
    max_level: Option<usize>,
    limit: usize,
}

fn usage() -> String {
    "usage:\n  mithra audit   <file.csv> --attrs a,b,c --tau N|--rate F [--max-level L] [--limit K]\n  mithra enhance <file.csv> --attrs a,b,c --tau N|--rate F --lambda L"
        .to_string()
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let command = argv.next().ok_or_else(usage)?;
    if !matches!(command.as_str(), "audit" | "enhance") {
        return Err(usage());
    }
    let file = argv.next().ok_or_else(usage)?;
    let mut attrs = Vec::new();
    let mut tau = None;
    let mut lambda = 2usize;
    let mut max_level = None;
    let mut limit = 20usize;
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--attrs" => {
                attrs = value()?.split(',').map(|s| s.trim().to_string()).collect()
            }
            "--tau" => {
                tau = Some(Threshold::Count(
                    value()?.parse().map_err(|e| format!("--tau: {e}"))?,
                ))
            }
            "--rate" => {
                tau = Some(Threshold::Fraction(
                    value()?.parse().map_err(|e| format!("--rate: {e}"))?,
                ))
            }
            "--lambda" => lambda = value()?.parse().map_err(|e| format!("--lambda: {e}"))?,
            "--max-level" => {
                max_level = Some(value()?.parse().map_err(|e| format!("--max-level: {e}"))?)
            }
            "--limit" => limit = value()?.parse().map_err(|e| format!("--limit: {e}"))?,
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if attrs.is_empty() {
        return Err("--attrs is required".into());
    }
    Ok(Args {
        command,
        file,
        attrs,
        tau: tau.ok_or("--tau or --rate is required")?,
        lambda,
        max_level,
        limit,
    })
}

fn decode(pattern: &Pattern, ds: &Dataset) -> String {
    let parts: Vec<String> = (0..ds.arity())
        .filter_map(|i| {
            pattern.get(i).map(|v| {
                format!(
                    "{}={}",
                    ds.schema().attribute(i).name(),
                    ds.schema().attribute(i).value_name(v)
                )
            })
        })
        .collect();
    if parts.is_empty() {
        "(anything)".into()
    } else {
        parts.join(", ")
    }
}

fn run(args: Args) -> Result<(), String> {
    let attr_refs: Vec<&str> = args.attrs.iter().map(String::as_str).collect();
    let ds = read_csv_auto_path(&args.file, &attr_refs, None)
        .map_err(|e| format!("{}: {e}", args.file))?;
    let algorithm = match args.max_level {
        Some(l) => DeepDiver::with_max_level(l),
        None => DeepDiver::default(),
    };
    let report = CoverageReport::audit_with(&algorithm, &ds, args.tau)
        .map_err(|e| e.to_string())?;

    println!(
        "{}: {} rows, {} attributes, τ = {}",
        args.file,
        ds.len(),
        ds.arity(),
        report.tau
    );
    println!(
        "maximal uncovered patterns: {}   maximum covered level: {}/{}",
        report.mup_count(),
        report.maximum_covered_level(),
        report.arity
    );
    for (level, &count) in report.level_histogram.iter().enumerate() {
        if count > 0 {
            println!("  level {level}: {count}");
        }
    }
    println!("\nmost general MUPs (first {}):", args.limit);
    for mup in report.mups.iter().take(args.limit) {
        println!("  {mup}  {}", decode(mup, &ds));
    }

    if args.command == "enhance" {
        let plan = CoverageEnhancer::default()
            .plan_for_level(
                &GreedyHittingSet,
                &report.mups,
                &ds.schema().cardinalities(),
                args.lambda,
            )
            .map_err(|e| e.to_string())?;
        println!(
            "\nenhancement for λ = {}: {} uncovered pattern(s) to hit, collect {} profile(s):",
            args.lambda,
            plan.input_size(),
            plan.output_size()
        );
        let oracle = CoverageReport::oracle_for(&ds);
        let copies = plan.required_copies(&oracle, report.tau);
        for ((combo, general), n) in plan
            .combinations
            .iter()
            .zip(&plan.generalized)
            .zip(&copies)
        {
            let human: Vec<String> = combo
                .iter()
                .enumerate()
                .map(|(i, &v)| ds.schema().attribute(i).value_name(v))
                .collect();
            println!(
                "  ({})  × {n} tuples   — any tuple matching {general} counts",
                human.join(", ")
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
