//! `mithra` — command-line coverage auditing for CSV datasets.
//!
//! ```text
//! mithra audit        <file.csv> --attrs sex,race,age --tau 30 [--max-level L]
//! mithra enhance      <file.csv> --attrs sex,race,age --tau 30 --lambda 2
//! mithra serve        <file.csv> --attrs sex,race,age --tau 30 [--listen ADDR] [--io event|blocking] [--snapshot PATH] [--backend dense|compressed]
//! mithra loadgen      [--io event|blocking] [--connections N] [--secs S] …
//! mithra bench-report [--quick]
//! ```
//!
//! `audit` prints the coverage report (MUPs per level, maximum covered
//! level, decoded patterns); `enhance` additionally plans the minimum data
//! collection that fixes every uncovered pattern at level λ; `serve` keeps
//! the dataset live behind an incremental coverage engine and answers
//! newline-delimited JSON requests on stdin/stdout (or TCP with
//! `--listen`). The serving engine shards its coverage index over
//! `--shards N` row partitions (default: one per available core, capped so
//! every shard starts with a few thousand rows) for multi-core ingest and
//! wide probes. With
//! `--snapshot PATH` the served state persists across restarts: an existing
//! snapshot is restored without a re-audit. `--backend compressed` swaps the
//! dense per-value bit vectors for Roaring-style compressed posting lists —
//! same answers, a fraction of the memory on sparse/high-cardinality data.

use std::io::Write;
use std::process::ExitCode;

use mithra::data::io::read_csv_auto_path;
use mithra::prelude::*;

/// `println!` that exits quietly when stdout is a closed pipe (e.g.
/// `mithra audit … | head`) instead of panicking with a backtrace.
macro_rules! out {
    ($($arg:tt)*) => {
        if let Err(e) = writeln!(std::io::stdout(), $($arg)*) {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                std::process::exit(0);
            }
            return Err(format!("cannot write to stdout: {e}"));
        }
    };
}

/// Which coverage-index representation `serve` runs on. Both give
/// bit-identical answers; they trade memory for per-probe constant factors
/// (see `coverage_index::CompressedOracle`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// One dense bitmap per (attribute, value) — fastest point probes.
    Dense,
    /// Roaring-style compressed posting lists — a fraction of the memory
    /// on sparse or high-cardinality data.
    Compressed,
}

#[derive(Debug)]
struct Args {
    command: String,
    file: String,
    attrs: Vec<String>,
    tau: Threshold,
    lambda: usize,
    max_level: Option<usize>,
    limit: usize,
    listen: Option<String>,
    threads: usize,
    snapshot: Option<std::path::PathBuf>,
    /// `None` = default (machine parallelism for fresh starts, the
    /// snapshot's recorded layout on restore).
    shards: Option<usize>,
    /// Auto-register unknown value strings on insert (dictionary growth).
    grow_schema: bool,
    /// TCP front end: the readiness-driven event loop (default) or the
    /// legacy thread-per-connection pool.
    io: coverage_service::IoMode,
    /// Event-loop admission bound (requests per tick before `overloaded`).
    max_pending: usize,
    /// Append-only durability log: every applied mutation is recorded here,
    /// and recovery is snapshot + tail replay.
    oplog: Option<std::path::PathBuf>,
    /// Fsync policy for the op log.
    oplog_sync: coverage_service::SyncPolicy,
    /// Run as a read-only follower tailing this leader (`host:port` for the
    /// `replicate` protocol op, or a path to the leader's log file).
    follow: Option<String>,
    /// Extra named datasets to host next to the default one:
    /// `(name, csv path)` pairs from `--datasets name=file.csv,…`.
    datasets: Vec<(String, String)>,
    /// `None` = default (the backend an existing snapshot was taken under,
    /// dense for fresh starts).
    backend: Option<Backend>,
}

fn usage() -> String {
    "usage:\n  mithra audit        <file.csv> --attrs a,b,c --tau N|--rate F [--max-level L] [--limit K]\n  mithra enhance      <file.csv> --attrs a,b,c --tau N|--rate F --lambda L\n  mithra serve        <file.csv> --attrs a,b,c --tau N|--rate F [--listen ADDR] [--io event|blocking] [--threads N] [--max-pending N] [--shards N] [--backend dense|compressed] [--snapshot PATH] [--grow-schema]\n                      [--oplog PATH] [--oplog-sync always|batch|off] [--follow ADDR|PATH] [--datasets name=file.csv,…]\n  mithra loadgen      [--io event|blocking] [--connections N] [--secs S] [--mix I,C] [--deletes PCT] …\n  mithra bench-report [--quick]"
        .to_string()
}

/// Formats a flag-value error with the usage text attached, so every
/// malformed invocation tells the user how to fix it.
fn flag_error(flag: &str, detail: impl std::fmt::Display) -> String {
    format!("{flag}: {detail}\n{}", usage())
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let command = argv.next().ok_or_else(usage)?;
    if !matches!(command.as_str(), "audit" | "enhance" | "serve") {
        return Err(usage());
    }
    let file = argv.next().ok_or_else(usage)?;
    let mut attrs = Vec::new();
    let mut tau = None;
    let mut lambda = None;
    let mut max_level = None;
    let mut limit = None;
    let mut listen = None;
    let mut threads = None;
    let mut snapshot = None;
    let mut shards = None;
    let mut grow_schema = false;
    let mut io = None;
    let mut max_pending = None;
    let mut oplog = None;
    let mut oplog_sync = None;
    let mut follow = None;
    let mut datasets: Vec<(String, String)> = Vec::new();
    let mut backend = None;
    while let Some(flag) = argv.next() {
        let mut value = || {
            argv.next()
                .ok_or_else(|| flag_error(&flag, "missing value"))
        };
        match flag.as_str() {
            "--attrs" => {
                attrs = value()?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--tau" => {
                let count: u64 = value()?.parse().map_err(|e| flag_error("--tau", e))?;
                if count == 0 {
                    return Err(flag_error("--tau", "threshold must be at least 1"));
                }
                tau = Some(Threshold::Count(count));
            }
            "--rate" => {
                let rate: f64 = value()?.parse().map_err(|e| flag_error("--rate", e))?;
                if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
                    return Err(flag_error(
                        "--rate",
                        format!("rate must be a fraction in (0, 1], got `{rate}`"),
                    ));
                }
                tau = Some(Threshold::Fraction(rate));
            }
            "--lambda" => {
                let level: usize = value()?.parse().map_err(|e| flag_error("--lambda", e))?;
                if level == 0 {
                    return Err(flag_error("--lambda", "level must be at least 1"));
                }
                lambda = Some(level);
            }
            "--max-level" => {
                let level: usize = value()?.parse().map_err(|e| flag_error("--max-level", e))?;
                if level == 0 {
                    // Level 0 would silently explore nothing and report the
                    // dataset as fully covered.
                    return Err(flag_error("--max-level", "level must be at least 1"));
                }
                max_level = Some(level);
            }
            "--limit" => limit = Some(value()?.parse().map_err(|e| flag_error("--limit", e))?),
            "--listen" => listen = Some(value()?),
            "--snapshot" => snapshot = Some(std::path::PathBuf::from(value()?)),
            "--threads" => {
                let workers: usize = value()?.parse().map_err(|e| flag_error("--threads", e))?;
                if workers == 0 {
                    return Err(flag_error("--threads", "need at least one worker"));
                }
                threads = Some(workers);
            }
            "--shards" => {
                let count: usize = value()?.parse().map_err(|e| flag_error("--shards", e))?;
                if count == 0 {
                    return Err(flag_error("--shards", "need at least one shard"));
                }
                shards = Some(count);
            }
            "--grow-schema" => grow_schema = true,
            "--backend" => {
                backend = Some(match value()?.as_str() {
                    "dense" => Backend::Dense,
                    "compressed" => Backend::Compressed,
                    other => {
                        return Err(flag_error(
                            "--backend",
                            format!("unknown backend `{other}` (expected dense or compressed)"),
                        ));
                    }
                })
            }
            "--io" => {
                io = Some(match value()?.as_str() {
                    "event" => coverage_service::IoMode::Event,
                    "blocking" => coverage_service::IoMode::Blocking,
                    other => {
                        return Err(flag_error("--io", format!("unknown mode `{other}`")));
                    }
                })
            }
            "--max-pending" => {
                let bound: usize = value()?
                    .parse()
                    .map_err(|e| flag_error("--max-pending", e))?;
                if bound == 0 {
                    return Err(flag_error("--max-pending", "need at least one slot"));
                }
                max_pending = Some(bound);
            }
            "--oplog" => oplog = Some(std::path::PathBuf::from(value()?)),
            "--oplog-sync" => {
                let text = value()?;
                oplog_sync = Some(coverage_service::SyncPolicy::parse(&text).ok_or_else(|| {
                    flag_error(
                        "--oplog-sync",
                        format!("unknown policy `{text}` (expected always, batch, or off)"),
                    )
                })?);
            }
            "--follow" => follow = Some(value()?),
            "--datasets" => {
                for part in value()?.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let Some((name, file)) = part.split_once('=') else {
                        return Err(flag_error(
                            "--datasets",
                            format!("`{part}` is not `name=file.csv`"),
                        ));
                    };
                    let (name, file) = (name.trim(), file.trim());
                    if name.is_empty() || file.is_empty() {
                        return Err(flag_error(
                            "--datasets",
                            format!("`{part}` is not `name=file.csv`"),
                        ));
                    }
                    if name == "default" {
                        return Err(flag_error(
                            "--datasets",
                            "`default` names the positional <file.csv>; pick another name",
                        ));
                    }
                    if datasets.iter().any(|(n, _)| n == name) {
                        return Err(flag_error(
                            "--datasets",
                            format!("dataset `{name}` given twice"),
                        ));
                    }
                    datasets.push((name.to_string(), file.to_string()));
                }
                if datasets.is_empty() {
                    return Err(flag_error("--datasets", "needs at least one name=file.csv"));
                }
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if attrs.is_empty() {
        return Err(format!("--attrs is required\n{}", usage()));
    }
    if command != "audit" && max_level.is_some() {
        // A level-bounded search can miss deep MUPs, which would make the
        // enhancement plan (or the served MUP set) silently incomplete.
        return Err(flag_error("--max-level", "only supported with `audit`"));
    }
    if command != "serve"
        && (listen.is_some()
            || threads.is_some()
            || snapshot.is_some()
            || shards.is_some()
            || io.is_some()
            || max_pending.is_some()
            || oplog.is_some()
            || oplog_sync.is_some()
            || follow.is_some()
            || !datasets.is_empty()
            || grow_schema
            || backend.is_some())
    {
        let flag = if listen.is_some() {
            "--listen"
        } else if threads.is_some() {
            "--threads"
        } else if shards.is_some() {
            "--shards"
        } else if backend.is_some() {
            "--backend"
        } else if io.is_some() {
            "--io"
        } else if max_pending.is_some() {
            "--max-pending"
        } else if oplog.is_some() {
            "--oplog"
        } else if oplog_sync.is_some() {
            "--oplog-sync"
        } else if follow.is_some() {
            "--follow"
        } else if !datasets.is_empty() {
            "--datasets"
        } else if grow_schema {
            "--grow-schema"
        } else {
            "--snapshot"
        };
        return Err(flag_error(flag, "only supported with `serve`"));
    }
    if oplog_sync.is_some() && oplog.is_none() {
        return Err(flag_error("--oplog-sync", "requires --oplog"));
    }
    if follow.is_some() {
        // A follower's mutations come from the leader's log, so its own
        // durability/growth/tenancy knobs are contradictions, and the
        // replication thread needs a shared (TCP-mode) engine.
        for (set, flag) in [
            (oplog.is_some(), "--oplog"),
            (!datasets.is_empty(), "--datasets"),
            (grow_schema, "--grow-schema"),
        ] {
            if set {
                return Err(flag_error(flag, "cannot be combined with --follow"));
            }
        }
        if listen.is_none() {
            return Err(flag_error("--follow", "requires --listen"));
        }
    }
    if !datasets.is_empty() {
        if listen.is_none() {
            return Err(flag_error("--datasets", "requires --listen"));
        }
        if io == Some(coverage_service::IoMode::Blocking) {
            return Err(flag_error(
                "--datasets",
                "requires the event front end (--io event)",
            ));
        }
    }
    if command == "serve" && listen.is_none() {
        // stdin/stdout mode runs neither front end; silently ignoring
        // these would hide a forgotten --listen.
        for (set, flag) in [
            (threads.is_some(), "--threads"),
            (io.is_some(), "--io"),
            (max_pending.is_some(), "--max-pending"),
        ] {
            if set {
                return Err(flag_error(flag, "requires --listen"));
            }
        }
    }
    if command == "serve" && (lambda.is_some() || limit.is_some()) {
        // λ comes per-request over the protocol (`{"op":"enhance",...}`);
        // silently ignoring these would hide a typo'd invocation.
        let flag = if lambda.is_some() {
            "--lambda"
        } else {
            "--limit"
        };
        return Err(flag_error(flag, "not supported with `serve`"));
    }
    Ok(Args {
        command,
        file,
        attrs,
        tau: tau.ok_or_else(|| format!("--tau or --rate is required\n{}", usage()))?,
        lambda: lambda.unwrap_or(2),
        max_level,
        limit: limit.unwrap_or(20),
        listen,
        threads: threads.unwrap_or(coverage_service::DEFAULT_WORKERS),
        snapshot,
        shards,
        grow_schema,
        io: io.unwrap_or_default(),
        max_pending: max_pending.unwrap_or(coverage_service::DEFAULT_MAX_PENDING),
        oplog,
        oplog_sync: oplog_sync.unwrap_or_default(),
        follow,
        datasets,
        backend,
    })
}

fn decode(pattern: &Pattern, ds: &Dataset) -> String {
    let parts: Vec<String> = (0..ds.arity())
        .filter_map(|i| {
            pattern.get(i).map(|v| {
                format!(
                    "{}={}",
                    ds.schema().attribute(i).name(),
                    ds.schema().attribute(i).value_name(v)
                )
            })
        })
        .collect();
    if parts.is_empty() {
        "(anything)".into()
    } else {
        parts.join(", ")
    }
}

/// Below this many rows per shard, the per-probe overhead of walking extra
/// shards outweighs any ingest parallelism, so the default layout stops
/// splitting (an explicit `--shards` is always honored as given).
const MIN_ROWS_PER_SHARD: usize = 4096;

/// Row-shard count when `--shards` is not given: one shard per available
/// core, capped so every shard starts with at least [`MIN_ROWS_PER_SHARD`]
/// rows — a 100-row dataset on a 64-core host serves from one shard, not
/// 64 near-empty ones.
fn default_shards(rows: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    cores.min(rows / MIN_ROWS_PER_SHARD).max(1)
}

/// Picks the serving backend: an explicit `--backend` always wins; without
/// one, an existing snapshot keeps the backend it was taken under (the same
/// stickiness `--shards` has for shard layout), and fresh starts are dense.
fn resolve_backend(args: &Args) -> Result<Backend, String> {
    if let Some(backend) = args.backend {
        return Ok(backend);
    }
    if let Some(path) = args.snapshot.as_deref() {
        if path.exists() {
            let family = mithra::service::snapshot_backend(path).map_err(|e| e.to_string())?;
            return Ok(match family {
                "compressed" => Backend::Compressed,
                _ => Backend::Dense,
            });
        }
    }
    Ok(Backend::Dense)
}

/// Builds one serving engine — sharded over `--shards N` row partitions of
/// the chosen per-shard backend `O` — restored from `snapshot` when that
/// file exists (no re-audit — the whole point of snapshots), freshly
/// audited from the CSV at `file` otherwise.
/// On restore the snapshot's recorded shard layout wins unless `--shards`
/// was given explicitly, in which case the backend is re-laid-out (cheap:
/// the MUP set stays valid). Also returns the op-log anchor: the log seq
/// the restored snapshot captured (0 for fresh audits and pre-v4
/// snapshots), i.e. where tail replay starts.
fn serve_engine<O: mithra::index::CoverageBackend>(
    args: &Args,
    file: &str,
    snapshot: Option<&std::path::Path>,
) -> Result<
    (
        mithra::service::CoverageEngine<mithra::index::ShardedOracle<O>>,
        u64,
    ),
    String,
> {
    if let Some(path) = snapshot {
        if path.exists() {
            // An explicit --shards overrides the snapshot's recorded layout
            // *at load time*, so the index is built exactly once.
            let (engine, anchor) = mithra::service::load_snapshot_anchored::<
                mithra::index::ShardedOracle<O>,
            >(path, args.shards)
            .map_err(|e| e.to_string())?;
            if engine.threshold() != args.tau {
                return Err(format!(
                    "snapshot {} was taken under a different threshold ({:?}, CLI asked {:?}); \
                     pass the matching --tau/--rate or delete the snapshot to re-audit",
                    path.display(),
                    engine.threshold(),
                    args.tau
                ));
            }
            // The CSV is not read on restore, so --attrs is the only clue to
            // which dataset the operator *meant* to serve — refuse a snapshot
            // over different attributes rather than silently serving it.
            let schema = engine.dataset().schema();
            let names: Vec<&str> = (0..schema.arity())
                .map(|i| schema.attribute(i).name())
                .collect();
            if names != args.attrs.iter().map(String::as_str).collect::<Vec<_>>() {
                return Err(format!(
                    "snapshot {} covers attributes [{}] but the CLI asked for [{}]; \
                     pass the matching --attrs or delete the snapshot to re-audit",
                    path.display(),
                    names.join(","),
                    args.attrs.join(",")
                ));
            }
            eprintln!("restored engine from snapshot {}", path.display());
            return Ok((engine, anchor));
        }
    }
    let attr_refs: Vec<&str> = args.attrs.iter().map(String::as_str).collect();
    let ds = read_csv_auto_path(file, &attr_refs, None).map_err(|e| format!("{file}: {e}"))?;
    let shards = args.shards.unwrap_or_else(|| default_shards(ds.len()));
    let engine = mithra::service::CoverageEngine::<mithra::index::ShardedOracle<O>>::with_shards(
        ds, args.tau, shards,
    )
    .map_err(|e| e.to_string())?;
    Ok((engine, 0))
}

/// Opens (or creates) the leader's op log and replays any tail past the
/// snapshot anchor into the engine, completing crash recovery: rows
/// acknowledged after the last snapshot come back from the log.
fn recover_oplog<O: mithra::index::CoverageBackend>(
    engine: &mut mithra::service::CoverageEngine<mithra::index::ShardedOracle<O>>,
    path: &std::path::Path,
    sync: coverage_service::SyncPolicy,
    anchor: u64,
) -> Result<std::sync::Arc<std::sync::Mutex<coverage_service::OpLog>>, String> {
    use std::sync::{Arc, Mutex};
    let log = coverage_service::OpLog::open_anchored(path, sync, anchor)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = log.entries_from(anchor + 1, usize::MAX).map_err(|oldest| {
        format!(
            "op log {} retains entries only from seq {oldest}, but the snapshot was anchored at \
             seq {anchor}; the intervening entries are gone — restore a newer snapshot or delete \
             both to re-audit from the CSV",
            path.display()
        )
    })?;
    let replayed = entries.len();
    let applied = mithra::service::replay_entries(engine, entries, anchor)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    if replayed > 0 {
        eprintln!(
            "replayed {replayed} op-log entries (seq {}..={applied}) from {}",
            anchor + 1,
            path.display()
        );
    }
    Ok(Arc::new(Mutex::new(log)))
}

/// Appends `.name` to a base path: with `--datasets`, each named dataset
/// derives its snapshot/op-log path from the base flags (`state.snapshot`
/// → `state.snapshot.hr`); the default dataset uses the base itself.
fn dataset_path(base: &std::path::Path, name: &str) -> std::path::PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(".");
    os.push(name);
    std::path::PathBuf::from(os)
}

/// Binds the `--listen` address and reports the resolved local address.
fn bind_listener(addr: &str) -> Result<(std::net::TcpListener, String), String> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());
    Ok((listener, local))
}

/// Maps the serve loop's exit into the CLI's result: a client hanging up
/// (e.g. `| head`) is a normal way to stop.
fn served(result: std::io::Result<()>) -> Result<(), String> {
    match result {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("serve: {e}")),
    }
}

/// `serve`: keep the dataset live behind an incremental engine and answer
/// NDJSON requests on stdin/stdout, or on TCP when `--listen` is given.
/// Diagnostics go to stderr — stdout carries protocol lines only.
///
/// The backend decision happens exactly once, here: every serving flavor
/// (leader, follower, multi-dataset) below is generic over the per-shard
/// oracle and gets monomorphized for both representations.
fn serve(args: &Args) -> Result<(), String> {
    match resolve_backend(args)? {
        Backend::Dense => serve_with::<CoverageOracle>(args),
        Backend::Compressed => serve_with::<CompressedOracle>(args),
    }
}

/// The serve flow for one concrete per-shard backend `O`.
fn serve_with<O: CoverageBackend>(args: &Args) -> Result<(), String> {
    if !args.datasets.is_empty() {
        return serve_datasets::<O>(args);
    }
    if args.follow.is_some() {
        return serve_follower::<O>(args);
    }
    let (mut engine, anchor) = serve_engine::<O>(args, &args.file, args.snapshot.as_deref())?;
    let oplog = match args.oplog.as_deref() {
        Some(path) => Some(recover_oplog(&mut engine, path, args.oplog_sync, anchor)?),
        None => None,
    };
    eprintln!(
        "mithra serve: {} rows, {} attributes, τ = {}, {} MUP(s), {} shard(s), {} backend",
        engine.dataset().len(),
        engine.dataset().arity(),
        engine.tau(),
        engine.mups().len(),
        engine.shards(),
        engine.oracle().backend_name()
    );
    if let Some(log) = &oplog {
        let log = log.lock().unwrap();
        eprintln!(
            "op log {} at seq {} ({} sync)",
            log.path().display(),
            log.last_seq(),
            log.sync_policy().as_str()
        );
    }
    let options = mithra::service::ServeOptions::new()
        .with_snapshot_path(args.snapshot.clone())
        .with_grow_schema(args.grow_schema)
        .with_io(args.io)
        .with_workers(args.threads)
        .with_max_pending(args.max_pending)
        .with_oplog(oplog);
    match &args.listen {
        Some(addr) => {
            let (listener, local) = bind_listener(addr)?;
            match args.io {
                coverage_service::IoMode::Event => eprintln!(
                    "listening on {local} (event loop, max {} pending requests/tick)",
                    args.max_pending
                ),
                coverage_service::IoMode::Blocking => {
                    eprintln!("listening on {local} ({} worker threads)", args.threads)
                }
            }
            let shared = std::sync::Arc::new(std::sync::Mutex::new(engine));
            served(mithra::service::serve(shared, options, listener))
        }
        None => {
            let stdin = std::io::stdin();
            served(mithra::service::serve_lines(
                &mut engine,
                &options,
                stdin.lock(),
                std::io::stdout(),
            ))
        }
    }
}

/// How often a follower polls its leader for new log entries.
const FOLLOW_POLL: std::time::Duration = std::time::Duration::from_millis(200);

/// `serve --follow`: bootstrap the engine (snapshot or CSV), start the
/// replication thread tailing the leader, and serve read-only requests.
fn serve_follower<O: CoverageBackend>(args: &Args) -> Result<(), String> {
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    let spec = args.follow.as_deref().expect("checked by caller");
    let (engine, anchor) = serve_engine::<O>(args, &args.file, args.snapshot.as_deref())?;
    let source = mithra::service::ReplicaSource::parse(spec);
    let status = Arc::new(mithra::service::ReplicationStatus::new(
        source.describe(),
        anchor,
    ));
    eprintln!(
        "mithra serve: read-only follower of {}, {} rows, {} MUP(s), tailing from seq {}",
        status.source(),
        engine.dataset().len(),
        engine.mups().len(),
        anchor + 1
    );
    let engine = Arc::new(Mutex::new(engine));
    let stop = Arc::new(AtomicBool::new(false));
    {
        let engine = Arc::clone(&engine);
        let status = Arc::clone(&status);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            if let Err(e) = mithra::service::run_follower(engine, source, status, FOLLOW_POLL, stop)
            {
                // A fatal replication error means this replica's answers
                // can no longer be trusted; serving on would be worse than
                // dying visibly.
                eprintln!("follower: fatal: {e}");
                std::process::exit(1);
            }
        });
    }
    let options = mithra::service::ServeOptions::new()
        .with_snapshot_path(args.snapshot.clone())
        .with_io(args.io)
        .with_workers(args.threads)
        .with_max_pending(args.max_pending)
        .with_read_only(true)
        .with_replication(Some(status));
    let addr = args.listen.as_deref().expect("checked in parse_args");
    let (listener, local) = bind_listener(addr)?;
    eprintln!("listening on {local} (read-only)");
    served(mithra::service::serve(engine, options, listener))
}

/// `serve --datasets`: host the positional CSV as the `default` dataset
/// plus every `name=file.csv` tenant behind one event loop.
fn serve_datasets<O: CoverageBackend>(args: &Args) -> Result<(), String> {
    use std::sync::{Arc, Mutex};

    let mut specs: Vec<(
        String,
        String,
        Option<std::path::PathBuf>,
        Option<std::path::PathBuf>,
    )> = vec![(
        "default".into(),
        args.file.clone(),
        args.snapshot.clone(),
        args.oplog.clone(),
    )];
    for (name, file) in &args.datasets {
        specs.push((
            name.clone(),
            file.clone(),
            args.snapshot.as_deref().map(|p| dataset_path(p, name)),
            args.oplog.as_deref().map(|p| dataset_path(p, name)),
        ));
    }
    let mut tenants = Vec::with_capacity(specs.len());
    for (name, file, snapshot, oplog_path) in specs {
        let (mut engine, anchor) = serve_engine::<O>(args, &file, snapshot.as_deref())?;
        let oplog = match oplog_path.as_deref() {
            Some(path) => Some(recover_oplog(&mut engine, path, args.oplog_sync, anchor)?),
            None => None,
        };
        eprintln!(
            "dataset `{name}`: {} rows, {} attributes, τ = {}, {} MUP(s), {} shard(s)",
            engine.dataset().len(),
            engine.dataset().arity(),
            engine.tau(),
            engine.mups().len(),
            engine.shards()
        );
        let options = mithra::service::ServeOptions::new()
            .with_snapshot_path(snapshot)
            .with_grow_schema(args.grow_schema)
            .with_io(args.io)
            .with_max_pending(args.max_pending)
            .with_oplog(oplog);
        tenants.push(mithra::service::TenantSpec::new(
            name,
            Arc::new(Mutex::new(engine)),
            options,
        ));
    }
    let addr = args.listen.as_deref().expect("checked in parse_args");
    let (listener, local) = bind_listener(addr)?;
    eprintln!(
        "listening on {local} (event loop, {} datasets, max {} pending requests/tick)",
        tenants.len(),
        args.max_pending
    );
    served(mithra::service::serve_tenants(tenants, listener))
}

fn run(args: Args) -> Result<(), String> {
    if args.command == "serve" {
        // `serve` loads its own data: the CSV, or a snapshot if one exists.
        return serve(&args);
    }
    let attr_refs: Vec<&str> = args.attrs.iter().map(String::as_str).collect();
    let ds = read_csv_auto_path(&args.file, &attr_refs, None)
        .map_err(|e| format!("{}: {e}", args.file))?;
    if args.command == "enhance" && args.lambda > ds.arity() {
        return Err(format!(
            "--lambda {} exceeds the number of attributes ({})",
            args.lambda,
            ds.arity()
        ));
    }
    let algorithm = match args.max_level {
        Some(l) => DeepDiver::with_max_level(l),
        None => DeepDiver::default(),
    };
    let report =
        CoverageReport::audit_with(&algorithm, &ds, args.tau).map_err(|e| e.to_string())?;

    out!(
        "{}: {} rows, {} attributes, τ = {}",
        args.file,
        ds.len(),
        ds.arity(),
        report.tau
    );
    out!(
        "maximal uncovered patterns: {}   maximum covered level: {}/{}",
        report.mup_count(),
        report.maximum_covered_level(),
        report.arity
    );
    for (level, &count) in report.level_histogram.iter().enumerate() {
        if count > 0 {
            out!("  level {level}: {count}");
        }
    }
    out!("\nmost general MUPs (first {}):", args.limit);
    for mup in report.mups.iter().take(args.limit) {
        out!("  {mup}  {}", decode(mup, &ds));
    }

    if args.command == "enhance" {
        let plan = CoverageEnhancer::default()
            .plan_for_level(
                &GreedyHittingSet,
                &report.mups,
                &ds.schema().cardinalities(),
                args.lambda,
            )
            .map_err(|e| e.to_string())?;
        out!(
            "\nenhancement for λ = {}: {} uncovered pattern(s) to hit, collect {} profile(s):",
            args.lambda,
            plan.input_size(),
            plan.output_size()
        );
        let oracle = CoverageReport::oracle_for(&ds);
        let copies = plan.required_copies(&oracle, report.tau);
        for ((combo, general), n) in plan.combinations.iter().zip(&plan.generalized).zip(&copies) {
            let human: Vec<String> = combo
                .iter()
                .enumerate()
                .map(|(i, &v)| ds.schema().attribute(i).value_name(v))
                .collect();
            out!(
                "  ({})  × {n} tuples   — any tuple matching {general} counts",
                human.join(", ")
            );
        }
    }
    Ok(())
}

/// `mithra loadgen`: run the bench crate's load generator against an
/// in-process server and print the JSON report.
fn run_loadgen(argv: impl Iterator<Item = String>) -> ExitCode {
    let config = match coverage_bench::loadgen::parse_args(argv) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let exec = || -> Result<(), String> {
        let report = coverage_bench::loadgen::run(&config)?;
        out!("{}", report.to_json());
        Ok(())
    };
    match exec() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Tolerated ops/s drop when comparing a fresh bench report against a
/// committed one (`bench-report --against FILE`): quick CI runs on shared
/// hosts are noisy, so only a drop past this fraction fails the job.
const BENCH_REGRESSION_TOLERANCE: f64 = 0.20;

/// `mithra bench-report`: measure the op-log durability overhead, follower
/// catch-up replay, and the dense-vs-compressed backend comparison under
/// an identical mixed workload, print the committed `BENCH_10.json`
/// document, and — with `--against FILE` — fail on a throughput
/// regression beyond the tolerance.
fn run_bench_report(mut argv: impl Iterator<Item = String>) -> ExitCode {
    const USAGE: &str = "usage: mithra bench-report [--quick] [--against FILE]";
    let mut quick = false;
    let mut against: Option<String> = None;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--against" => match argv.next() {
                Some(path) => against = Some(path),
                None => {
                    eprintln!("--against: missing value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let exec = || -> Result<(), String> {
        let report = coverage_bench::loadgen::bench_report(quick)?;
        out!("{report}");
        if let Some(path) = against {
            let committed =
                std::fs::read_to_string(&path).map_err(|e| format!("--against {path}: {e}"))?;
            let lines = coverage_bench::loadgen::compare_reports(
                &report,
                &committed,
                BENCH_REGRESSION_TOLERANCE,
            )?;
            for line in lines {
                eprintln!("against {path}: {line}");
            }
        }
        Ok(())
    };
    match exec() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    // The benchmarking subcommands take no CSV/attrs and parse their own
    // flags; route them before the audit/enhance/serve parser.
    match argv.peek().map(String::as_str) {
        Some("loadgen") => return run_loadgen(argv.skip(1)),
        Some("bench-report") => return run_bench_report(argv.skip(1)),
        _ => {}
    }
    match parse_args(argv) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn valid_audit_invocation_parses() {
        let args = parse(&[
            "audit",
            "data.csv",
            "--attrs",
            "sex, race",
            "--tau",
            "30",
            "--max-level",
            "3",
            "--limit",
            "5",
        ])
        .unwrap();
        assert_eq!(args.command, "audit");
        assert_eq!(args.attrs, ["sex", "race"]);
        assert!(matches!(args.tau, Threshold::Count(30)));
        assert_eq!(args.max_level, Some(3));
        assert_eq!(args.limit, 5);
    }

    #[test]
    fn rate_threshold_parses() {
        let args = parse(&["enhance", "d.csv", "--attrs", "a", "--rate", "0.01"]).unwrap();
        assert!(matches!(args.tau, Threshold::Fraction(f) if (f - 0.01).abs() < 1e-12));
    }

    #[test]
    fn unknown_command_and_missing_args_show_usage() {
        for argv in [&["frobnicate"][..], &[][..], &["audit"][..]] {
            let err = parse(argv).unwrap_err();
            assert!(err.contains("usage:"), "no usage in: {err}");
        }
    }

    #[test]
    fn malformed_tau_is_a_usage_error_not_a_panic() {
        for bad in ["abc", "-3", "1.5", "", "999999999999999999999"] {
            let err = parse(&["audit", "d.csv", "--attrs", "a", "--tau", bad]).unwrap_err();
            assert!(err.starts_with("--tau:"), "unexpected: {err}");
            assert!(err.contains("usage:"), "no usage in: {err}");
        }
    }

    #[test]
    fn malformed_or_out_of_domain_rate_is_a_usage_error() {
        for bad in ["xyz", "", "NaN", "inf", "-0.5", "0", "1.5"] {
            let err = parse(&["audit", "d.csv", "--attrs", "a", "--rate", bad]).unwrap_err();
            assert!(err.starts_with("--rate:"), "unexpected for `{bad}`: {err}");
            assert!(err.contains("usage:"), "no usage in: {err}");
        }
    }

    #[test]
    fn zero_tau_lambda_and_max_level_are_rejected() {
        assert!(parse(&["audit", "d.csv", "--attrs", "a", "--tau", "0"]).is_err());
        assert!(
            parse(&["enhance", "d.csv", "--attrs", "a", "--tau", "1", "--lambda", "0"]).is_err()
        );
        assert!(parse(&[
            "audit",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--max-level",
            "0"
        ])
        .is_err());
    }

    #[test]
    fn missing_flag_value_is_reported() {
        let err = parse(&["audit", "d.csv", "--attrs", "a", "--tau"]).unwrap_err();
        assert!(err.contains("missing value"), "unexpected: {err}");
    }

    #[test]
    fn empty_attrs_are_rejected() {
        for argv in [
            &["audit", "d.csv", "--tau", "1"][..],
            &["audit", "d.csv", "--attrs", ",,", "--tau", "1"][..],
        ] {
            let err = parse(argv).unwrap_err();
            assert!(err.contains("--attrs"), "unexpected: {err}");
        }
    }

    #[test]
    fn max_level_is_rejected_for_enhance() {
        // A level-bounded search could miss deep MUPs and yield a silently
        // incomplete enhancement plan.
        let err = parse(&[
            "enhance",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--max-level",
            "2",
        ])
        .unwrap_err();
        assert!(
            err.contains("only supported with `audit`"),
            "unexpected: {err}"
        );
        assert!(parse(&[
            "audit",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--max-level",
            "2"
        ])
        .is_ok());
    }

    #[test]
    fn threshold_is_required() {
        let err = parse(&["audit", "d.csv", "--attrs", "a"]).unwrap_err();
        assert!(err.contains("--tau or --rate"), "unexpected: {err}");
    }

    #[test]
    fn valid_serve_invocation_parses() {
        let args = parse(&[
            "serve",
            "data.csv",
            "--attrs",
            "sex,race",
            "--tau",
            "5",
            "--listen",
            "127.0.0.1:7878",
            "--threads",
            "2",
        ])
        .unwrap();
        assert_eq!(args.command, "serve");
        assert_eq!(args.listen.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(args.threads, 2);
        // stdin/stdout mode needs no --listen.
        let args = parse(&["serve", "data.csv", "--attrs", "a", "--rate", "0.01"]).unwrap();
        assert!(args.listen.is_none());
        assert_eq!(args.threads, coverage_service::DEFAULT_WORKERS);
        assert_eq!(args.shards, None, "default layout is decided at build time");
    }

    #[test]
    fn io_and_max_pending_flags_parse_and_are_tcp_serve_only() {
        let args = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--listen",
            ":0",
            "--io",
            "blocking",
            "--max-pending",
            "64",
        ])
        .unwrap();
        assert_eq!(args.io, coverage_service::IoMode::Blocking);
        assert_eq!(args.max_pending, 64);
        // Defaults: event front end, DEFAULT_MAX_PENDING.
        let args = parse(&[
            "serve", "d.csv", "--attrs", "a", "--tau", "1", "--listen", ":0",
        ])
        .unwrap();
        assert_eq!(args.io, coverage_service::IoMode::Event);
        assert_eq!(args.max_pending, coverage_service::DEFAULT_MAX_PENDING);
        // Unknown mode and zero bound are usage errors.
        let err = parse(&[
            "serve", "d.csv", "--attrs", "a", "--tau", "1", "--listen", ":0", "--io", "sync",
        ])
        .unwrap_err();
        assert!(err.contains("unknown mode"), "{err}");
        let err = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--listen",
            ":0",
            "--max-pending",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("at least one slot"), "{err}");
        // Both need TCP mode…
        for flags in [&["--io", "event"][..], &["--max-pending", "8"][..]] {
            let mut argv = vec!["serve", "d.csv", "--attrs", "a", "--tau", "1"];
            argv.extend(flags);
            let err = parse(&argv).unwrap_err();
            assert!(err.contains("requires --listen"), "{err}");
        }
        // …and the serve command.
        let err = parse(&[
            "audit", "d.csv", "--attrs", "a", "--tau", "1", "--io", "event",
        ])
        .unwrap_err();
        assert!(err.contains("only supported with `serve`"), "{err}");
    }

    #[test]
    fn default_shard_count_scales_with_dataset_size() {
        // Tiny datasets must not be sliced into near-empty per-core shards.
        assert_eq!(default_shards(0), 1);
        assert_eq!(default_shards(100), 1);
        assert_eq!(default_shards(MIN_ROWS_PER_SHARD - 1), 1);
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(default_shards(MIN_ROWS_PER_SHARD * 2), cores.min(2));
        assert_eq!(default_shards(usize::MAX), cores);
    }

    #[test]
    fn shards_flag_parses_and_is_serve_only() {
        let args = parse(&[
            "serve", "d.csv", "--attrs", "a", "--tau", "1", "--shards", "4",
        ])
        .unwrap();
        assert_eq!(args.shards, Some(4));
        let err = parse(&[
            "serve", "d.csv", "--attrs", "a", "--tau", "1", "--shards", "0",
        ])
        .unwrap_err();
        assert!(err.contains("at least one shard"), "{err}");
        let err = parse(&[
            "audit", "d.csv", "--attrs", "a", "--tau", "1", "--shards", "2",
        ])
        .unwrap_err();
        assert!(err.contains("only supported with `serve`"), "{err}");
        let err = parse(&["serve", "d.csv", "--attrs", "a", "--tau", "1", "--shards"]).unwrap_err();
        assert!(err.contains("missing value"), "{err}");
    }

    #[test]
    fn backend_flag_parses_and_is_serve_only() {
        let args = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--backend",
            "compressed",
        ])
        .unwrap();
        assert_eq!(args.backend, Some(Backend::Compressed));
        let args = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--backend",
            "dense",
        ])
        .unwrap();
        assert_eq!(args.backend, Some(Backend::Dense));
        let args = parse(&["serve", "d.csv", "--attrs", "a", "--tau", "1"]).unwrap();
        assert_eq!(args.backend, None, "default is decided at build time");
        let err = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--backend",
            "roaring",
        ])
        .unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        let err = parse(&[
            "audit",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--backend",
            "dense",
        ])
        .unwrap_err();
        assert!(err.contains("only supported with `serve`"), "{err}");
    }

    #[test]
    fn backend_resolution_prefers_flag_then_snapshot_then_dense() {
        use mithra::service::{save_snapshot, CompressedCoverageEngine};

        let dir = std::env::temp_dir().join(format!("mithra-cli-backend-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("engine.snapshot");
        let ds = Dataset::from_rows(Schema::binary(2).unwrap(), &[vec![0, 1], vec![1, 0]]).unwrap();
        let engine = CompressedCoverageEngine::with_shards(ds, Threshold::Count(1), 1).unwrap();
        save_snapshot(&engine, &snap).unwrap();

        let args = |backend, snapshot: Option<&std::path::Path>| Args {
            command: "serve".into(),
            file: "d.csv".into(),
            attrs: vec!["a".into(), "b".into()],
            tau: Threshold::Count(1),
            lambda: 2,
            max_level: None,
            limit: 20,
            listen: None,
            threads: 1,
            snapshot: snapshot.map(std::path::Path::to_path_buf),
            shards: None,
            grow_schema: false,
            io: coverage_service::IoMode::Event,
            max_pending: coverage_service::DEFAULT_MAX_PENDING,
            oplog: None,
            oplog_sync: coverage_service::SyncPolicy::default(),
            follow: None,
            datasets: Vec::new(),
            backend,
        };
        // No flag, no snapshot → dense.
        assert_eq!(resolve_backend(&args(None, None)).unwrap(), Backend::Dense);
        // A restart without the flag keeps the snapshot's backend…
        assert_eq!(
            resolve_backend(&args(None, Some(&snap))).unwrap(),
            Backend::Compressed
        );
        // …but an explicit flag always wins (snapshots are backend-agnostic,
        // so restoring a compressed snapshot into a dense engine is fine).
        assert_eq!(
            resolve_backend(&args(Some(Backend::Dense), Some(&snap))).unwrap(),
            Backend::Dense
        );
        // A missing snapshot file is a fresh start, not an error.
        assert_eq!(
            resolve_backend(&args(None, Some(&dir.join("missing")))).unwrap(),
            Backend::Dense
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn grow_schema_flag_parses_and_is_serve_only() {
        let args = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--grow-schema",
        ])
        .unwrap();
        assert!(args.grow_schema);
        let args = parse(&["serve", "d.csv", "--attrs", "a", "--tau", "1"]).unwrap();
        assert!(!args.grow_schema, "growth is opt-in");
        for cmd in ["audit", "enhance"] {
            let mut argv = vec![cmd, "d.csv", "--attrs", "a", "--tau", "1"];
            if cmd == "enhance" {
                argv.extend(["--lambda", "1"]);
            }
            argv.push("--grow-schema");
            let err = parse(&argv).unwrap_err();
            assert!(err.contains("only supported with `serve`"), "{err}");
        }
    }

    #[test]
    fn snapshot_flag_parses_and_is_serve_only() {
        let args = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--snapshot",
            "state.snapshot",
        ])
        .unwrap();
        assert_eq!(
            args.snapshot.as_deref(),
            Some(std::path::Path::new("state.snapshot"))
        );
        // Works in stdio mode (no --listen) and TCP mode alike; audit/enhance
        // reject it.
        for cmd in ["audit", "enhance"] {
            let mut argv = vec![cmd, "d.csv", "--attrs", "a", "--tau", "1"];
            if cmd == "enhance" {
                argv.extend(["--lambda", "1"]);
            }
            argv.extend(["--snapshot", "s"]);
            let err = parse(&argv).unwrap_err();
            assert!(err.contains("only supported with `serve`"), "{err}");
        }
        let err =
            parse(&["serve", "d.csv", "--attrs", "a", "--tau", "1", "--snapshot"]).unwrap_err();
        assert!(err.contains("missing value"), "{err}");
    }

    #[test]
    fn serve_engine_refuses_mismatched_snapshots() {
        use mithra::service::{save_snapshot, CoverageEngine};

        let dir = std::env::temp_dir().join(format!("mithra-cli-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("people.csv");
        std::fs::write(&csv, "sex,race\nm,white\nf,black\n").unwrap();
        let snap = dir.join("engine.snapshot");
        let schema = Schema::new(vec![
            Attribute::with_values("sex", ["m", "f"]).unwrap(),
            Attribute::with_values("race", ["white", "black"]).unwrap(),
        ])
        .unwrap();
        let ds = Dataset::from_rows(schema, &[vec![0, 0], vec![1, 1]]).unwrap();
        let engine = CoverageEngine::new(ds, Threshold::Count(1)).unwrap();
        save_snapshot(&engine, &snap).unwrap();

        let args = |attrs: &[&str], tau: Threshold| Args {
            command: "serve".into(),
            file: csv.to_string_lossy().into_owned(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            tau,
            lambda: 2,
            max_level: None,
            limit: 20,
            listen: None,
            threads: 1,
            snapshot: Some(snap.clone()),
            shards: None,
            grow_schema: false,
            io: coverage_service::IoMode::Event,
            max_pending: coverage_service::DEFAULT_MAX_PENDING,
            oplog: None,
            oplog_sync: coverage_service::SyncPolicy::default(),
            follow: None,
            datasets: Vec::new(),
            backend: None,
        };
        let build = |args: &Args| {
            serve_engine::<CoverageOracle>(args, &args.file, args.snapshot.as_deref())
        };
        // Matching threshold + attrs restores (with the snapshot's anchor).
        let (restored, anchor) = build(&args(&["sex", "race"], Threshold::Count(1))).unwrap();
        assert_eq!(restored.dataset().len(), 2);
        assert_eq!(anchor, 0);
        // A different threshold is refused…
        let err = build(&args(&["sex", "race"], Threshold::Count(2))).unwrap_err();
        assert!(err.contains("different threshold"), "{err}");
        // …and so are different attributes (the CSV is never read on
        // restore, so this is the only guard against serving the wrong data).
        let err = build(&args(&["sex", "age"], Threshold::Count(1))).unwrap_err();
        assert!(err.contains("covers attributes"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oplog_flags_parse_and_are_validated() {
        let args = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--oplog",
            "ops.log",
            "--oplog-sync",
            "always",
        ])
        .unwrap();
        assert_eq!(args.oplog.as_deref(), Some(std::path::Path::new("ops.log")));
        assert_eq!(args.oplog_sync, coverage_service::SyncPolicy::Always);
        // Default policy is batch; --oplog-sync alone is a usage error.
        let args = parse(&[
            "serve", "d.csv", "--attrs", "a", "--tau", "1", "--oplog", "ops.log",
        ])
        .unwrap();
        assert_eq!(args.oplog_sync, coverage_service::SyncPolicy::Batch);
        let err = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--oplog-sync",
            "batch",
        ])
        .unwrap_err();
        assert!(err.contains("requires --oplog"), "{err}");
        let err = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--oplog",
            "o",
            "--oplog-sync",
            "fsync",
        ])
        .unwrap_err();
        assert!(err.contains("unknown policy"), "{err}");
        let err = parse(&[
            "audit", "d.csv", "--attrs", "a", "--tau", "1", "--oplog", "o",
        ])
        .unwrap_err();
        assert!(err.contains("only supported with `serve`"), "{err}");
    }

    #[test]
    fn follow_flag_parses_and_rejects_leader_knobs() {
        let args = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--listen",
            ":0",
            "--follow",
            "127.0.0.1:7878",
        ])
        .unwrap();
        assert_eq!(args.follow.as_deref(), Some("127.0.0.1:7878"));
        // A follower replays the leader's log; its own durability/growth/
        // tenancy flags are contradictions.
        for extra in [
            &["--oplog", "o"][..],
            &["--datasets", "hr=hr.csv"][..],
            &["--grow-schema"][..],
        ] {
            let mut argv = vec![
                "serve", "d.csv", "--attrs", "a", "--tau", "1", "--listen", ":0", "--follow", ":1",
            ];
            argv.extend(extra);
            let err = parse(&argv).unwrap_err();
            assert!(err.contains("cannot be combined with --follow"), "{err}");
        }
        let err = parse(&[
            "serve", "d.csv", "--attrs", "a", "--tau", "1", "--follow", ":1",
        ])
        .unwrap_err();
        assert!(err.contains("requires --listen"), "{err}");
    }

    #[test]
    fn datasets_spec_parses_and_is_validated() {
        let args = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--listen",
            ":0",
            "--datasets",
            "hr=hr.csv, sales=sales.csv",
        ])
        .unwrap();
        assert_eq!(
            args.datasets,
            [
                ("hr".to_string(), "hr.csv".to_string()),
                ("sales".to_string(), "sales.csv".to_string()),
            ]
        );
        let base = ["serve", "d.csv", "--attrs", "a", "--tau", "1"];
        for (spec, expect) in [
            ("hr.csv", "not `name=file.csv`"),
            ("=hr.csv", "not `name=file.csv`"),
            ("hr=", "not `name=file.csv`"),
            ("default=d2.csv", "positional"),
            ("hr=a.csv,hr=b.csv", "given twice"),
            (",", "at least one"),
        ] {
            let mut argv = base.to_vec();
            argv.extend(["--listen", ":0", "--datasets", spec]);
            let err = parse(&argv).unwrap_err();
            assert!(err.contains(expect), "spec `{spec}`: {err}");
        }
        // Tenancy needs the TCP event front end.
        let mut argv = base.to_vec();
        argv.extend(["--datasets", "hr=hr.csv"]);
        let err = parse(&argv).unwrap_err();
        assert!(err.contains("requires --listen"), "{err}");
        let mut argv = base.to_vec();
        argv.extend([
            "--listen",
            ":0",
            "--io",
            "blocking",
            "--datasets",
            "hr=hr.csv",
        ]);
        let err = parse(&argv).unwrap_err();
        assert!(err.contains("event front end"), "{err}");
    }

    #[test]
    fn serve_flag_domains_are_enforced() {
        // --listen is serve-only; --max-level is audit-only; --threads ≥ 1.
        let err = parse(&[
            "audit", "d.csv", "--attrs", "a", "--tau", "1", "--listen", ":0",
        ])
        .unwrap_err();
        assert!(err.contains("only supported with `serve`"), "{err}");
        let err = parse(&[
            "enhance",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--threads",
            "2",
        ])
        .unwrap_err();
        assert!(err.contains("only supported with `serve`"), "{err}");
        let err = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--max-level",
            "2",
        ])
        .unwrap_err();
        assert!(err.contains("only supported with `audit`"), "{err}");
        let err = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--threads",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("at least one worker"), "{err}");
        // λ and limit are per-request in the protocol, not serve CLI flags.
        for flag in ["--lambda", "--limit"] {
            let err =
                parse(&["serve", "d.csv", "--attrs", "a", "--tau", "1", flag, "2"]).unwrap_err();
            assert!(err.contains("not supported with `serve`"), "{err}");
        }
        // Worker threads exist only in TCP mode.
        let err = parse(&[
            "serve",
            "d.csv",
            "--attrs",
            "a",
            "--tau",
            "1",
            "--threads",
            "2",
        ])
        .unwrap_err();
        assert!(err.contains("requires --listen"), "{err}");
    }
}
