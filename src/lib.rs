//! # mithra
//!
//! Coverage assessment and enhancement for categorical datasets — a
//! from-scratch Rust reproduction of *"Assessing and Remedying Coverage for a
//! Given Dataset"* (Asudeh, Jin, Jagadish; ICDE 2019).
//!
//! This façade crate re-exports the workspace layers:
//!
//! * [`data`] — schemas, datasets, CSV I/O, bucketization, and the synthetic
//!   workload generators that stand in for the paper's AirBnB / BlueNile /
//!   COMPAS datasets;
//! * [`index`] — bit-vector kernels, the inverted-index coverage oracle
//!   (Appendix A), and the MUP dominance index (Appendix B);
//! * [`core`] — patterns, the pattern graph, the three MUP-identification
//!   algorithms (PATTERN-BREAKER, PATTERN-COMBINER, DEEPDIVER) with naïve and
//!   APRIORI baselines, and coverage enhancement via greedy hitting set;
//! * [`ml`] — the decision-tree classifier and metrics used by the paper's
//!   coverage-impact experiment (Fig 11);
//! * [`service`] — the long-lived serving layer: an incremental
//!   [`CoverageEngine`](service::CoverageEngine) that maintains the MUP set
//!   under streamed inserts, plus the NDJSON protocol behind `mithra serve`.
//!
//! ## Quickstart
//!
//! ```
//! use mithra::prelude::*;
//!
//! // Example 1 of the paper: binary A1..A3, five tuples, τ = 1.
//! let schema = Schema::binary(3)?;
//! let dataset = Dataset::from_rows(
//!     schema,
//!     &[vec![0, 1, 0], vec![0, 0, 1], vec![0, 0, 0], vec![0, 1, 1], vec![0, 0, 1]],
//! )?;
//! let mups = DeepDiver::default().find_mups(&dataset, Threshold::Count(1))?;
//! assert_eq!(mups.len(), 1);
//! assert_eq!(mups[0].to_string(), "1XX");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use coverage_core as core;
pub use coverage_data as data;
pub use coverage_index as index;
pub use coverage_ml as ml;
pub use coverage_service as service;

/// One-stop imports for typical use.
pub mod prelude {
    pub use coverage_core::{
        enhance::{CoverageEnhancer, EnhancementPlan, GreedyHittingSet, NaiveHittingSet},
        mup::{Apriori, DeepDiver, MupAlgorithm, NaiveMup, PatternBreaker, PatternCombiner},
        pattern::Pattern,
        validation::{ValidationOracle, ValidationRule},
        CoverageReport, Threshold,
    };
    pub use coverage_data::{Attribute, Bucketizer, Dataset, Schema, UniqueCombinations};
    pub use coverage_index::{
        CompressedOracle, CoverageBackend, CoverageOracle, CoverageProvider, MupDominanceIndex,
        ShardedOracle,
    };
    pub use coverage_service::{
        CompressedCoverageEngine, CoverageEngine, EngineStats, ShardedCoverageEngine,
    };
}
