//! Remedy lack of coverage by planning the minimum additional data
//! collection (Problem 2), with a human-in-the-loop validation oracle.
//!
//! Pipeline: audit → (expert marks immaterial MUPs / configures validation
//! rules) → plan for a target maximum covered level λ → apply the plan →
//! re-audit and verify the guarantee.
//!
//! ```text
//! cargo run --example data_acquisition
//! ```

use mithra::data::generators::{compas_like, CompasConfig};
use mithra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dataset = compas_like(&CompasConfig::default())?;
    let tau = 10u64;
    let lambda = 2usize;

    // 1. Audit.
    let report = CoverageReport::audit(&dataset, Threshold::Count(tau))?;
    println!(
        "before: {} MUPs, maximum covered level {}",
        report.mup_count(),
        report.maximum_covered_level()
    );

    // 2. The expert's validation oracle (§V-B3): no `marital = unknown`
    //    records can be collected, and under-20s must be single.
    let validation = ValidationOracle::new(vec![
        ValidationRule::forbid_values(3, vec![6]),
        ValidationRule::new(vec![(1, vec![0]), (3, vec![1, 2, 3, 4, 5, 6])]),
    ]);

    // 3. Plan the acquisition: hit every uncovered pattern at level λ.
    let enhancer = CoverageEnhancer::with_validation(validation);
    let plan = enhancer.plan_for_level(
        &GreedyHittingSet,
        &report.mups,
        &dataset.schema().cardinalities(),
        lambda,
    )?;
    println!(
        "plan: {} target pattern(s) at level {lambda}, {} profile(s) to collect",
        plan.input_size(),
        plan.output_size()
    );
    for (combo, general) in plan.combinations.iter().zip(&plan.generalized) {
        let human: Vec<String> = combo
            .iter()
            .enumerate()
            .map(|(i, &v)| dataset.schema().attribute(i).value_name(v))
            .collect();
        println!(
            "  collect ({})   — any tuple matching {general} works",
            human.join(", ")
        );
    }

    // 4. Collect enough copies to close each pattern's deficit to τ, then
    //    apply. (In real life this is field work; here we synthesize.)
    let oracle = CoverageReport::oracle_for(&dataset);
    let copies = plan.required_copies(&oracle, tau);
    println!(
        "copies per profile to reach τ = {tau}: {copies:?} ({} tuples total)",
        copies.iter().sum::<u64>()
    );
    plan.apply_to(&mut dataset, &copies)?;

    // 5. Re-audit: no *collectible* uncovered pattern remains at level ≤ λ.
    let after = CoverageReport::audit(&dataset, Threshold::Count(tau))?;
    let remaining: Vec<_> = after
        .mups
        .iter()
        .filter(|m| m.level() <= lambda && enhancer.validation.is_valid(m))
        .collect();
    println!(
        "after: {} MUPs; material MUPs at level ≤ {lambda}: {}",
        after.mup_count(),
        remaining.len()
    );
    assert!(remaining.is_empty(), "enhancement failed: {remaining:?}");
    println!("coverage level guarantee satisfied ✓");
    Ok(())
}
