//! Audit a COMPAS-like criminal-records dataset for coverage — the paper's
//! §V-B1 case study as a library user would run it.
//!
//! Finds all MUPs at τ = 10 over {sex, age, race, marital}, groups them by
//! level, decodes the most general ones into demographic descriptions, and
//! checks the paper's "widowed Hispanic" (`XX23`) highlight.
//!
//! ```text
//! cargo run --example compas_audit
//! ```

use mithra::data::generators::{compas_like, CompasConfig};
use mithra::prelude::*;

fn decode(pattern: &Pattern, ds: &Dataset) -> String {
    let parts: Vec<String> = (0..ds.arity())
        .filter_map(|i| {
            pattern.get(i).map(|v| {
                format!(
                    "{}={}",
                    ds.schema().attribute(i).name(),
                    ds.schema().attribute(i).value_name(v)
                )
            })
        })
        .collect();
    parts.join(", ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = compas_like(&CompasConfig::default())?;
    println!(
        "auditing {} criminal records over {} demographic attributes (τ = 10)\n",
        dataset.len(),
        dataset.arity()
    );

    let report = CoverageReport::audit(&dataset, Threshold::Count(10))?;
    println!("found {} maximal uncovered patterns:", report.mup_count());
    for (level, &count) in report.level_histogram.iter().enumerate() {
        if count > 0 {
            println!("  level {level}: {count} MUPs");
        }
    }

    // The most general MUPs are the most dangerous (largest uncovered
    // regions) — show them decoded.
    println!("\nmost general uncovered demographics (level 2):");
    for mup in report.mups_at_level(2) {
        println!("  {}  →  {}", mup, decode(mup, &dataset));
    }

    // The paper's highlight: widowed Hispanics are essentially invisible to
    // any model trained on this data.
    let oracle = CoverageReport::oracle_for(&dataset);
    let xx23 = Pattern::parse("XX23")?;
    println!(
        "\npattern XX23 ({}) has coverage {} — the paper found the same 2 \
         individuals, both repeat offenders",
        decode(&xx23, &dataset),
        oracle.coverage(xx23.codes()),
    );

    // A domain expert can drop immaterial MUPs before acting on the report.
    let mut material = report.clone();
    material.retain_material(|m| m.level() <= 3);
    println!(
        "\nafter keeping only MUPs of level ≤ 3 (the actionable ones): {}",
        material.mup_count()
    );
    Ok(())
}
