//! The paper's proposed "coverage widget" for a dataset nutritional label
//! (§I, citing Yang et al.'s SIGMOD'18 nutritional labels): a compact,
//! publishable summary of where a dataset lacks coverage.
//!
//! Renders an ASCII label for the BlueNile-like diamond catalog: per-level
//! MUP counts, the maximum covered level, and the most general uncovered
//! regions with their value counts (how many combinations they hide).
//!
//! ```text
//! cargo run --example nutritional_label
//! ```

use mithra::data::generators::bluenile_like;
use mithra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = bluenile_like(20_000, 7)?;
    let threshold = Threshold::Fraction(0.0005); // 0.05% of the catalog
    let report = CoverageReport::audit(&dataset, threshold)?;
    let cards = dataset.schema().cardinalities();

    let width = 64;
    let line = "=".repeat(width);
    println!("{line}");
    println!("{:^width$}", "DATASET NUTRITIONAL LABEL — COVERAGE");
    println!("{line}");
    println!(
        "rows: {:<12} attributes of interest: {}",
        report.n, report.arity
    );
    println!("coverage threshold: {} tuples (0.05% of rows)", report.tau);
    println!("{}", "-".repeat(width));
    println!(
        "maximum covered level: {} / {}",
        report.maximum_covered_level(),
        report.arity
    );
    println!("maximal uncovered patterns: {}", report.mup_count());
    for (level, &count) in report.level_histogram.iter().enumerate() {
        if count > 0 {
            let bar = "#".repeat((count * 40 / report.mup_count()).max(1));
            println!("  level {level}: {count:>6}  {bar}");
        }
    }
    println!("{}", "-".repeat(width));
    println!("largest uncovered regions (by value count):");
    let mut by_size: Vec<_> = report.mups.iter().collect();
    by_size.sort_by_key(|m| std::cmp::Reverse(m.value_count(&cards)));
    for mup in by_size.iter().take(5) {
        let described: Vec<String> = (0..dataset.arity())
            .filter_map(|i| {
                mup.get(i)
                    .map(|v| format!("{}={}", dataset.schema().attribute(i).name(), v))
            })
            .collect();
        println!(
            "  {:<14} hides {:>6} combination(s)   [{}]",
            mup.to_string(),
            mup.value_count(&cards),
            described.join(", ")
        );
    }
    println!("{line}");
    println!("produced by mithra — reproduction of Asudeh et al., ICDE 2019");
    println!("{line}");
    Ok(())
}
