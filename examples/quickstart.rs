//! Quickstart: audit a tiny dataset for coverage and print its MUPs.
//!
//! Reproduces Example 1 of the paper end to end, then shows the same audit
//! on a CSV loaded from memory.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mithra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Example 1 of the paper: binary A1..A3, five tuples, τ = 1. ---
    let schema = Schema::binary(3)?;
    let dataset = Dataset::from_rows(
        schema,
        &[
            vec![0, 1, 0],
            vec![0, 0, 1],
            vec![0, 0, 0],
            vec![0, 1, 1],
            vec![0, 0, 1],
        ],
    )?;

    let report = CoverageReport::audit(&dataset, Threshold::Count(1))?;
    println!(
        "dataset: {} rows over {} attributes",
        dataset.len(),
        dataset.arity()
    );
    println!("threshold τ = {}", report.tau);
    println!("maximal uncovered patterns ({}):", report.mup_count());
    for mup in &report.mups {
        println!("  {mup}  (level {})", mup.level());
    }
    println!("maximum covered level: {}", report.maximum_covered_level());
    assert_eq!(report.mups[0].to_string(), "1XX");

    // --- The same audit over a CSV with string values. ---
    let csv = "\
color,size
red,small
red,large
blue,small
blue,small
";
    let ds = mithra::data::io::read_csv_auto(csv.as_bytes(), &["color", "size"], None)?;
    let report = CoverageReport::audit(&ds, Threshold::Count(1))?;
    println!("\nCSV audit: {} MUP(s)", report.mup_count());
    for mup in &report.mups {
        // Decode codes through the schema dictionary for display.
        let human: Vec<String> = (0..ds.arity())
            .map(|i| match mup.get(i) {
                Some(v) => ds.schema().attribute(i).value_name(v),
                None => "X".to_string(),
            })
            .collect();
        println!("  {} = ({})", mup, human.join(", "));
    }
    // (blue, large) never occurs: the MUP is the combination blue+large.
    Ok(())
}
