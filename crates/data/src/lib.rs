//! # coverage-data
//!
//! Categorical dataset substrate for the *mithra* coverage library — the
//! data layer beneath the ICDE 2019 paper *"Assessing and Remedying Coverage
//! for a Given Dataset"* (Asudeh, Jin, Jagadish).
//!
//! Provides:
//!
//! * [`Schema`] / [`Attribute`] — low-cardinality categorical attributes of
//!   interest with optional value dictionaries (§II);
//! * [`Dataset`] — row-major encoded tuples with optional binary labels;
//! * [`UniqueCombinations`] — aggregation into distinct value combinations
//!   with multiplicities (Appendix A);
//! * [`Bucketizer`] — bucketization of continuous attributes (§II);
//! * CSV import/export ([`io`]);
//! * synthetic workload [`generators`] standing in for the paper's AirBnB /
//!   BlueNile / COMPAS datasets, plus the Theorem 1 and Theorem 2
//!   constructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucketize;
mod dataset;
mod error;
pub mod generators;
pub mod io;
mod schema;
mod unique;

pub use bucketize::Bucketizer;
pub use dataset::Dataset;
pub use error::{DataError, Result};
pub use schema::{Attribute, Schema, MAX_CARDINALITY};
pub use unique::UniqueCombinations;
