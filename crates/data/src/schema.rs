//! Schemas describe the categorical *attributes of interest* of a dataset.
//!
//! Following §II of the paper, a dataset has `d` low-cardinality categorical
//! attributes `A_1..A_d` with cardinalities `c_1..c_d`. Values are encoded as
//! `u8` codes `0..c_i`; an optional dictionary maps codes back to their
//! human-readable names (e.g. `race = 2` ⇒ `"Hispanic"`).

use crate::error::{DataError, Result};

/// Maximum supported cardinality per attribute.
///
/// Code `0xFF` is reserved as the non-deterministic (`X`) sentinel by the
/// pattern layer, and we keep one more code in reserve so `cardinality` itself
/// always fits in a `u8`.
pub const MAX_CARDINALITY: usize = 254;

/// A single categorical attribute: a name, a cardinality, and (optionally)
/// human-readable value names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    cardinality: u8,
    /// `value_names[v]` is the display name of code `v`; empty when the
    /// attribute was constructed without a dictionary.
    value_names: Vec<String>,
}

impl Attribute {
    /// Creates an attribute with `cardinality` anonymous values.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadCardinality`] when `cardinality` is zero or
    /// exceeds [`MAX_CARDINALITY`].
    pub fn new(name: impl Into<String>, cardinality: usize) -> Result<Self> {
        let name = name.into();
        if cardinality == 0 || cardinality > MAX_CARDINALITY {
            return Err(DataError::BadCardinality {
                attribute: name,
                cardinality,
            });
        }
        Ok(Self {
            name,
            cardinality: cardinality as u8,
            value_names: Vec::new(),
        })
    }

    /// Creates an attribute whose cardinality and value dictionary come from
    /// an explicit list of value names.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadCardinality`] for an empty or oversized list
    /// and [`DataError::DuplicateValue`] when a value name repeats (the
    /// string→code encoding would be ambiguous — the first match would win
    /// silently).
    pub fn with_values<S: Into<String>>(
        name: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> Result<Self> {
        let name = name.into();
        let value_names: Vec<String> = values.into_iter().map(Into::into).collect();
        if value_names.is_empty() || value_names.len() > MAX_CARDINALITY {
            return Err(DataError::BadCardinality {
                attribute: name,
                cardinality: value_names.len(),
            });
        }
        for (i, v) in value_names.iter().enumerate() {
            if value_names[..i].contains(v) {
                return Err(DataError::DuplicateValue {
                    attribute: name,
                    value: v.clone(),
                });
            }
        }
        Ok(Self {
            name,
            cardinality: value_names.len() as u8,
            value_names,
        })
    }

    /// A binary (boolean) attribute with values `0` and `1`.
    pub fn binary(name: impl Into<String>) -> Self {
        Self::new(name, 2).expect("cardinality 2 is always valid")
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of distinct values (`c_i` in the paper).
    pub fn cardinality(&self) -> u8 {
        self.cardinality
    }

    /// Display name for the encoded `value`, falling back to the numeric code
    /// when no dictionary is attached.
    pub fn value_name(&self, value: u8) -> String {
        self.value_names
            .get(value as usize)
            .cloned()
            .unwrap_or_else(|| value.to_string())
    }

    /// Resolves a raw string to its value code using the dictionary first and
    /// a numeric parse as fallback.
    pub fn code_of(&self, raw: &str) -> Result<u8> {
        if let Some(pos) = self.value_names.iter().position(|v| v == raw) {
            return Ok(pos as u8);
        }
        match raw.parse::<u8>() {
            Ok(code) if code < self.cardinality => Ok(code),
            _ => Err(DataError::UnknownValue {
                attribute: self.name.clone(),
                value: raw.to_string(),
            }),
        }
    }

    /// Whether a dictionary of value names is attached.
    pub fn has_dictionary(&self) -> bool {
        !self.value_names.is_empty()
    }

    /// Registers one additional value, growing the cardinality by one, and
    /// returns the new value's code (always the old cardinality).
    ///
    /// An attribute without a dictionary first materializes one from the
    /// numeric fallback names (`"0"`, `"1"`, …), so existing codes keep
    /// their display names and `code_of` answers unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadCardinality`] when the attribute is already
    /// at [`MAX_CARDINALITY`] values and [`DataError::DuplicateValue`] when
    /// `name` already resolves to a code — a dictionary hit *or* an
    /// in-range numeric fallback: registering e.g. `"1"` as a brand-new
    /// value would silently re-map every client that addresses codes
    /// numerically (`code_of` consults the dictionary first).
    pub fn add_value(&mut self, name: impl Into<String>) -> Result<u8> {
        let name = name.into();
        if self.cardinality as usize >= MAX_CARDINALITY {
            return Err(DataError::BadCardinality {
                attribute: self.name.clone(),
                cardinality: self.cardinality as usize + 1,
            });
        }
        if self.value_names.is_empty() {
            self.value_names = (0..self.cardinality).map(|v| v.to_string()).collect();
        }
        if self.code_of(&name).is_ok() {
            return Err(DataError::DuplicateValue {
                attribute: self.name.clone(),
                value: name,
            });
        }
        self.value_names.push(name);
        self.cardinality += 1;
        Ok(self.cardinality - 1)
    }
}

/// An ordered collection of attributes — the *attributes of interest* over
/// which coverage is studied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from an ordered attribute list.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptySchema`] for an empty list and
    /// [`DataError::DuplicateAttribute`] when two attributes share a name.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self> {
        if attributes.is_empty() {
            return Err(DataError::EmptySchema);
        }
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name() == a.name()) {
                return Err(DataError::DuplicateAttribute(a.name().to_string()));
            }
        }
        Ok(Self { attributes })
    }

    /// A schema of `d` anonymous binary attributes named `A1..Ad`.
    pub fn binary(d: usize) -> Result<Self> {
        Self::new(
            (1..=d)
                .map(|i| Attribute::binary(format!("A{i}")))
                .collect(),
        )
    }

    /// A schema of anonymous attributes with the given cardinalities, named `A1..Ad`.
    pub fn with_cardinalities(cards: &[usize]) -> Result<Self> {
        Self::new(
            cards
                .iter()
                .enumerate()
                .map(|(i, &c)| Attribute::new(format!("A{}", i + 1), c))
                .collect::<Result<Vec<_>>>()?,
        )
    }

    /// Number of attributes (`d` in the paper).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The attribute at position `i`.
    pub fn attribute(&self, i: usize) -> &Attribute {
        &self.attributes[i]
    }

    /// All attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Cardinality of attribute `i` (`c_i`).
    pub fn cardinality(&self, i: usize) -> u8 {
        self.attributes[i].cardinality()
    }

    /// Cardinalities of all attributes, in order.
    pub fn cardinalities(&self) -> Vec<u8> {
        self.attributes.iter().map(Attribute::cardinality).collect()
    }

    /// Registers one additional value on attribute `attribute`, returning
    /// the new value's code (see [`Attribute::add_value`]).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownAttribute`] for an out-of-range position
    /// and propagates [`Attribute::add_value`] failures.
    pub fn add_value(&mut self, attribute: usize, name: impl Into<String>) -> Result<u8> {
        self.attributes
            .get_mut(attribute)
            .ok_or_else(|| DataError::UnknownAttribute(format!("#{attribute}")))?
            .add_value(name)
    }

    /// Position of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// Total number of full value combinations, `Π c_i`, saturating at
    /// `u128::MAX`.
    ///
    /// This is `c_A` in the paper's notation for `A_i = A`.
    pub fn combination_count(&self) -> u128 {
        self.attributes
            .iter()
            .fold(1u128, |acc, a| acc.saturating_mul(a.cardinality() as u128))
    }

    /// Total number of patterns, `Π (c_i + 1)` (`c⁺_A`), saturating at
    /// `u128::MAX`.
    pub fn pattern_count(&self) -> u128 {
        self.attributes.iter().fold(1u128, |acc, a| {
            acc.saturating_mul(a.cardinality() as u128 + 1)
        })
    }

    /// Restricts the schema to the attribute positions in `keep` (in the
    /// given order). Used to project datasets down to fewer dimensions, as in
    /// the paper's varying-`d` experiments.
    pub fn project(&self, keep: &[usize]) -> Result<Self> {
        Self::new(keep.iter().map(|&i| self.attributes[i].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_rejects_zero_cardinality() {
        assert!(matches!(
            Attribute::new("a", 0),
            Err(DataError::BadCardinality { .. })
        ));
    }

    #[test]
    fn attribute_rejects_oversized_cardinality() {
        assert!(Attribute::new("a", MAX_CARDINALITY).is_ok());
        assert!(Attribute::new("a", MAX_CARDINALITY + 1).is_err());
    }

    #[test]
    fn attribute_dictionary_roundtrip() {
        let a =
            Attribute::with_values("race", ["African-American", "Caucasian", "Hispanic"]).unwrap();
        assert_eq!(a.cardinality(), 3);
        assert_eq!(a.code_of("Hispanic").unwrap(), 2);
        assert_eq!(a.value_name(1), "Caucasian");
        assert!(a.code_of("Martian").is_err());
    }

    #[test]
    fn attribute_numeric_fallback() {
        let a = Attribute::new("age", 4).unwrap();
        assert_eq!(a.code_of("3").unwrap(), 3);
        assert!(a.code_of("4").is_err());
        assert_eq!(a.value_name(2), "2");
        assert!(!a.has_dictionary());
    }

    #[test]
    fn with_values_rejects_duplicate_value_names() {
        let err = Attribute::with_values("race", ["white", "black", "white"]).unwrap_err();
        assert!(
            matches!(err, DataError::DuplicateValue { ref attribute, ref value }
                if attribute == "race" && value == "white"),
            "{err}"
        );
        assert!(Attribute::with_values("race", ["white", "black"]).is_ok());
    }

    #[test]
    fn add_value_grows_the_dictionary() {
        let mut a = Attribute::with_values("race", ["white", "black"]).unwrap();
        assert_eq!(a.add_value("hispanic").unwrap(), 2);
        assert_eq!(a.cardinality(), 3);
        assert_eq!(a.code_of("hispanic").unwrap(), 2);
        assert_eq!(a.value_name(2), "hispanic");
        // Existing codes are untouched.
        assert_eq!(a.code_of("black").unwrap(), 1);
        // Duplicates are rejected, growth is not applied.
        assert!(matches!(
            a.add_value("hispanic"),
            Err(DataError::DuplicateValue { .. })
        ));
        assert_eq!(a.cardinality(), 3);
    }

    #[test]
    fn add_value_on_anonymous_attribute_pads_the_dictionary() {
        let mut a = Attribute::new("age", 3).unwrap();
        assert!(!a.has_dictionary());
        assert_eq!(a.add_value("elderly").unwrap(), 3);
        assert_eq!(a.cardinality(), 4);
        // Old codes keep their numeric display names and encodings.
        assert_eq!(a.value_name(1), "1");
        assert_eq!(a.code_of("2").unwrap(), 2);
        assert_eq!(a.code_of("elderly").unwrap(), 3);
        // A numeric name that collides with an existing code is a duplicate.
        assert!(matches!(
            a.add_value("1"),
            Err(DataError::DuplicateValue { .. })
        ));
    }

    #[test]
    fn add_value_rejects_numeric_names_shadowing_existing_codes() {
        // Clients may address dictionary attributes by numeric code
        // (`code_of`'s fallback), so registering "1" as a brand-new value
        // would silently re-map those inputs from code 1 to the new code.
        let mut a = Attribute::with_values("race", ["white", "black"]).unwrap();
        assert!(matches!(
            a.add_value("1"),
            Err(DataError::DuplicateValue { .. })
        ));
        assert_eq!(a.cardinality(), 2);
        // Out-of-range numeric names are unambiguous: "2" becomes code 2,
        // so its numeric and dictionary readings agree forever.
        assert_eq!(a.add_value("2").unwrap(), 2);
        assert_eq!(a.code_of("2").unwrap(), 2);
    }

    #[test]
    fn add_value_respects_the_cardinality_ceiling() {
        let mut a = Attribute::new("big", MAX_CARDINALITY).unwrap();
        assert!(matches!(
            a.add_value("overflow"),
            Err(DataError::BadCardinality { .. })
        ));
        assert_eq!(a.cardinality() as usize, MAX_CARDINALITY);
    }

    #[test]
    fn schema_add_value_targets_one_attribute() {
        let mut s = Schema::new(vec![
            Attribute::with_values("sex", ["m", "f"]).unwrap(),
            Attribute::with_values("race", ["white", "black"]).unwrap(),
        ])
        .unwrap();
        assert_eq!(s.add_value(1, "asian").unwrap(), 2);
        assert_eq!(s.cardinalities(), vec![2, 3]);
        assert!(matches!(
            s.add_value(5, "nope"),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn schema_rejects_duplicates_and_empty() {
        assert!(matches!(Schema::new(vec![]), Err(DataError::EmptySchema)));
        let dup = Schema::new(vec![Attribute::binary("x"), Attribute::binary("x")]);
        assert!(matches!(dup, Err(DataError::DuplicateAttribute(_))));
    }

    #[test]
    fn schema_counts_match_paper_example() {
        // Fig 2: three binary attributes → 27 pattern-graph nodes.
        let s = Schema::binary(3).unwrap();
        assert_eq!(s.pattern_count(), 27);
        assert_eq!(s.combination_count(), 8);
    }

    #[test]
    fn schema_bluenile_combination_count() {
        // §V-C1: BlueNile cardinalities 10,4,7,8,3,3,5 → 100,800 combinations.
        let s = Schema::with_cardinalities(&[10, 4, 7, 8, 3, 3, 5]).unwrap();
        assert_eq!(s.combination_count(), 100_800);
    }

    #[test]
    fn schema_projection_keeps_order() {
        let s = Schema::with_cardinalities(&[2, 3, 4]).unwrap();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.cardinality(0), 4);
        assert_eq!(p.cardinality(1), 2);
    }

    #[test]
    fn schema_index_of() {
        let s = Schema::binary(3).unwrap();
        assert_eq!(s.index_of("A2").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn saturating_counts_do_not_overflow() {
        let s = Schema::with_cardinalities(&vec![254; 40]).unwrap();
        assert_eq!(s.pattern_count(), u128::MAX);
        assert_eq!(s.combination_count(), u128::MAX);
    }
}
