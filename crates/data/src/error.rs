//! Error types for dataset construction and I/O.

use std::fmt;

/// Errors raised while building, validating, or (de)serializing datasets.
#[derive(Debug)]
pub enum DataError {
    /// A row's length does not match the number of schema attributes.
    RowArity {
        /// Index of the offending row.
        row: usize,
        /// Number of values supplied in the row.
        got: usize,
        /// Number of attributes declared by the schema.
        expected: usize,
    },
    /// A value code is out of range for its attribute's cardinality.
    ValueOutOfRange {
        /// Index of the offending row.
        row: usize,
        /// Attribute position within the schema.
        attribute: usize,
        /// The offending encoded value.
        value: u8,
        /// The attribute's cardinality (valid codes are `0..cardinality`).
        cardinality: u8,
    },
    /// An attribute was declared with cardinality zero or above the encoding limit.
    BadCardinality {
        /// Name of the offending attribute.
        attribute: String,
        /// The declared cardinality.
        cardinality: usize,
    },
    /// A schema with no attributes was supplied where at least one is required.
    EmptySchema,
    /// An attribute name appears more than once in a schema.
    DuplicateAttribute(String),
    /// A named attribute is missing from the schema.
    UnknownAttribute(String),
    /// A value name already resolves to a code on its attribute (a repeated
    /// dictionary name, or a numeric string shadowing an existing code) —
    /// string→code encoding would be ambiguous.
    DuplicateValue {
        /// Name of the offending attribute.
        attribute: String,
        /// The repeated value name.
        value: String,
    },
    /// A raw string value could not be resolved against an attribute dictionary.
    UnknownValue {
        /// Name of the attribute being decoded.
        attribute: String,
        /// The unresolvable raw value.
        value: String,
    },
    /// A row slated for removal is not present in the dataset.
    RowNotFound,
    /// Underlying CSV or filesystem failure.
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::RowArity { row, got, expected } => write!(
                f,
                "row {row} has {got} values but the schema declares {expected} attributes"
            ),
            DataError::ValueOutOfRange {
                row,
                attribute,
                value,
                cardinality,
            } => write!(
                f,
                "row {row}, attribute {attribute}: value code {value} exceeds cardinality {cardinality}"
            ),
            DataError::BadCardinality {
                attribute,
                cardinality,
            } => write!(
                f,
                "attribute `{attribute}` has unsupported cardinality {cardinality} (must be 1..=254)"
            ),
            DataError::EmptySchema => write!(f, "schema must contain at least one attribute"),
            DataError::DuplicateAttribute(name) => {
                write!(f, "attribute `{name}` is declared more than once")
            }
            DataError::UnknownAttribute(name) => {
                write!(f, "attribute `{name}` is not part of the schema")
            }
            DataError::DuplicateValue { attribute, value } => write!(
                f,
                "value `{value}` already resolves on attribute `{attribute}` — string→code encoding must stay unambiguous"
            ),
            DataError::UnknownValue { attribute, value } => write!(
                f,
                "value `{value}` is not in the dictionary of attribute `{attribute}`"
            ),
            DataError::RowNotFound => write!(f, "no matching row is present in the dataset"),
            DataError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

impl From<csv::Error> for DataError {
    fn from(e: csv::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, DataError>;
