//! CSV import/export for encoded datasets.
//!
//! Two modes are supported:
//!
//! * **Dictionary-driven** ([`read_csv`]): a [`Schema`] whose attributes carry
//!   value dictionaries decodes raw string cells (e.g. `"Hispanic"`), with a
//!   numeric fallback for dictionary-less attributes.
//! * **Auto-encoding** ([`read_csv_auto`]): builds dictionaries on the fly
//!   from the distinct strings per column, in first-seen order.
//!
//! An optional label column (by name) is parsed as a boolean
//! (`1/0/true/false/yes/no`).

use std::io::{Read, Write};
use std::path::Path;

use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use crate::schema::{Attribute, Schema};

fn parse_label(raw: &str) -> Result<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "t" => Ok(true),
        "0" | "false" | "no" | "f" => Ok(false),
        other => Err(DataError::Io(format!("unparseable label `{other}`"))),
    }
}

/// Reads a headered CSV against an existing schema.
///
/// Columns are matched to attributes **by header name**; extra columns are
/// ignored. When `label_column` is given, that column populates the labels.
pub fn read_csv<R: Read>(reader: R, schema: Schema, label_column: Option<&str>) -> Result<Dataset> {
    let mut rdr = csv::ReaderBuilder::new()
        .has_headers(true)
        .from_reader(reader);
    let headers = rdr.headers()?.clone();
    let col_of = |name: &str| -> Result<usize> {
        headers
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    };
    let attr_cols: Vec<usize> = schema
        .attributes()
        .iter()
        .map(|a| col_of(a.name()))
        .collect::<Result<_>>()?;
    let label_col = label_column.map(col_of).transpose()?;

    let mut ds = Dataset::new(schema);
    let mut row_buf = vec![0u8; ds.arity()];
    for record in rdr.records() {
        let record = record?;
        for (slot, (&col, attr)) in row_buf
            .iter_mut()
            .zip(attr_cols.iter().zip(ds.schema().attributes()))
        {
            let raw = record.get(col).ok_or_else(|| {
                DataError::Io(format!("record shorter than header (missing column {col})"))
            })?;
            *slot = attr.code_of(raw)?;
        }
        match label_col {
            Some(col) => {
                let raw = record
                    .get(col)
                    .ok_or_else(|| DataError::Io("missing label cell".into()))?;
                let label = parse_label(raw)?;
                ds.push_labeled_row(&row_buf.clone(), label)?;
            }
            None => ds.push_row(&row_buf.clone())?,
        }
    }
    Ok(ds)
}

/// Reads a headered CSV, building value dictionaries from the data itself.
///
/// `attribute_columns` selects (and orders) the attributes of interest.
pub fn read_csv_auto<R: Read>(
    reader: R,
    attribute_columns: &[&str],
    label_column: Option<&str>,
) -> Result<Dataset> {
    let mut rdr = csv::ReaderBuilder::new()
        .has_headers(true)
        .from_reader(reader);
    let headers = rdr.headers()?.clone();
    let col_of = |name: &str| -> Result<usize> {
        headers
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    };
    let cols: Vec<usize> = attribute_columns
        .iter()
        .map(|n| col_of(n))
        .collect::<Result<_>>()?;
    let label_col = label_column.map(col_of).transpose()?;

    // First pass: materialize records and build dictionaries in first-seen order.
    let mut dicts: Vec<Vec<String>> = vec![Vec::new(); cols.len()];
    let mut rows: Vec<Vec<u8>> = Vec::new();
    let mut labels: Vec<bool> = Vec::new();
    for record in rdr.records() {
        let record = record?;
        let mut row = Vec::with_capacity(cols.len());
        for (j, &col) in cols.iter().enumerate() {
            let raw = record
                .get(col)
                .ok_or_else(|| DataError::Io(format!("missing column {col}")))?;
            let code = match dicts[j].iter().position(|v| v == raw) {
                Some(p) => p,
                None => {
                    dicts[j].push(raw.to_string());
                    dicts[j].len() - 1
                }
            };
            if code > u8::MAX as usize - 2 {
                return Err(DataError::BadCardinality {
                    attribute: attribute_columns[j].to_string(),
                    cardinality: code + 1,
                });
            }
            row.push(code as u8);
        }
        rows.push(row);
        if let Some(col) = label_col {
            labels.push(parse_label(record.get(col).unwrap_or_default())?);
        }
    }

    let attributes: Vec<Attribute> = attribute_columns
        .iter()
        .zip(dicts)
        .map(|(name, dict)| Attribute::with_values(*name, dict))
        .collect::<Result<_>>()?;
    let schema = Schema::new(attributes)?;
    if label_col.is_some() {
        Dataset::from_labeled_rows(schema, &rows, &labels)
    } else {
        Dataset::from_rows(schema, &rows)
    }
}

/// Writes the dataset as a headered CSV, decoding values through each
/// attribute's dictionary (codes when no dictionary is attached). A labeled
/// dataset gains a trailing `label` column.
pub fn write_csv<W: Write>(writer: W, dataset: &Dataset) -> Result<()> {
    let mut wtr = csv::Writer::from_writer(writer);
    let mut header: Vec<String> = dataset
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    if dataset.is_labeled() {
        header.push("label".to_string());
    }
    wtr.write_record(&header)?;
    for i in 0..dataset.len() {
        let mut record: Vec<String> = dataset
            .row(i)
            .iter()
            .enumerate()
            .map(|(j, &v)| dataset.schema().attribute(j).value_name(v))
            .collect();
        if let Some(label) = dataset.label(i) {
            record.push(if label { "1".into() } else { "0".into() });
        }
        wtr.write_record(&record)?;
    }
    wtr.flush()?;
    Ok(())
}

/// Convenience wrapper over [`read_csv_auto`] for a file path.
pub fn read_csv_auto_path(
    path: impl AsRef<Path>,
    attribute_columns: &[&str],
    label_column: Option<&str>,
) -> Result<Dataset> {
    let file = std::fs::File::open(path)?;
    read_csv_auto(
        std::io::BufReader::new(file),
        attribute_columns,
        label_column,
    )
}

/// Convenience wrapper over [`write_csv`] for a file path.
pub fn write_csv_path(path: impl AsRef<Path>, dataset: &Dataset) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(std::io::BufWriter::new(file), dataset)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "sex,race,score,reoffended\n\
                       male,Caucasian,3,1\n\
                       female,Hispanic,9,0\n\
                       male,Hispanic,1,1\n";

    #[test]
    fn auto_encoding_builds_dictionaries() {
        let ds = read_csv_auto(CSV.as_bytes(), &["sex", "race"], Some("reoffended")).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.arity(), 2);
        assert_eq!(ds.schema().attribute(0).cardinality(), 2);
        assert_eq!(ds.schema().attribute(1).cardinality(), 2);
        assert_eq!(ds.row(1), &[1, 1]); // female, Hispanic
        assert_eq!(ds.label(1), Some(false));
        assert_eq!(ds.schema().attribute(1).value_name(1), "Hispanic");
    }

    #[test]
    fn column_selection_ignores_extras_and_reorders() {
        let ds = read_csv_auto(CSV.as_bytes(), &["race", "sex"], None).unwrap();
        assert_eq!(ds.arity(), 2);
        assert_eq!(ds.schema().attribute(0).name(), "race");
        assert_eq!(ds.row(0), &[0, 0]); // Caucasian, male
    }

    #[test]
    fn schema_driven_read_uses_dictionary() {
        let schema = Schema::new(vec![
            Attribute::with_values("sex", ["male", "female"]).unwrap(),
            Attribute::with_values("race", ["Caucasian", "Hispanic"]).unwrap(),
        ])
        .unwrap();
        let ds = read_csv(CSV.as_bytes(), schema, Some("reoffended")).unwrap();
        assert_eq!(ds.row(2), &[0, 1]);
        assert_eq!(ds.label(2), Some(true));
    }

    #[test]
    fn unknown_value_is_an_error() {
        let schema = Schema::new(vec![
            Attribute::with_values("sex", ["male"]).unwrap(),
            Attribute::with_values("race", ["Caucasian", "Hispanic"]).unwrap(),
        ])
        .unwrap();
        assert!(matches!(
            read_csv(CSV.as_bytes(), schema, None),
            Err(DataError::UnknownValue { .. })
        ));
    }

    #[test]
    fn duplicate_dictionary_values_cannot_reach_the_load_path() {
        // A schema carrying an ambiguous dictionary is rejected at
        // construction, so `read_csv` can never silently first-match-wins
        // encode against one…
        assert!(matches!(
            Attribute::with_values("race", ["Caucasian", "Caucasian"]),
            Err(DataError::DuplicateValue { .. })
        ));
        // …and the auto-encoding path builds dictionaries from *distinct*
        // cell values, so repeated cells never create duplicates.
        let csv = "sex,race\nmale,Caucasian\nmale,Caucasian\nfemale,Caucasian\n";
        let ds = read_csv_auto(csv.as_bytes(), &["sex", "race"], None).unwrap();
        assert_eq!(ds.schema().attribute(1).cardinality(), 1);
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn missing_column_is_an_error() {
        assert!(matches!(
            read_csv_auto(CSV.as_bytes(), &["sex", "nope"], None),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn csv_roundtrip() {
        let ds = read_csv_auto(CSV.as_bytes(), &["sex", "race"], Some("reoffended")).unwrap();
        let mut buf = Vec::new();
        write_csv(&mut buf, &ds).unwrap();
        let again = read_csv_auto(buf.as_slice(), &["sex", "race"], Some("label")).unwrap();
        assert_eq!(ds.len(), again.len());
        for i in 0..ds.len() {
            assert_eq!(ds.row(i), again.row(i));
            assert_eq!(ds.label(i), again.label(i));
        }
    }

    #[test]
    fn bad_label_is_an_error() {
        let csv = "a,l\nx,maybe\n";
        assert!(read_csv_auto(csv.as_bytes(), &["a"], Some("l")).is_err());
    }
}
