//! Bucketization of continuous or high-cardinality attributes (§II).
//!
//! The paper assumes low-cardinality categorical attributes and suggests
//! "(a) bucketization: putting similar values into the same bucket, or (b)
//! considering the hierarchy of attributes in the data cube" for everything
//! else. This module implements (a): explicit-boundary buckets,
//! equal-width buckets, and quantile buckets.

use crate::error::{DataError, Result};
use crate::schema::{Attribute, MAX_CARDINALITY};

/// Maps continuous `f64` values to bucket codes `0..k`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucketizer {
    /// Sorted interior boundaries; value `x` maps to the number of
    /// boundaries `b` with `b <= x`.
    boundaries: Vec<f64>,
    /// Human-readable bucket labels, `boundaries.len() + 1` of them.
    labels: Vec<String>,
}

impl Bucketizer {
    /// Builds a bucketizer from explicit sorted interior boundaries.
    ///
    /// With boundaries `[20, 40, 60]` the buckets are `(-inf,20)`, `[20,40)`,
    /// `[40,60)`, `[60,inf)` — exactly the paper's COMPAS age groups.
    pub fn from_boundaries(boundaries: Vec<f64>) -> Result<Self> {
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DataError::Io(
                "bucket boundaries must be strictly increasing".into(),
            ));
        }
        if boundaries.len() + 1 > MAX_CARDINALITY {
            return Err(DataError::BadCardinality {
                attribute: "<bucketized>".into(),
                cardinality: boundaries.len() + 1,
            });
        }
        let labels = Self::default_labels(&boundaries);
        Ok(Self { boundaries, labels })
    }

    /// `k` equal-width buckets over `[lo, hi]`.
    pub fn equal_width(lo: f64, hi: f64, k: usize) -> Result<Self> {
        if lo >= hi || k < 2 {
            return Err(DataError::Io(
                "equal_width requires lo < hi and k >= 2".into(),
            ));
        }
        let step = (hi - lo) / k as f64;
        Self::from_boundaries((1..k).map(|i| lo + step * i as f64).collect())
    }

    /// `k` quantile buckets estimated from a sample.
    pub fn quantiles(sample: &[f64], k: usize) -> Result<Self> {
        if sample.is_empty() || k < 2 {
            return Err(DataError::Io(
                "quantiles requires a non-empty sample and k >= 2".into(),
            ));
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile sample"));
        let mut boundaries = Vec::with_capacity(k - 1);
        for i in 1..k {
            let q = sorted[(i * sorted.len() / k).min(sorted.len() - 1)];
            if boundaries.last().is_none_or(|&last| q > last) {
                boundaries.push(q);
            }
        }
        Self::from_boundaries(boundaries)
    }

    fn default_labels(boundaries: &[f64]) -> Vec<String> {
        let mut labels = Vec::with_capacity(boundaries.len() + 1);
        for i in 0..=boundaries.len() {
            let lo = if i == 0 {
                "-inf".to_string()
            } else {
                format!("{}", boundaries[i - 1])
            };
            let hi = if i == boundaries.len() {
                "inf".to_string()
            } else {
                format!("{}", boundaries[i])
            };
            labels.push(format!("[{lo},{hi})"));
        }
        labels
    }

    /// Overrides the bucket labels (must supply exactly `cardinality` names).
    pub fn with_labels<S: Into<String>>(
        mut self,
        labels: impl IntoIterator<Item = S>,
    ) -> Result<Self> {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        if labels.len() != self.cardinality() {
            return Err(DataError::Io(format!(
                "expected {} labels, got {}",
                self.cardinality(),
                labels.len()
            )));
        }
        self.labels = labels;
        Ok(self)
    }

    /// Number of buckets.
    pub fn cardinality(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Encodes one value to its bucket code.
    pub fn encode(&self, x: f64) -> u8 {
        // partition_point = count of boundaries <= x.
        self.boundaries.partition_point(|&b| b <= x) as u8
    }

    /// Builds the categorical [`Attribute`] this bucketizer induces.
    pub fn to_attribute(&self, name: impl Into<String>) -> Result<Attribute> {
        Attribute::with_values(name, self.labels.iter().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compas_age_boundaries() {
        // Paper: 0 under 20, 1 in [20,40), 2 in [40,60), 3 above 60.
        let b = Bucketizer::from_boundaries(vec![20.0, 40.0, 60.0]).unwrap();
        assert_eq!(b.cardinality(), 4);
        assert_eq!(b.encode(19.0), 0);
        assert_eq!(b.encode(20.0), 1);
        assert_eq!(b.encode(39.9), 1);
        assert_eq!(b.encode(40.0), 2);
        assert_eq!(b.encode(75.0), 3);
    }

    #[test]
    fn rejects_unsorted_boundaries() {
        assert!(Bucketizer::from_boundaries(vec![5.0, 5.0]).is_err());
        assert!(Bucketizer::from_boundaries(vec![5.0, 1.0]).is_err());
    }

    #[test]
    fn equal_width_splits_evenly() {
        let b = Bucketizer::equal_width(0.0, 10.0, 5).unwrap();
        assert_eq!(b.cardinality(), 5);
        assert_eq!(b.encode(-1.0), 0);
        assert_eq!(b.encode(2.0), 1);
        assert_eq!(b.encode(9.99), 4);
    }

    #[test]
    fn quantiles_dedupe_ties() {
        let sample = vec![1.0; 100];
        let b = Bucketizer::quantiles(&sample, 4).unwrap();
        // All-equal sample collapses to a single boundary.
        assert_eq!(b.cardinality(), 2);
    }

    #[test]
    fn to_attribute_carries_labels() {
        let b = Bucketizer::from_boundaries(vec![20.0])
            .unwrap()
            .with_labels(["young", "old"])
            .unwrap();
        let a = b.to_attribute("age").unwrap();
        assert_eq!(a.cardinality(), 2);
        assert_eq!(a.value_name(1), "old");
    }

    #[test]
    fn label_count_mismatch_rejected() {
        let b = Bucketizer::from_boundaries(vec![20.0]).unwrap();
        assert!(b.with_labels(["only-one"]).is_err());
    }
}
