//! COMPAS-like generator: demographics plus a recidivism label with
//! *divergent subgroup behaviour*.
//!
//! The real ProPublica dataset (6,889 individuals) backs the paper's
//! validation experiments (§V-B, Fig 11). The properties those experiments
//! rely on — and which this generator reproduces by construction — are:
//!
//! 1. the attribute vector `sex(2), age(4), race(4), marital(7)` with
//!    ProPublica-like marginals, so MUPs at `τ = 10` concentrate in levels
//!    2–4 while every single attribute value stays covered (§V-B1);
//! 2. exactly 100 Hispanic-female rows (the paper's minority case study)
//!    and exactly 2 widowed-Hispanic rows, both re-offenders (the paper's
//!    `XX23` highlight);
//! 3. a label whose generating rule *differs* on the under-covered
//!    subgroups: a model that never saw Hispanic females generalizes the
//!    majority rule to them and scores below 50% (Fig 11), and the two
//!    ablation groups behave as in the paper (female-other diverges fully ⇒
//!    ~39%; male-other diverges only partially ⇒ ~59%).

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::Dataset;
use crate::error::Result;
use crate::schema::{Attribute, Schema};

/// Row count of the real dataset.
pub const COMPAS_ROWS: usize = 6_889;

/// Code of `sex = male`.
pub const MALE: u8 = 0;
/// Code of `sex = female`.
pub const FEMALE: u8 = 1;
/// Code of `race = Hispanic`.
pub const HISPANIC: u8 = 2;
/// Code of `race = other`.
pub const OTHER_RACE: u8 = 3;
/// Code of `marital = widowed`.
pub const WIDOWED: u8 = 3;

/// Attribute positions within the schema.
pub const SEX: usize = 0;
/// Position of the bucketized `age` attribute.
pub const AGE: usize = 1;
/// Position of the `race` attribute.
pub const RACE: usize = 2;
/// Position of the `marital` attribute.
pub const MARITAL: usize = 3;

/// Configuration for [`compas_like`].
#[derive(Debug, Clone)]
pub struct CompasConfig {
    /// Total number of rows (default: [`COMPAS_ROWS`]).
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Exact number of Hispanic-female rows to embed (default 100, as in
    /// §V-B2; must be ≥ 2 and ≤ `n`).
    pub hispanic_females: usize,
}

impl Default for CompasConfig {
    fn default() -> Self {
        Self {
            n: COMPAS_ROWS,
            seed: 2019,
            hispanic_females: 100,
        }
    }
}

/// The COMPAS schema used throughout the paper: `sex`, `age`, `race`,
/// `marital` with the §V-A encodings.
pub fn compas_schema() -> Schema {
    Schema::new(vec![
        Attribute::with_values("sex", ["male", "female"]).expect("static"),
        Attribute::with_values("age", ["under_20", "20_39", "40_59", "60_plus"]).expect("static"),
        Attribute::with_values(
            "race",
            ["African-American", "Caucasian", "Hispanic", "other"],
        )
        .expect("static"),
        Attribute::with_values(
            "marital",
            [
                "single",
                "married",
                "separated",
                "widowed",
                "significant_other",
                "divorced",
                "unknown",
            ],
        )
        .expect("static"),
    ])
    .expect("static schema is valid")
}

/// ProPublica-like marginals.
const SEX_W: [f64; 2] = [0.81, 0.19];
const AGE_W: [f64; 4] = [0.02, 0.57, 0.35, 0.06];
const RACE_W: [f64; 4] = [0.51, 0.34, 0.08, 0.07];
const MARITAL_W: [f64; 7] = [0.745, 0.10, 0.03, 0.012, 0.04, 0.06, 0.013];

/// Is this row a "young single" under the global behaviour rule?
fn young_single(row: &[u8]) -> bool {
    row[AGE] <= 1 && row[MARITAL] == 0
}

/// Recidivism probability. The majority rule rewards age and marital
/// stability; the minority subgroups follow *different* rules — this is the
/// "behaviour in the subgroup is different" mechanism of §V-B1. The
/// divergent strata are sized so a decision tree that never saw a subgroup
/// generalizes its neighbours' behaviour onto it and lands near the paper's
/// accuracies: HF just under 50% (Fig 11's leftmost point), FO ≈ 0.39,
/// MO ≈ 0.59.
fn reoffend_probability(row: &[u8]) -> f64 {
    let majority = if young_single(row) {
        0.85
    } else if row[AGE] <= 1 {
        0.55
    } else if row[MARITAL] == 0 {
        0.45
    } else {
        0.20
    };
    let hispanic_female = row[RACE] == HISPANIC && row[SEX] == FEMALE;
    let female_other = row[RACE] == OTHER_RACE && row[SEX] == FEMALE;
    let male_other = row[RACE] == OTHER_RACE && row[SEX] == MALE;
    if hispanic_female {
        // Crisp marital-only rule, roughly inverted from the majority: a
        // model without HF data misclassifies most of the subgroup, and a
        // handful of HF rows per (marital) cell is enough to recover it.
        if row[MARITAL] == 0 {
            0.2
        } else {
            0.8
        }
    } else if female_other {
        // Crisply divergent for the young (~60% of the subgroup): a model
        // without FO data generalizes its neighbours (mostly MO, whose young
        // stratum leans the *other* way) and scores ≈ 0.39.
        if row[AGE] <= 1 {
            0.15
        } else {
            majority
        }
    } else if male_other && row[AGE] <= 1 {
        // Noisily divergent: the young stratum barely leans positive, so
        // majority-style generalization stays roughly half right there and
        // the ablation lands near the paper's 0.59.
        0.52
    } else {
        majority
    }
}

fn draw_demographics(r: &mut ChaCha8Rng) -> [u8; 4] {
    let sex = super::weighted_index(r, &SEX_W);
    let age = super::weighted_index(r, &AGE_W);
    let race = super::weighted_index(r, &RACE_W);
    let marital = super::weighted_index(r, &MARITAL_W);
    [sex, age, race, marital]
}

/// Generates the COMPAS-like labeled dataset.
///
/// The returned dataset has exactly `config.hispanic_females` rows with
/// `(race = Hispanic, sex = female)` and exactly two rows matching the
/// paper's `XX23` pattern `(race = Hispanic, marital = widowed)`, both
/// labeled as re-offenders.
pub fn compas_like(config: &CompasConfig) -> Result<Dataset> {
    let hf = config.hispanic_females;
    if hf < 2 || hf > config.n {
        return Err(crate::error::DataError::Io(format!(
            "hispanic_females must be in 2..=n, got {hf}"
        )));
    }
    let mut r = super::rng(config.seed);
    let mut ds = Dataset::new(compas_schema());

    // Majority block: rejection-sample away Hispanic females entirely and
    // widowed Hispanics of any sex, so the embedded minority blocks control
    // those counts exactly.
    let majority_n = config.n - hf;
    let mut produced = 0;
    while produced < majority_n {
        let row = draw_demographics(&mut r);
        if row[RACE] == HISPANIC && (row[SEX] == FEMALE || row[MARITAL] == WIDOWED) {
            continue;
        }
        let label = r.random::<f64>() < reoffend_probability(&row);
        ds.push_labeled_row(&row, label)?;
        produced += 1;
    }

    // Hispanic-female block: hf rows, the first two of which are the
    // widowed `XX23` witnesses (both re-offenders, as in the paper). The
    // subgroup skews young (as in the ProPublica data), which is what makes
    // a model without HF rows generalize the young-single majority rule
    // onto it and score below 50% in Fig 11.
    const HF_AGE_W: [f64; 4] = [0.05, 0.80, 0.13, 0.02];
    for k in 0..hf {
        let mut row = draw_demographics(&mut r);
        row[SEX] = FEMALE;
        row[RACE] = HISPANIC;
        row[AGE] = super::weighted_index(&mut r, &HF_AGE_W);
        if k < 2 {
            row[MARITAL] = WIDOWED;
            ds.push_labeled_row(&row, true)?;
            continue;
        }
        if row[MARITAL] == WIDOWED {
            row[MARITAL] = 0; // keep the XX23 count at exactly 2
        }
        let label = r.random::<f64>() < reoffend_probability(&row);
        ds.push_labeled_row(&row, label)?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> Dataset {
        compas_like(&CompasConfig::default()).unwrap()
    }

    #[test]
    fn row_count_and_schema() {
        let ds = gen();
        assert_eq!(ds.len(), COMPAS_ROWS);
        assert!(ds.is_labeled());
        assert_eq!(
            ds.schema().cardinalities(),
            vec![2, 4, 4, 7],
            "sex, age, race, marital"
        );
    }

    #[test]
    fn exactly_100_hispanic_females() {
        let ds = gen();
        let hf = ds.count_where(|r, _| r[RACE] == HISPANIC && r[SEX] == FEMALE);
        assert_eq!(hf, 100);
    }

    #[test]
    fn xx23_has_exactly_two_witnesses_both_reoffenders() {
        // The paper: "The dataset contains only two instances matching this
        // pattern and interestingly both of them have offended multiple times."
        let ds = gen();
        let mut matches = 0;
        for i in 0..ds.len() {
            let r = ds.row(i);
            if r[RACE] == HISPANIC && r[MARITAL] == WIDOWED {
                matches += 1;
                assert_eq!(ds.label(i), Some(true));
            }
        }
        assert_eq!(matches, 2);
    }

    #[test]
    fn single_attribute_values_all_covered_at_tau_10() {
        // §V-B1: "all the single attribute values contain more instances than
        // the threshold [10]".
        let ds = gen();
        for attr in 0..4 {
            for v in 0..ds.schema().cardinality(attr) {
                let c = ds.count_where(|r, _| r[attr] == v);
                assert!(c >= 10, "attr {attr} value {v} has only {c} rows");
            }
        }
    }

    #[test]
    fn ablation_groups_have_at_least_20_rows() {
        // §V-B2 uses 20-row test sets for FO and MO.
        let ds = gen();
        let fo = ds.count_where(|r, _| r[RACE] == OTHER_RACE && r[SEX] == FEMALE);
        let mo = ds.count_where(|r, _| r[RACE] == OTHER_RACE && r[SEX] == MALE);
        assert!(fo >= 20, "female-other = {fo}");
        assert!(mo >= 20, "male-other = {mo}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = compas_like(&CompasConfig::default()).unwrap();
        let b = compas_like(&CompasConfig::default()).unwrap();
        assert_eq!(a, b);
        let c = compas_like(&CompasConfig {
            seed: 7,
            ..CompasConfig::default()
        })
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn subgroup_rule_inverts_majority() {
        // A young single Hispanic female should mostly NOT reoffend while the
        // majority young singles mostly do; non-single HF mostly reoffend.
        assert!(reoffend_probability(&[FEMALE, 1, HISPANIC, 0]) < 0.5);
        assert!(reoffend_probability(&[FEMALE, 1, HISPANIC, 5]) > 0.5);
        assert!(reoffend_probability(&[MALE, 1, 0, 0]) > 0.5);
        // Female-other inverts for the young, matches the majority when old.
        assert!(reoffend_probability(&[FEMALE, 1, OTHER_RACE, 0]) < 0.5);
        assert_eq!(
            reoffend_probability(&[FEMALE, 3, OTHER_RACE, 1]),
            reoffend_probability(&[MALE, 3, 0, 1])
        );
        // Male-other diverges only on the young stratum (near coin flip).
        assert_eq!(reoffend_probability(&[MALE, 1, OTHER_RACE, 0]), 0.52);
        assert_eq!(
            reoffend_probability(&[MALE, 2, OTHER_RACE, 1]),
            reoffend_probability(&[MALE, 2, 0, 1])
        );
    }

    #[test]
    fn bad_config_rejected() {
        assert!(compas_like(&CompasConfig {
            hispanic_females: 1,
            ..Default::default()
        })
        .is_err());
        assert!(compas_like(&CompasConfig {
            n: 10,
            hispanic_females: 11,
            ..Default::default()
        })
        .is_err());
    }
}
