//! AirBnB-like generator: up to 36 boolean "amenity" attributes with skewed,
//! correlated marginals.
//!
//! The real dataset (≈2M listings, 36 boolean attributes) drives the paper's
//! performance experiments (Figs 6, 12, 14–19). What those experiments are
//! sensitive to is (i) the number of rows, (ii) the number of binary
//! attributes, and (iii) where the covered/uncovered frontier sits in the
//! pattern graph — which is controlled by marginal skew and the threshold
//! rate. We reproduce that regime with a fixed palette of per-attribute
//! `P(value = 1)` probabilities mixing near-universal amenities (TV,
//! internet), balanced ones (washer/dryer), and rare ones (hot tub, gym),
//! plus mild positive correlation between adjacent attributes (bundled
//! amenities co-occur on real listings).

use rand::Rng;

use crate::dataset::Dataset;
use crate::error::Result;
use crate::schema::{Attribute, Schema};

/// Maximum number of attributes supported (matches the 36 boolean attributes
/// of the real dataset; the paper's sweeps use up to 35).
pub const AIRBNB_MAX_ATTRIBUTES: usize = 36;

/// Per-attribute `P(1)` palette, cycled when `d` exceeds its length.
/// Chosen so a projection to any prefix keeps a mix of common / balanced /
/// rare attributes, which yields the bell-shaped MUP level distribution of
/// Fig 6 under the paper's parameters.
const P_ONE: [f64; 12] = [
    0.95, 0.70, 0.50, 0.10, 0.85, 0.40, 0.25, 0.03, 0.60, 0.90, 0.35, 0.15,
];

/// Probability that an attribute copies its left neighbour instead of
/// drawing independently (bundled amenities).
const CORRELATION: f64 = 0.25;

const AMENITIES: [&str; 36] = [
    "tv",
    "internet",
    "wifi",
    "hot_tub",
    "kitchen",
    "heating",
    "washer",
    "gym",
    "dryer",
    "essentials",
    "shampoo",
    "hangers",
    "iron",
    "pool",
    "laptop_ws",
    "fireplace",
    "doorman",
    "elevator",
    "parking",
    "breakfast",
    "pets_ok",
    "family_ok",
    "events_ok",
    "smoking_ok",
    "wheelchair",
    "aircon",
    "smoke_alarm",
    "co_alarm",
    "first_aid",
    "safety_card",
    "extinguisher",
    "self_checkin",
    "lockbox",
    "private_bath",
    "balcony",
    "crib",
];

/// Generates an AirBnB-like boolean dataset with `n` rows and `d` attributes.
///
/// # Errors
///
/// Fails when `d` is zero or exceeds [`AIRBNB_MAX_ATTRIBUTES`].
pub fn airbnb_like(n: usize, d: usize, seed: u64) -> Result<Dataset> {
    if d == 0 || d > AIRBNB_MAX_ATTRIBUTES {
        return Err(crate::error::DataError::BadCardinality {
            attribute: format!("airbnb d={d}"),
            cardinality: d,
        });
    }
    let schema = Schema::new(
        (0..d)
            .map(|i| Attribute::with_values(AMENITIES[i], ["no", "yes"]))
            .collect::<Result<Vec<_>>>()?,
    )?;
    let mut r = super::rng(seed);
    let mut ds = Dataset::new(schema);
    let mut row = vec![0u8; d];
    for _ in 0..n {
        for i in 0..d {
            let correlated = i > 0 && r.random::<f64>() < CORRELATION;
            row[i] = if correlated {
                row[i - 1]
            } else {
                u8::from(r.random::<f64>() < P_ONE[i % P_ONE.len()])
            };
        }
        ds.push_row(&row)?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_request() {
        let ds = airbnb_like(500, 13, 42).unwrap();
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.arity(), 13);
        assert!(ds.schema().cardinalities().iter().all(|&c| c == 2));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = airbnb_like(100, 8, 1).unwrap();
        let b = airbnb_like(100, 8, 1).unwrap();
        let c = airbnb_like(100, 8, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn marginals_are_skewed() {
        let ds = airbnb_like(20_000, 12, 3).unwrap();
        let n = ds.len() as f64;
        // Attribute 0 targets P(1)=0.95; attribute 7 targets 0.03 (both
        // shifted slightly by the correlation term).
        let p0 = ds.count_where(|r, _| r[0] == 1) as f64 / n;
        let p7 = ds.count_where(|r, _| r[7] == 1) as f64 / n;
        assert!(p0 > 0.85, "p0 = {p0}");
        assert!(p7 < 0.25, "p7 = {p7}");
        assert!(p0 - p7 > 0.5);
    }

    #[test]
    fn adjacent_attributes_correlate() {
        let ds = airbnb_like(20_000, 4, 4).unwrap();
        // P(A3 = A2) should exceed the independence baseline.
        let agree = ds.count_where(|r, _| r[2] == r[3]) as f64 / ds.len() as f64;
        assert!(agree > 0.55, "agree = {agree}");
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(airbnb_like(10, 0, 0).is_err());
        assert!(airbnb_like(10, AIRBNB_MAX_ATTRIBUTES + 1, 0).is_err());
    }
}
