//! Adversarial constructions from the paper's theorems.
//!
//! * [`diagonal_dataset`] — Theorem 1's identity-matrix dataset with more
//!   than `2^n` MUPs at `τ = n/2 + 1`.
//! * [`vertex_cover_dataset`] — Theorem 2's reduction from vertex cover to
//!   the coverage-enhancement problem (Fig 1).

use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use crate::schema::Schema;

/// Theorem 1 construction: `n` rows over `n` binary attributes where row `i`
/// is `1` only at position `i`. With `τ = n/2 + 1` the MUP count is
/// `n + C(n, n/2) > 2^n`.
pub fn diagonal_dataset(n: usize) -> Result<Dataset> {
    let schema = Schema::binary(n)?;
    let mut ds = Dataset::new(schema);
    let mut row = vec![0u8; n];
    for i in 0..n {
        row[i] = 1;
        ds.push_row(&row)?;
        row[i] = 0;
    }
    Ok(ds)
}

/// An undirected graph given as a vertex count and an edge list, used as
/// input to the vertex-cover reduction.
#[derive(Debug, Clone)]
pub struct SampleGraph {
    /// Number of vertices (`|V|`).
    pub vertices: usize,
    /// Undirected edges as `(u, v)` vertex-index pairs.
    pub edges: Vec<(usize, usize)>,
}

impl SampleGraph {
    /// The 5-vertex sample graph of Fig 1a: a path-like graph whose
    /// constructed dataset is shown in Fig 1b.
    ///
    /// Edges are ordered so that attribute `A_j` corresponds to edge `e_j`,
    /// reproducing the incidence rows `t1..t5` of the figure:
    /// `t1 = 10101`, `t2 = 11000`, `t3 = 00011`, `t4 = 01110`, `t5..t7 = 0`.
    pub fn figure1() -> Self {
        SampleGraph {
            vertices: 4,
            edges: vec![(0, 1), (1, 3), (0, 3), (2, 3), (0, 2)],
        }
    }
}

/// Theorem 2 reduction: builds the dataset whose coverage-enhancement
/// instance (with `τ = 3`, `λ = 1`) is equivalent to vertex cover on `graph`.
///
/// The dataset has `|V| + 3` rows over `|E|` binary attributes: row `i ≤ |V|`
/// is the edge-incidence vector of vertex `i`, followed by three all-zero
/// rows. Its MUPs are exactly the `|E|` patterns with a single deterministic
/// `1`.
pub fn vertex_cover_dataset(graph: &SampleGraph) -> Result<Dataset> {
    if graph.edges.is_empty() {
        return Err(DataError::EmptySchema);
    }
    for &(u, v) in &graph.edges {
        if u >= graph.vertices || v >= graph.vertices || u == v {
            return Err(DataError::Io(format!("invalid edge ({u},{v})")));
        }
    }
    let d = graph.edges.len();
    let schema = Schema::binary(d)?;
    let mut ds = Dataset::new(schema);
    let mut row = vec![0u8; d];
    for vertex in 0..graph.vertices {
        for (j, &(u, v)) in graph.edges.iter().enumerate() {
            row[j] = u8::from(u == vertex || v == vertex);
        }
        ds.push_row(&row)?;
    }
    row.fill(0);
    for _ in 0..3 {
        ds.push_row(&row)?;
    }
    Ok(ds)
}

/// The coverage threshold the reduction fixes (`τ = 3`).
pub const VERTEX_COVER_TAU: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_shape() {
        let ds = diagonal_dataset(6).unwrap();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.arity(), 6);
        for i in 0..6 {
            let row = ds.row(i);
            assert_eq!(row.iter().filter(|&&v| v == 1).count(), 1);
            assert_eq!(row[i], 1);
        }
    }

    #[test]
    fn figure1_incidence_rows_match_paper() {
        let ds = vertex_cover_dataset(&SampleGraph::figure1()).unwrap();
        assert_eq!(ds.len(), 4 + 3);
        assert_eq!(ds.arity(), 5);
        assert_eq!(ds.row(0), &[1, 0, 1, 0, 1]); // t1
        assert_eq!(ds.row(1), &[1, 1, 0, 0, 0]); // t2
        assert_eq!(ds.row(2), &[0, 0, 0, 1, 1]); // t3
        assert_eq!(ds.row(3), &[0, 1, 1, 1, 0]); // t4
        for i in 4..7 {
            assert!(ds.row(i).iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn each_edge_column_has_exactly_two_ones() {
        let ds = vertex_cover_dataset(&SampleGraph::figure1()).unwrap();
        for j in 0..ds.arity() {
            let ones = ds.count_where(|r, _| r[j] == 1);
            assert_eq!(ones, 2, "edge column {j}");
        }
    }

    #[test]
    fn invalid_graphs_rejected() {
        assert!(vertex_cover_dataset(&SampleGraph {
            vertices: 2,
            edges: vec![]
        })
        .is_err());
        assert!(vertex_cover_dataset(&SampleGraph {
            vertices: 2,
            edges: vec![(0, 2)]
        })
        .is_err());
        assert!(vertex_cover_dataset(&SampleGraph {
            vertices: 2,
            edges: vec![(1, 1)]
        })
        .is_err());
    }
}
