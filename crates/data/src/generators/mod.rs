//! Synthetic workload generators.
//!
//! The paper evaluates on three real datasets (AirBnB, BlueNile, COMPAS) that
//! are not redistributable / not available offline. Each generator here
//! reproduces the *structural* properties the corresponding experiment
//! depends on — attribute cardinalities, marginal skew, correlation, dataset
//! size, and (for COMPAS) divergent subgroup behaviour — as documented in
//! DESIGN.md §4.
//!
//! All generators are deterministic given a seed (ChaCha8).

mod airbnb;
mod bluenile;
mod compas;
mod constructions;

pub use airbnb::{airbnb_like, AIRBNB_MAX_ATTRIBUTES};
pub use bluenile::{bluenile_like, BLUENILE_CARDINALITIES, BLUENILE_ROWS};
pub use compas::{
    compas_like, compas_schema, CompasConfig, COMPAS_ROWS, FEMALE, HISPANIC, MALE, OTHER_RACE,
    WIDOWED,
};
pub use constructions::{diagonal_dataset, vertex_cover_dataset, SampleGraph, VERTEX_COVER_TAU};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the deterministic RNG used by all generators.
pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Draws an index from an (unnormalized) weight table.
pub(crate) fn weighted_index(r: &mut ChaCha8Rng, weights: &[f64]) -> u8 {
    use rand::Rng;
    let total: f64 = weights.iter().sum();
    let mut x = r.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i as u8;
        }
    }
    (weights.len() - 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng(7);
        let weights = [0.0, 1.0, 0.0];
        for _ in 0..100 {
            assert_eq!(weighted_index(&mut r, &weights), 1);
        }
    }

    #[test]
    fn weighted_index_covers_support() {
        let mut r = rng(8);
        let weights = [1.0, 1.0, 1.0, 1.0];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[weighted_index(&mut r, &weights) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
