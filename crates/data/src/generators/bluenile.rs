//! BlueNile-like generator: 7 categorical attributes with the catalog's
//! exact cardinalities and Zipf-skewed marginals.
//!
//! The real catalog (116,300 diamonds; shape/cut/color/clarity/polish/
//! symmetry/fluorescence with cardinalities 10, 4, 7, 8, 3, 3, 5) exists in
//! Fig 13 to show how high-cardinality attributes widen the bottom of the
//! pattern graph (100,800 full combinations vs 128 for 7 binary attributes),
//! punishing the bottom-up PATTERN-COMBINER. Only the cardinality vector and
//! marginal skew matter for that effect; both are preserved here. Retail
//! catalogs are head-heavy (round shapes, ideal cuts dominate), so marginals
//! follow a Zipf-like `1/(rank+1)` law with mild correlation between the
//! finish attributes (cut/polish/symmetry grades co-vary on real diamonds).

use rand::Rng;

use crate::dataset::Dataset;
use crate::error::Result;
use crate::schema::{Attribute, Schema};

/// Attribute cardinalities of the real catalog (§V-A).
pub const BLUENILE_CARDINALITIES: [usize; 7] = [10, 4, 7, 8, 3, 3, 5];

/// Row count of the real catalog at the paper's time of access.
pub const BLUENILE_ROWS: usize = 116_300;

const NAMES: [&str; 7] = [
    "shape",
    "cut",
    "color",
    "clarity",
    "polish",
    "symmetry",
    "fluorescence",
];

/// Probability that `polish`/`symmetry` copy the (rescaled) `cut` grade.
const FINISH_CORRELATION: f64 = 0.4;

/// Generates a BlueNile-like dataset with `n` rows (pass
/// [`BLUENILE_ROWS`] for the paper-faithful size).
pub fn bluenile_like(n: usize, seed: u64) -> Result<Dataset> {
    let schema = Schema::new(
        NAMES
            .iter()
            .zip(BLUENILE_CARDINALITIES)
            .map(|(name, c)| Attribute::new(*name, c))
            .collect::<Result<Vec<_>>>()?,
    )?;
    // Zipf-like weights per attribute: weight(v) = 1/(v+1).
    let weights: Vec<Vec<f64>> = BLUENILE_CARDINALITIES
        .iter()
        .map(|&c| (0..c).map(|v| 1.0 / (v as f64 + 1.0)).collect())
        .collect();
    let mut r = super::rng(seed);
    let mut ds = Dataset::new(schema);
    let mut row = [0u8; 7];
    for _ in 0..n {
        for (i, w) in weights.iter().enumerate() {
            row[i] = super::weighted_index(&mut r, w);
        }
        // Correlate the finish grades with cut: a well-cut stone tends to
        // have good polish/symmetry. cut has 4 grades, finish attrs have 3;
        // rescale by clamping.
        for finish in [4usize, 5] {
            if r.random::<f64>() < FINISH_CORRELATION {
                row[finish] = row[1].min(2);
            }
        }
        ds.push_row(&row)?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_catalog() {
        let ds = bluenile_like(100, 0).unwrap();
        let cards: Vec<usize> = ds
            .schema()
            .cardinalities()
            .iter()
            .map(|&c| c as usize)
            .collect();
        assert_eq!(cards, BLUENILE_CARDINALITIES);
        assert_eq!(ds.schema().combination_count(), 100_800);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(bluenile_like(50, 9).unwrap(), bluenile_like(50, 9).unwrap());
        assert_ne!(
            bluenile_like(50, 9).unwrap(),
            bluenile_like(50, 10).unwrap()
        );
    }

    #[test]
    fn marginals_are_head_heavy() {
        let ds = bluenile_like(20_000, 1).unwrap();
        let n = ds.len() as f64;
        // shape=0 (the most popular) should beat shape=9 by a wide margin.
        let head = ds.count_where(|r, _| r[0] == 0) as f64 / n;
        let tail = ds.count_where(|r, _| r[0] == 9) as f64 / n;
        assert!(head > 4.0 * tail, "head={head} tail={tail}");
    }

    #[test]
    fn finish_grades_correlate_with_cut() {
        let ds = bluenile_like(20_000, 2).unwrap();
        let agree = ds.count_where(|r, _| r[4] == r[1].min(2)) as f64 / ds.len() as f64;
        // Independence baseline would be roughly 1/3 to 1/2 for Zipf draws.
        assert!(agree > 0.55, "agree = {agree}");
    }

    #[test]
    fn all_values_in_range() {
        let ds = bluenile_like(5_000, 3).unwrap();
        for row in ds.rows() {
            for (i, &v) in row.iter().enumerate() {
                assert!((v as usize) < BLUENILE_CARDINALITIES[i]);
            }
        }
    }
}
