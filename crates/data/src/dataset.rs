//! The [`Dataset`] type: encoded categorical rows plus optional binary labels.
//!
//! Rows are stored row-major in a flat `Vec<u8>` for cache-friendly scans.
//! Label attributes (`Y` in §II) are kept separate from the attributes of
//! interest and are never considered by the coverage machinery.

use crate::error::{DataError, Result};
use crate::schema::Schema;

/// An encoded categorical dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    schema: Schema,
    /// Row-major values; length is `len * schema.arity()`.
    values: Vec<u8>,
    /// Optional binary label per row (the paper's target attribute, e.g.
    /// "has re-offended"). Empty when unlabeled.
    labels: Vec<bool>,
    len: usize,
}

impl Dataset {
    /// Creates an empty dataset over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            values: Vec::new(),
            labels: Vec::new(),
            len: 0,
        }
    }

    /// Builds a dataset from complete rows, validating arity and value ranges.
    pub fn from_rows(schema: Schema, rows: &[Vec<u8>]) -> Result<Self> {
        let mut ds = Self::new(schema);
        for row in rows {
            ds.push_row(row)?;
        }
        Ok(ds)
    }

    /// Builds a labeled dataset; `rows.len()` must equal `labels.len()`.
    pub fn from_labeled_rows(schema: Schema, rows: &[Vec<u8>], labels: &[bool]) -> Result<Self> {
        if rows.len() != labels.len() {
            return Err(DataError::Io(format!(
                "{} rows but {} labels",
                rows.len(),
                labels.len()
            )));
        }
        let mut ds = Self::new(schema);
        for (row, &label) in rows.iter().zip(labels) {
            ds.push_labeled_row(row, label)?;
        }
        Ok(ds)
    }

    fn validate_row(&self, row: &[u8]) -> Result<()> {
        let d = self.schema.arity();
        if row.len() != d {
            return Err(DataError::RowArity {
                row: self.len,
                got: row.len(),
                expected: d,
            });
        }
        for (i, &v) in row.iter().enumerate() {
            let c = self.schema.cardinality(i);
            if v >= c {
                return Err(DataError::ValueOutOfRange {
                    row: self.len,
                    attribute: i,
                    value: v,
                    cardinality: c,
                });
            }
        }
        Ok(())
    }

    /// Appends an unlabeled row.
    ///
    /// # Errors
    ///
    /// Fails when the row has the wrong arity, a value code out of range, or
    /// when mixing unlabeled rows into a labeled dataset.
    pub fn push_row(&mut self, row: &[u8]) -> Result<()> {
        if !self.labels.is_empty() {
            return Err(DataError::Io(
                "cannot push an unlabeled row into a labeled dataset".into(),
            ));
        }
        self.validate_row(row)?;
        self.values.extend_from_slice(row);
        self.len += 1;
        Ok(())
    }

    /// Removes one row equal to `row` (the multiset loses one copy; row
    /// order is not preserved — the last row moves into the vacated slot).
    ///
    /// # Errors
    ///
    /// Fails on labeled datasets (which copy of the row would surrender its
    /// label is ambiguous), on arity/value-range mismatches, and when no
    /// matching row is present.
    pub fn remove_row(&mut self, row: &[u8]) -> Result<()> {
        if !self.labels.is_empty() {
            return Err(DataError::Io(
                "cannot remove rows from a labeled dataset".into(),
            ));
        }
        self.validate_row(row)?;
        let d = self.schema.arity();
        // Scan newest-first: streaming workloads usually delete recent rows.
        let i = (0..self.len)
            .rev()
            .find(|&i| &self.values[i * d..(i + 1) * d] == row)
            .ok_or(DataError::RowNotFound)?;
        let last = (self.len - 1) * d;
        if i * d < last {
            let (head, tail) = self.values.split_at_mut(last);
            head[i * d..(i + 1) * d].copy_from_slice(tail);
        }
        self.values.truncate(last);
        self.len -= 1;
        Ok(())
    }

    /// Appends a labeled row.
    pub fn push_labeled_row(&mut self, row: &[u8], label: bool) -> Result<()> {
        if self.len > 0 && self.labels.is_empty() {
            return Err(DataError::Io(
                "cannot push a labeled row into an unlabeled dataset".into(),
            ));
        }
        self.validate_row(row)?;
        self.values.extend_from_slice(row);
        self.labels.push(label);
        self.len += 1;
        Ok(())
    }

    /// Number of rows (`n` in the paper).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The schema of attributes of interest.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of attributes (`d`).
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// The `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn row(&self, i: usize) -> &[u8] {
        let d = self.schema.arity();
        &self.values[i * d..(i + 1) * d]
    }

    /// Iterates over all rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[u8]> + '_ {
        self.values.chunks_exact(self.schema.arity())
    }

    /// The label of row `i`, if the dataset is labeled.
    pub fn label(&self, i: usize) -> Option<bool> {
        self.labels.get(i).copied()
    }

    /// All labels (empty for unlabeled datasets).
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Whether every row carries a label.
    pub fn is_labeled(&self) -> bool {
        !self.labels.is_empty() && self.labels.len() == self.len
    }

    /// Projects the dataset onto the attribute positions in `keep`,
    /// preserving labels. Used by the varying-`d` experiments (§V-C3).
    pub fn project(&self, keep: &[usize]) -> Result<Dataset> {
        let schema = self.schema.project(keep)?;
        let mut values = Vec::with_capacity(self.len * keep.len());
        for row in self.rows() {
            for &k in keep {
                values.push(row[k]);
            }
        }
        Ok(Dataset {
            schema,
            values,
            labels: self.labels.clone(),
            len: self.len,
        })
    }

    /// Returns the first `n` rows as a new dataset (labels included).
    /// Used by the varying-`n` experiments (§V-C2).
    pub fn head(&self, n: usize) -> Dataset {
        let n = n.min(self.len);
        let d = self.schema.arity();
        Dataset {
            schema: self.schema.clone(),
            values: self.values[..n * d].to_vec(),
            labels: if self.labels.is_empty() {
                Vec::new()
            } else {
                self.labels[..n].to_vec()
            },
            len: n,
        }
    }

    /// Counts rows matching a predicate over `(row, label)` pairs.
    pub fn count_where(&self, mut pred: impl FnMut(&[u8], Option<bool>) -> bool) -> usize {
        (0..self.len)
            .filter(|&i| pred(self.row(i), self.label(i)))
            .count()
    }

    /// Appends all rows of `other` (same schema required).
    pub fn extend_from(&mut self, other: &Dataset) -> Result<()> {
        if other.schema != self.schema {
            return Err(DataError::Io("schema mismatch in extend_from".into()));
        }
        if self.is_labeled() != other.is_labeled() && !self.is_empty() && !other.is_empty() {
            return Err(DataError::Io(
                "cannot mix labeled and unlabeled datasets".into(),
            ));
        }
        self.values.extend_from_slice(&other.values);
        self.labels.extend_from_slice(&other.labels);
        self.len += other.len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // Example 1 of the paper: binary A1..A3, rows 010 001 000 011 001.
        let schema = Schema::binary(3).unwrap();
        Dataset::from_rows(
            schema,
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let ds = toy();
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.arity(), 3);
        assert_eq!(ds.row(1), &[0, 0, 1]);
        assert_eq!(ds.rows().count(), 5);
        assert!(!ds.is_labeled());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut ds = Dataset::new(Schema::binary(3).unwrap());
        assert!(matches!(
            ds.push_row(&[0, 1]),
            Err(DataError::RowArity { .. })
        ));
    }

    #[test]
    fn out_of_range_value_rejected() {
        let mut ds = Dataset::new(Schema::binary(2).unwrap());
        assert!(matches!(
            ds.push_row(&[0, 2]),
            Err(DataError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn remove_row_shrinks_the_multiset() {
        let mut ds = toy();
        ds.remove_row(&[0, 0, 1]).unwrap(); // present twice — one copy goes
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.count_where(|r, _| r == [0, 0, 1]), 1);
        ds.remove_row(&[0, 0, 1]).unwrap();
        assert_eq!(ds.count_where(|r, _| r == [0, 0, 1]), 0);
        assert!(matches!(
            ds.remove_row(&[0, 0, 1]),
            Err(DataError::RowNotFound)
        ));
        // The surviving rows are exactly the rest of the original multiset.
        let mut rows: Vec<Vec<u8>> = ds.rows().map(<[u8]>::to_vec).collect();
        rows.sort();
        assert_eq!(rows, vec![vec![0, 0, 0], vec![0, 1, 0], vec![0, 1, 1]]);
    }

    #[test]
    fn remove_row_validates_and_rejects_labeled() {
        let mut ds = toy();
        assert!(matches!(
            ds.remove_row(&[0, 0]),
            Err(DataError::RowArity { .. })
        ));
        assert!(matches!(
            ds.remove_row(&[0, 0, 9]),
            Err(DataError::ValueOutOfRange { .. })
        ));
        let mut labeled = Dataset::from_labeled_rows(
            Schema::binary(2).unwrap(),
            &[vec![0, 1], vec![1, 0]],
            &[true, false],
        )
        .unwrap();
        assert!(labeled.remove_row(&[0, 1]).is_err());
    }

    #[test]
    fn remove_every_row_empties_the_dataset() {
        let mut ds = toy();
        for row in toy().rows() {
            ds.remove_row(row).unwrap();
        }
        assert!(ds.is_empty());
        ds.push_row(&[1, 1, 1]).unwrap();
        assert_eq!(ds.row(0), &[1, 1, 1]);
    }

    #[test]
    fn labels_roundtrip() {
        let schema = Schema::binary(2).unwrap();
        let ds =
            Dataset::from_labeled_rows(schema, &[vec![0, 1], vec![1, 0]], &[true, false]).unwrap();
        assert!(ds.is_labeled());
        assert_eq!(ds.label(0), Some(true));
        assert_eq!(ds.label(1), Some(false));
    }

    #[test]
    fn mixing_labeled_and_unlabeled_rejected() {
        let mut ds = Dataset::new(Schema::binary(1).unwrap());
        ds.push_row(&[0]).unwrap();
        assert!(ds.push_labeled_row(&[1], true).is_err());

        let mut ds2 = Dataset::new(Schema::binary(1).unwrap());
        ds2.push_labeled_row(&[0], false).unwrap();
        assert!(ds2.push_row(&[1]).is_err());
    }

    #[test]
    fn projection() {
        let ds = toy();
        let p = ds.project(&[2, 1]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.row(0), &[0, 1]);
        assert_eq!(p.row(1), &[1, 0]);
    }

    #[test]
    fn head_truncates() {
        let ds = toy();
        let h = ds.head(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.row(1), &[0, 0, 1]);
        assert_eq!(ds.head(99).len(), 5);
    }

    #[test]
    fn count_where_counts_matches() {
        let ds = toy();
        assert_eq!(ds.count_where(|r, _| r[2] == 1), 3);
    }

    #[test]
    fn extend_from_appends() {
        let mut a = toy();
        let b = toy();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 10);
        assert_eq!(a.row(6), &[0, 0, 1]);
        assert_eq!(a.row(7), &[0, 0, 0]);
    }

    #[test]
    fn extend_from_rejects_schema_mismatch() {
        let mut a = toy();
        let b = Dataset::new(Schema::binary(2).unwrap());
        assert!(a.extend_from(&b).is_err());
    }
}
