//! The [`Dataset`] type: encoded categorical rows plus optional binary labels.
//!
//! Rows are stored row-major in a flat `Vec<u8>` for cache-friendly scans.
//! Label attributes (`Y` in §II) are kept separate from the attributes of
//! interest and are never considered by the coverage machinery.

use std::collections::HashMap;

use crate::error::{DataError, Result};
use crate::schema::Schema;

/// An encoded categorical dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    /// Row-major values; length is `len * schema.arity()`.
    values: Vec<u8>,
    /// Optional binary label per row (the paper's target attribute, e.g.
    /// "has re-offended"). Empty when unlabeled.
    labels: Vec<bool>,
    len: usize,
    /// Row-position index: value combination → indices of the rows carrying
    /// it. Built lazily on the first [`Self::remove_row`] (batch-only
    /// consumers never pay for it) and maintained across pushes and
    /// swap-removes from then on, so deletes locate their victim in O(d)
    /// instead of the O(n·d) scan that dominated the delete path at scale.
    positions: HashMap<Box<[u8]>, Vec<usize>>,
    /// Whether `positions` is live. Bulk mutations that bypass the
    /// row-by-row paths clear it; the next delete rebuilds.
    indexed: bool,
}

/// Equality is over the observable data (schema, rows, labels) — the
/// lazily built position index is derived state and deliberately excluded.
impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.values == other.values
            && self.labels == other.labels
            && self.len == other.len
    }
}

impl Eq for Dataset {}

impl Dataset {
    /// Creates an empty dataset over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            values: Vec::new(),
            labels: Vec::new(),
            len: 0,
            positions: HashMap::new(),
            indexed: false,
        }
    }

    /// Builds a dataset from complete rows, validating arity and value ranges.
    pub fn from_rows(schema: Schema, rows: &[Vec<u8>]) -> Result<Self> {
        let mut ds = Self::new(schema);
        for row in rows {
            ds.push_row(row)?;
        }
        Ok(ds)
    }

    /// Builds a labeled dataset; `rows.len()` must equal `labels.len()`.
    pub fn from_labeled_rows(schema: Schema, rows: &[Vec<u8>], labels: &[bool]) -> Result<Self> {
        if rows.len() != labels.len() {
            return Err(DataError::Io(format!(
                "{} rows but {} labels",
                rows.len(),
                labels.len()
            )));
        }
        let mut ds = Self::new(schema);
        for (row, &label) in rows.iter().zip(labels) {
            ds.push_labeled_row(row, label)?;
        }
        Ok(ds)
    }

    fn validate_row(&self, row: &[u8]) -> Result<()> {
        let d = self.schema.arity();
        if row.len() != d {
            return Err(DataError::RowArity {
                row: self.len,
                got: row.len(),
                expected: d,
            });
        }
        for (i, &v) in row.iter().enumerate() {
            let c = self.schema.cardinality(i);
            if v >= c {
                return Err(DataError::ValueOutOfRange {
                    row: self.len,
                    attribute: i,
                    value: v,
                    cardinality: c,
                });
            }
        }
        Ok(())
    }

    /// Appends an unlabeled row.
    ///
    /// # Errors
    ///
    /// Fails when the row has the wrong arity, a value code out of range, or
    /// when mixing unlabeled rows into a labeled dataset.
    pub fn push_row(&mut self, row: &[u8]) -> Result<()> {
        if !self.labels.is_empty() {
            return Err(DataError::Io(
                "cannot push an unlabeled row into a labeled dataset".into(),
            ));
        }
        self.validate_row(row)?;
        self.values.extend_from_slice(row);
        if self.indexed {
            self.positions
                .entry(row.to_vec().into_boxed_slice())
                .or_default()
                .push(self.len);
        }
        self.len += 1;
        Ok(())
    }

    /// (Re)builds the row-position index from the raw values.
    fn build_position_index(&mut self) {
        let d = self.schema.arity();
        self.positions.clear();
        for (i, row) in self.values.chunks_exact(d).enumerate() {
            match self.positions.get_mut(row) {
                Some(list) => list.push(i),
                None => {
                    self.positions
                        .insert(row.to_vec().into_boxed_slice(), vec![i]);
                }
            }
        }
        self.indexed = true;
    }

    /// Removes one row equal to `row` (the multiset loses one copy; row
    /// order is not preserved — the last row moves into the vacated slot).
    /// The victim is located through the row-position index in O(d), not a
    /// row scan; the first call builds the index in one O(n·d) pass.
    ///
    /// # Errors
    ///
    /// Fails on labeled datasets (which copy of the row would surrender its
    /// label is ambiguous), on arity/value-range mismatches, and when no
    /// matching row is present.
    pub fn remove_row(&mut self, row: &[u8]) -> Result<()> {
        if !self.labels.is_empty() {
            return Err(DataError::Io(
                "cannot remove rows from a labeled dataset".into(),
            ));
        }
        self.validate_row(row)?;
        if !self.indexed {
            self.build_position_index();
        }
        let d = self.schema.arity();
        let list = self.positions.get_mut(row).ok_or(DataError::RowNotFound)?;
        // Take the newest copy, mirroring the historical newest-first scan
        // (streaming workloads usually delete recent rows).
        let slot = list
            .iter()
            .enumerate()
            .max_by_key(|&(_, &p)| p)
            .map(|(s, _)| s)
            .expect("position lists are never left empty");
        let i = list.swap_remove(slot);
        if list.is_empty() {
            self.positions.remove(row);
        }
        let last_row = self.len - 1;
        if i < last_row {
            // Swap-remove: the last row moves into the vacated slot, and its
            // index entry follows it.
            let moved: Vec<u8> = self.values[last_row * d..(last_row + 1) * d].to_vec();
            let (head, tail) = self.values.split_at_mut(last_row * d);
            head[i * d..(i + 1) * d].copy_from_slice(tail);
            let entry = self
                .positions
                .get_mut(moved.as_slice())
                .expect("moved row is indexed");
            let at = entry
                .iter()
                .position(|&p| p == last_row)
                .expect("moved row's old position is indexed");
            entry[at] = i;
        }
        self.values.truncate(last_row * d);
        self.len -= 1;
        Ok(())
    }

    /// Appends a labeled row.
    pub fn push_labeled_row(&mut self, row: &[u8], label: bool) -> Result<()> {
        if self.len > 0 && self.labels.is_empty() {
            return Err(DataError::Io(
                "cannot push a labeled row into an unlabeled dataset".into(),
            ));
        }
        self.validate_row(row)?;
        self.values.extend_from_slice(row);
        self.labels.push(label);
        self.len += 1;
        // Labeled datasets reject remove_row, so the index is dead weight.
        self.positions.clear();
        self.indexed = false;
        Ok(())
    }

    /// Registers one additional value on attribute `attribute`, returning
    /// its code. Existing rows are untouched — the new value starts with
    /// zero occurrences; subsequent [`Self::push_row`] calls carrying the
    /// new code validate against the grown cardinality.
    pub fn grow_value(&mut self, attribute: usize, name: impl Into<String>) -> Result<u8> {
        self.schema.add_value(attribute, name)
    }

    /// Number of rows (`n` in the paper).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The schema of attributes of interest.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of attributes (`d`).
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// The `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn row(&self, i: usize) -> &[u8] {
        let d = self.schema.arity();
        &self.values[i * d..(i + 1) * d]
    }

    /// Iterates over all rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[u8]> + '_ {
        self.values.chunks_exact(self.schema.arity())
    }

    /// The label of row `i`, if the dataset is labeled.
    pub fn label(&self, i: usize) -> Option<bool> {
        self.labels.get(i).copied()
    }

    /// All labels (empty for unlabeled datasets).
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Whether every row carries a label.
    pub fn is_labeled(&self) -> bool {
        !self.labels.is_empty() && self.labels.len() == self.len
    }

    /// Projects the dataset onto the attribute positions in `keep`,
    /// preserving labels. Used by the varying-`d` experiments (§V-C3).
    pub fn project(&self, keep: &[usize]) -> Result<Dataset> {
        let schema = self.schema.project(keep)?;
        let mut values = Vec::with_capacity(self.len * keep.len());
        for row in self.rows() {
            for &k in keep {
                values.push(row[k]);
            }
        }
        Ok(Dataset {
            schema,
            values,
            labels: self.labels.clone(),
            len: self.len,
            positions: HashMap::new(),
            indexed: false,
        })
    }

    /// Returns the first `n` rows as a new dataset (labels included).
    /// Used by the varying-`n` experiments (§V-C2).
    pub fn head(&self, n: usize) -> Dataset {
        let n = n.min(self.len);
        let d = self.schema.arity();
        Dataset {
            schema: self.schema.clone(),
            values: self.values[..n * d].to_vec(),
            labels: if self.labels.is_empty() {
                Vec::new()
            } else {
                self.labels[..n].to_vec()
            },
            len: n,
            positions: HashMap::new(),
            indexed: false,
        }
    }

    /// Counts rows matching a predicate over `(row, label)` pairs.
    pub fn count_where(&self, mut pred: impl FnMut(&[u8], Option<bool>) -> bool) -> usize {
        (0..self.len)
            .filter(|&i| pred(self.row(i), self.label(i)))
            .count()
    }

    /// Appends all rows of `other` (same schema required).
    pub fn extend_from(&mut self, other: &Dataset) -> Result<()> {
        if other.schema != self.schema {
            return Err(DataError::Io("schema mismatch in extend_from".into()));
        }
        if self.is_labeled() != other.is_labeled() && !self.is_empty() && !other.is_empty() {
            return Err(DataError::Io(
                "cannot mix labeled and unlabeled datasets".into(),
            ));
        }
        self.values.extend_from_slice(&other.values);
        self.labels.extend_from_slice(&other.labels);
        self.len += other.len;
        // Bulk append bypasses the per-row index maintenance; the next
        // delete rebuilds from scratch.
        self.positions.clear();
        self.indexed = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // Example 1 of the paper: binary A1..A3, rows 010 001 000 011 001.
        let schema = Schema::binary(3).unwrap();
        Dataset::from_rows(
            schema,
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let ds = toy();
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.arity(), 3);
        assert_eq!(ds.row(1), &[0, 0, 1]);
        assert_eq!(ds.rows().count(), 5);
        assert!(!ds.is_labeled());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut ds = Dataset::new(Schema::binary(3).unwrap());
        assert!(matches!(
            ds.push_row(&[0, 1]),
            Err(DataError::RowArity { .. })
        ));
    }

    #[test]
    fn out_of_range_value_rejected() {
        let mut ds = Dataset::new(Schema::binary(2).unwrap());
        assert!(matches!(
            ds.push_row(&[0, 2]),
            Err(DataError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn grow_value_admits_previously_rejected_rows() {
        let mut ds = toy();
        assert!(matches!(
            ds.push_row(&[0, 2, 0]),
            Err(DataError::ValueOutOfRange { .. })
        ));
        assert_eq!(ds.grow_value(1, "third").unwrap(), 2);
        ds.push_row(&[0, 2, 0]).unwrap();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.schema().cardinality(1), 3);
        // Other attributes keep rejecting out-of-range codes.
        assert!(ds.push_row(&[2, 0, 0]).is_err());
        // Grown rows delete like any other.
        ds.remove_row(&[0, 2, 0]).unwrap();
        assert_eq!(ds.count_where(|r, _| r == [0, 2, 0]), 0);
    }

    #[test]
    fn remove_row_shrinks_the_multiset() {
        let mut ds = toy();
        ds.remove_row(&[0, 0, 1]).unwrap(); // present twice — one copy goes
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.count_where(|r, _| r == [0, 0, 1]), 1);
        ds.remove_row(&[0, 0, 1]).unwrap();
        assert_eq!(ds.count_where(|r, _| r == [0, 0, 1]), 0);
        assert!(matches!(
            ds.remove_row(&[0, 0, 1]),
            Err(DataError::RowNotFound)
        ));
        // The surviving rows are exactly the rest of the original multiset.
        let mut rows: Vec<Vec<u8>> = ds.rows().map(<[u8]>::to_vec).collect();
        rows.sort();
        assert_eq!(rows, vec![vec![0, 0, 0], vec![0, 1, 0], vec![0, 1, 1]]);
    }

    #[test]
    fn remove_row_validates_and_rejects_labeled() {
        let mut ds = toy();
        assert!(matches!(
            ds.remove_row(&[0, 0]),
            Err(DataError::RowArity { .. })
        ));
        assert!(matches!(
            ds.remove_row(&[0, 0, 9]),
            Err(DataError::ValueOutOfRange { .. })
        ));
        let mut labeled = Dataset::from_labeled_rows(
            Schema::binary(2).unwrap(),
            &[vec![0, 1], vec![1, 0]],
            &[true, false],
        )
        .unwrap();
        assert!(labeled.remove_row(&[0, 1]).is_err());
    }

    #[test]
    fn remove_every_row_empties_the_dataset() {
        let mut ds = toy();
        for row in toy().rows() {
            ds.remove_row(row).unwrap();
        }
        assert!(ds.is_empty());
        ds.push_row(&[1, 1, 1]).unwrap();
        assert_eq!(ds.row(0), &[1, 1, 1]);
    }

    /// The pre-index implementation of `remove_row`: O(n·d) newest-first
    /// scan plus swap-remove. Kept as the behavioral reference the indexed
    /// path must match *exactly* (same victim, same final row order).
    fn remove_row_by_scan(values: &mut Vec<u8>, len: &mut usize, d: usize, row: &[u8]) -> bool {
        let Some(i) = (0..*len)
            .rev()
            .find(|&i| &values[i * d..(i + 1) * d] == row)
        else {
            return false;
        };
        let last = (*len - 1) * d;
        if i * d < last {
            let (head, tail) = values.split_at_mut(last);
            head[i * d..(i + 1) * d].copy_from_slice(tail);
        }
        values.truncate(last);
        *len -= 1;
        true
    }

    #[test]
    fn indexed_remove_matches_the_scan_reference() {
        // Random interleaved pushes and deletes over a tiny value space (so
        // duplicates are plentiful): after every op the indexed dataset must
        // be byte-identical to the scan-based reference.
        use rand::{Rng, SeedableRng};
        for seed in 0..10u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let d = 3usize;
            let mut ds = Dataset::new(Schema::binary(d).unwrap());
            let mut ref_values: Vec<u8> = Vec::new();
            let mut ref_len = 0usize;
            for _ in 0..300 {
                let row: Vec<u8> = (0..d).map(|_| rng.random_range(0..2u8)).collect();
                if rng.random_range(0..3u8) == 0 {
                    let removed = ds.remove_row(&row).is_ok();
                    let ref_removed = remove_row_by_scan(&mut ref_values, &mut ref_len, d, &row);
                    assert_eq!(removed, ref_removed, "seed {seed} presence for {row:?}");
                } else {
                    ds.push_row(&row).unwrap();
                    ref_values.extend_from_slice(&row);
                    ref_len += 1;
                }
                assert_eq!(ds.len(), ref_len, "seed {seed}");
                assert_eq!(ds.values, ref_values, "seed {seed}: divergent row layout");
            }
        }
    }

    #[test]
    fn position_index_survives_drain_and_refill() {
        let mut ds = toy();
        for row in toy().rows() {
            ds.remove_row(row).unwrap();
        }
        assert!(ds.is_empty());
        // Pushes after the index is live must keep it consistent.
        for row in [[1u8, 0, 1], [1, 0, 1], [0, 1, 0]] {
            ds.push_row(&row).unwrap();
        }
        ds.remove_row(&[1, 0, 1]).unwrap();
        assert_eq!(ds.count_where(|r, _| r == [1, 0, 1]), 1);
        assert!(ds.remove_row(&[1, 1, 1]).is_err());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn extend_from_invalidates_the_position_index() {
        let mut ds = toy();
        ds.remove_row(&[0, 1, 0]).unwrap(); // index now live
        ds.extend_from(&toy()).unwrap(); // bulk append bypasses it
                                         // Deletes after the bulk append must see the appended rows.
        ds.remove_row(&[0, 1, 0]).unwrap();
        assert_eq!(ds.count_where(|r, _| r == [0, 1, 0]), 0);
        assert_eq!(ds.len(), 8);
    }

    #[test]
    fn labels_roundtrip() {
        let schema = Schema::binary(2).unwrap();
        let ds =
            Dataset::from_labeled_rows(schema, &[vec![0, 1], vec![1, 0]], &[true, false]).unwrap();
        assert!(ds.is_labeled());
        assert_eq!(ds.label(0), Some(true));
        assert_eq!(ds.label(1), Some(false));
    }

    #[test]
    fn mixing_labeled_and_unlabeled_rejected() {
        let mut ds = Dataset::new(Schema::binary(1).unwrap());
        ds.push_row(&[0]).unwrap();
        assert!(ds.push_labeled_row(&[1], true).is_err());

        let mut ds2 = Dataset::new(Schema::binary(1).unwrap());
        ds2.push_labeled_row(&[0], false).unwrap();
        assert!(ds2.push_row(&[1]).is_err());
    }

    #[test]
    fn projection() {
        let ds = toy();
        let p = ds.project(&[2, 1]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.row(0), &[0, 1]);
        assert_eq!(p.row(1), &[1, 0]);
    }

    #[test]
    fn head_truncates() {
        let ds = toy();
        let h = ds.head(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.row(1), &[0, 0, 1]);
        assert_eq!(ds.head(99).len(), 5);
    }

    #[test]
    fn count_where_counts_matches() {
        let ds = toy();
        assert_eq!(ds.count_where(|r, _| r[2] == 1), 3);
    }

    #[test]
    fn extend_from_appends() {
        let mut a = toy();
        let b = toy();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 10);
        assert_eq!(a.row(6), &[0, 0, 1]);
        assert_eq!(a.row(7), &[0, 0, 0]);
    }

    #[test]
    fn extend_from_rejects_schema_mismatch() {
        let mut a = toy();
        let b = Dataset::new(Schema::binary(2).unwrap());
        assert!(a.extend_from(&b).is_err());
    }
}
