//! Aggregation of a dataset into unique value combinations with
//! multiplicities (`D̄` + `cnt` in Appendix A).
//!
//! The coverage oracle operates over unique combinations rather than raw
//! rows: with `n = 1M` rows over 15 binary attributes there are at most
//! 32,768 distinct combinations, so the aggregation shrinks all downstream
//! bit-vectors by orders of magnitude.

use std::collections::HashMap;

use crate::dataset::Dataset;

/// A dataset compressed to its distinct value combinations.
#[derive(Debug, Clone)]
pub struct UniqueCombinations {
    arity: usize,
    cardinalities: Vec<u8>,
    /// Row-major distinct combinations.
    combos: Vec<u8>,
    /// `counts[k]` = number of original rows equal to combination `k`.
    counts: Vec<u64>,
    /// Total number of original rows (Σ counts).
    total: u64,
    /// Combination → index, built lazily on the first [`Self::add_row`] so
    /// batch-only consumers never pay for it; empty until then.
    index: HashMap<Box<[u8]>, usize>,
}

impl UniqueCombinations {
    /// Aggregates `dataset` into unique combinations.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let d = dataset.arity();
        // Transient borrow-keyed map: dropped on return, so the batch path
        // carries no index overhead.
        let mut index: HashMap<&[u8], usize> = HashMap::new();
        let mut combos: Vec<u8> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        for row in dataset.rows() {
            match index.entry(row) {
                std::collections::hash_map::Entry::Occupied(e) => counts[*e.get()] += 1,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(counts.len());
                    counts.push(1);
                    combos.extend_from_slice(row);
                }
            }
        }
        Self {
            arity: d,
            cardinalities: dataset.schema().cardinalities(),
            combos,
            counts,
            total: dataset.len() as u64,
            index: HashMap::new(),
        }
    }

    /// Registers one additional row, returning `(combination index, is_new)`.
    ///
    /// First-seen combination order is preserved, so the result is identical
    /// to re-aggregating the extended dataset from scratch. The first call
    /// builds the persistent combination index (O(#combos)); subsequent
    /// calls are O(1).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on arity mismatch; callers validate value
    /// ranges against the schema before streaming rows in.
    pub fn add_row(&mut self, row: &[u8]) -> (usize, bool) {
        debug_assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.ensure_index();
        self.total += 1;
        if let Some(&k) = self.index.get(row) {
            self.counts[k] += 1;
            (k, false)
        } else {
            let k = self.counts.len();
            self.index.insert(row.to_vec().into_boxed_slice(), k);
            self.counts.push(1);
            self.combos.extend_from_slice(row);
            (k, true)
        }
    }

    /// Unregisters one row, returning `(combination index, removed)` where
    /// `removed` says the combination's multiplicity hit zero and it was
    /// deleted — by moving the *last* combination into its slot
    /// (`Vec::swap_remove` style), so callers mirroring combination indices
    /// (the coverage oracle's bit-vectors) can apply the same O(1) move.
    /// Returns `None`, changing nothing, when no such row is registered.
    ///
    /// After a removal the first-seen combination order is no longer
    /// preserved; only the multiset of `(combination, count)` pairs matches a
    /// from-scratch re-aggregation.
    pub fn remove_row(&mut self, row: &[u8]) -> Option<(usize, bool)> {
        debug_assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.ensure_index();
        let &k = self.index.get(row)?;
        self.total -= 1;
        if self.counts[k] > 1 {
            self.counts[k] -= 1;
            return Some((k, false));
        }
        // Multiplicity exhausted: swap-remove the combination.
        self.index.remove(row);
        self.counts.swap_remove(k);
        let last = self.combos.len() - self.arity;
        if k * self.arity < last {
            let (head, tail) = self.combos.split_at_mut(last);
            head[k * self.arity..(k + 1) * self.arity].copy_from_slice(tail);
            *self
                .index
                .get_mut(tail as &[u8])
                .expect("moved combination is indexed") = k;
        }
        self.combos.truncate(last);
        Some((k, true))
    }

    /// Grows attribute `attribute`'s recorded cardinality by one (a new
    /// value was registered on the source schema). No combination changes —
    /// the new value has zero occurrences until rows carrying it arrive
    /// through [`Self::add_row`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range attribute position or when the cardinality
    /// is already at the encoding ceiling.
    pub fn grow_value(&mut self, attribute: usize) {
        assert!(attribute < self.arity, "attribute {attribute} out of range");
        let c = self.cardinalities[attribute];
        assert!(c < u8::MAX - 1, "cardinality ceiling reached");
        self.cardinalities[attribute] = c + 1;
    }

    /// Builds the persistent combination index if it is stale (lazy, shared
    /// by [`Self::add_row`] and [`Self::remove_row`]).
    fn ensure_index(&mut self) {
        if self.index.len() != self.counts.len() {
            self.index = self
                .combos
                .chunks_exact(self.arity)
                .enumerate()
                .map(|(k, combo)| (combo.to_vec().into_boxed_slice(), k))
                .collect();
        }
    }

    /// Number of distinct combinations.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the source dataset was empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Attribute cardinalities, in order.
    pub fn cardinalities(&self) -> &[u8] {
        &self.cardinalities
    }

    /// The `k`-th distinct combination.
    pub fn combo(&self, k: usize) -> &[u8] {
        &self.combos[k * self.arity..(k + 1) * self.arity]
    }

    /// Iterates over `(combination, count)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&[u8], u64)> + '_ {
        self.combos
            .chunks_exact(self.arity)
            .zip(self.counts.iter().copied())
    }

    /// Multiplicity vector aligned with combination indices.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total row count of the source dataset.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn aggregates_example1() {
        // Example 1 / Appendix A: rows 010 001 000 011 001 →
        // distinct combos {000:1, 001:2, 010:1, 011:1}.
        let ds = Dataset::from_rows(
            Schema::binary(3).unwrap(),
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap();
        let u = UniqueCombinations::from_dataset(&ds);
        assert_eq!(u.len(), 4);
        assert_eq!(u.total(), 5);
        let mut pairs: Vec<(Vec<u8>, u64)> = u.iter().map(|(c, n)| (c.to_vec(), n)).collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (vec![0, 0, 0], 1),
                (vec![0, 0, 1], 2),
                (vec![0, 1, 0], 1),
                (vec![0, 1, 1], 1),
            ]
        );
    }

    #[test]
    fn empty_dataset_aggregates_to_nothing() {
        let ds = Dataset::new(Schema::binary(2).unwrap());
        let u = UniqueCombinations::from_dataset(&ds);
        assert!(u.is_empty());
        assert_eq!(u.total(), 0);
    }

    #[test]
    fn add_row_matches_rebuild() {
        let schema = Schema::binary(3).unwrap();
        let rows = [
            vec![0u8, 1, 0],
            vec![0, 0, 1],
            vec![0, 0, 1],
            vec![1, 1, 1],
            vec![0, 0, 1],
            vec![1, 1, 1],
        ];
        let mut streaming =
            UniqueCombinations::from_dataset(&Dataset::new(Schema::binary(3).unwrap()));
        for (i, row) in rows.iter().enumerate() {
            let (k, is_new) = streaming.add_row(row);
            // New combos take the next index; repeats return the original.
            assert_eq!(is_new, rows[..i].iter().all(|r| r != row), "row {i}");
            assert_eq!(streaming.combo(k), row.as_slice());
        }
        let rebuilt = UniqueCombinations::from_dataset(&Dataset::from_rows(schema, &rows).unwrap());
        assert_eq!(streaming.len(), rebuilt.len());
        assert_eq!(streaming.total(), rebuilt.total());
        assert_eq!(streaming.counts(), rebuilt.counts());
        for k in 0..rebuilt.len() {
            assert_eq!(streaming.combo(k), rebuilt.combo(k));
        }
    }

    #[test]
    fn remove_row_matches_rebuild_as_multiset() {
        let schema = Schema::binary(3).unwrap();
        let rows = [
            vec![0u8, 1, 0],
            vec![0, 0, 1],
            vec![0, 0, 1],
            vec![1, 1, 1],
            vec![0, 0, 1],
        ];
        let mut streaming =
            UniqueCombinations::from_dataset(&Dataset::from_rows(schema.clone(), &rows).unwrap());
        // Decrement: (0,0,1) ×3 → ×2, combination retained.
        assert_eq!(streaming.remove_row(&[0, 0, 1]), Some((1, false)));
        // Exhaustion: (0,1,0) ×1 → gone; the last combination (1,1,1) moves
        // into its slot, exactly as reported.
        let (k, removed) = streaming.remove_row(&[0, 1, 0]).unwrap();
        assert!(removed);
        assert_eq!(streaming.combo(k), &[1, 1, 1][..]);
        // Absent rows change nothing.
        assert_eq!(streaming.remove_row(&[1, 0, 0]), None);
        assert_eq!(streaming.remove_row(&[0, 1, 0]), None);

        let remaining = [vec![1u8, 1, 1], vec![0, 0, 1], vec![0, 0, 1]];
        let rebuilt =
            UniqueCombinations::from_dataset(&Dataset::from_rows(schema, &remaining).unwrap());
        assert_eq!(streaming.total(), rebuilt.total());
        let sorted = |u: &UniqueCombinations| {
            let mut pairs: Vec<(Vec<u8>, u64)> = u.iter().map(|(c, n)| (c.to_vec(), n)).collect();
            pairs.sort();
            pairs
        };
        assert_eq!(sorted(&streaming), sorted(&rebuilt));
    }

    #[test]
    fn remove_then_add_round_trips() {
        let schema = Schema::binary(2).unwrap();
        let mut u = UniqueCombinations::from_dataset(
            &Dataset::from_rows(schema, &[vec![0, 0], vec![1, 1]]).unwrap(),
        );
        assert_eq!(u.remove_row(&[0, 0]), Some((0, true)));
        assert_eq!(u.len(), 1);
        // Re-adding lands in a fresh slot and the index stays consistent.
        let (k, is_new) = u.add_row(&[0, 0]);
        assert!(is_new);
        assert_eq!(u.combo(k), &[0, 0][..]);
        assert_eq!(u.total(), 2);
        assert_eq!(u.remove_row(&[1, 1]), Some((0, true)));
        assert_eq!(u.remove_row(&[0, 0]), Some((0, true)));
        assert!(u.is_empty());
        assert_eq!(u.total(), 0);
    }

    #[test]
    fn grow_value_bumps_cardinality_then_accepts_rows() {
        let ds = Dataset::from_rows(Schema::binary(2).unwrap(), &[vec![0, 1], vec![1, 0]]).unwrap();
        let mut u = UniqueCombinations::from_dataset(&ds);
        assert_eq!(u.cardinalities(), &[2, 2]);
        u.grow_value(1);
        assert_eq!(u.cardinalities(), &[2, 3]);
        assert_eq!(u.len(), 2, "no combination changes on growth");
        let (k, is_new) = u.add_row(&[0, 2]);
        assert!(is_new);
        assert_eq!(u.combo(k), &[0, 2][..]);
        assert_eq!(u.total(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grow_value_rejects_bad_attribute() {
        let ds = Dataset::from_rows(Schema::binary(2).unwrap(), &[vec![0, 1]]).unwrap();
        UniqueCombinations::from_dataset(&ds).grow_value(7);
    }

    #[test]
    fn counts_align_with_combos() {
        let ds = Dataset::from_rows(
            Schema::binary(2).unwrap(),
            &[vec![1, 1], vec![1, 1], vec![1, 1], vec![0, 0]],
        )
        .unwrap();
        let u = UniqueCombinations::from_dataset(&ds);
        assert_eq!(u.len(), 2);
        let total: u64 = u.counts().iter().sum();
        assert_eq!(total, u.total());
        // First-seen order is preserved.
        assert_eq!(u.combo(0), &[1, 1]);
        assert_eq!(u.counts()[0], 3);
    }
}
