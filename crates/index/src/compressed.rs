//! Roaring-compressed coverage oracle.
//!
//! Same inverted-index design as [`crate::CoverageOracle`] — one posting
//! list per `(attribute, value)` pair over the unique-combination indices,
//! `cov(P)` as a weighted intersection against the multiplicity vector —
//! but every list is a [`PostingList`] of adaptive containers instead of a
//! dense bit-vector. Memory goes from Σ cardinality bits *per combination*
//! (every vector stores every combination's bit) to ~2 bytes per posting
//! (only the `d` matching lists store a combination at all), which is what
//! lets the index keep scaling past tens of millions of rows.
//!
//! Mutations are targeted: `add_row` touches `d` containers (the dense
//! oracle pushes a bit onto *every* vector), `remove_row` touches at most
//! `2d`, and `grow_value` inserts an empty list for free.
//!
//! This file is on the `mithra-lint` panic-freedom hot list: probe and
//! mutation paths must not contain `unwrap`/`expect`/`panic!`.

use coverage_data::{Dataset, UniqueCombinations};

use crate::container::{self, Container, PostingList};
use crate::oracle::X;
use crate::provider::{BackendMemory, CoverageBackend, CoverageProvider};

/// Compressed-container coverage oracle: the Roaring-style
/// [`CoverageBackend`], answer-equivalent to [`crate::CoverageOracle`].
#[derive(Debug, Clone)]
pub struct CompressedOracle {
    /// `lists[offsets[i] + v]` = posting list of unique combinations with
    /// value `v` on attribute `i` (prefix-offset layout, like the dense
    /// oracle's vector table).
    lists: Vec<PostingList>,
    offsets: Vec<usize>,
    cardinalities: Vec<u8>,
    combos: UniqueCombinations,
}

impl CompressedOracle {
    /// Builds the oracle directly from a dataset (aggregating internally).
    pub fn from_dataset(dataset: &Dataset) -> Self {
        Self::from_unique(UniqueCombinations::from_dataset(dataset))
    }

    /// Builds the oracle from pre-aggregated unique combinations.
    pub fn from_unique(combos: UniqueCombinations) -> Self {
        let cards = combos.cardinalities().to_vec();
        let mut offsets = Vec::with_capacity(cards.len() + 1);
        let mut acc = 0usize;
        for &c in &cards {
            offsets.push(acc);
            acc += c as usize;
        }
        offsets.push(acc);
        let mut lists = vec![PostingList::default(); acc];
        // Ascending combination indices hit the containers' append fast path.
        for (k, (combo, _)) in combos.iter().enumerate() {
            for (i, &v) in combo.iter().enumerate() {
                lists[offsets[i] + v as usize].insert(k);
            }
        }
        Self {
            lists,
            offsets,
            cardinalities: cards,
            combos,
        }
    }

    /// Incrementally ingests one row. Unlike the dense oracle — which grows
    /// *every* bit-vector by one bit for a new combination — only the `d`
    /// matching posting lists are touched. Returns the row's combination
    /// index.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or a value code out of range.
    pub fn add_row(&mut self, row: &[u8]) -> usize {
        assert_eq!(row.len(), self.arity(), "row arity mismatch");
        for (i, &v) in row.iter().enumerate() {
            assert!(
                v < self.cardinalities[i],
                "value {v} out of range for attribute {i}"
            );
        }
        let (k, is_new) = self.combos.add_row(row);
        if is_new {
            for (i, &v) in row.iter().enumerate() {
                self.lists[self.offsets[i] + v as usize].insert(k);
            }
        }
        k
    }

    /// Incrementally forgets one row. When a combination's multiplicity hits
    /// zero the aggregation swap-removes it: the last combination moves into
    /// the vacated index, so its `d` posting lists re-home one index each —
    /// at most `2d` container mutations, where the dense oracle swap-removes
    /// a bit in *every* vector. Returns whether a matching row was
    /// registered (and removed).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or a value code out of range.
    pub fn remove_row(&mut self, row: &[u8]) -> bool {
        assert_eq!(row.len(), self.arity(), "row arity mismatch");
        for (i, &v) in row.iter().enumerate() {
            assert!(
                v < self.cardinalities[i],
                "value {v} out of range for attribute {i}"
            );
        }
        match self.combos.remove_row(row) {
            None => false,
            Some((_, false)) => true, // multiplicity decremented, index intact
            Some((k, true)) => {
                // The emptied combination *is* `row` (combinations are full
                // value vectors): drop index `k` from its lists first, then
                // re-home the swapped-in last combination from `last` to `k`.
                // Shared lists (same value on an attribute) see remove(k),
                // remove(last), insert(k) in that order — ending with `k`
                // present exactly once, as required.
                let last = self.combos.len();
                for (i, &v) in row.iter().enumerate() {
                    self.lists[self.offsets[i] + v as usize].remove(k);
                }
                if k != last {
                    let moved = self.combos.combo(k).to_vec();
                    for (i, &v) in moved.iter().enumerate() {
                        let list = &mut self.lists[self.offsets[i] + v as usize];
                        list.remove(last);
                        list.insert(k);
                    }
                }
                true
            }
        }
    }

    /// Grows attribute `attribute`'s value dictionary by one, returning the
    /// new value's code. The new posting list is empty and therefore *free*
    /// (zero chunks, zero bytes) — the dense oracle pays a full zero
    /// bit-vector here.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range attribute position or when the cardinality
    /// is already at the encoding ceiling.
    pub fn grow_value(&mut self, attribute: usize) -> u8 {
        assert!(
            attribute < self.cardinalities.len(),
            "attribute {attribute} out of range"
        );
        let code = self.cardinalities[attribute];
        assert!(code < u8::MAX - 1, "cardinality ceiling reached");
        self.lists.insert(
            self.offsets[attribute] + code as usize,
            PostingList::default(),
        );
        for offset in &mut self.offsets[attribute + 1..] {
            *offset += 1;
        }
        self.cardinalities[attribute] = code + 1;
        self.combos.grow_value(attribute);
        code
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.cardinalities.len()
    }

    /// Attribute cardinalities.
    pub fn cardinalities(&self) -> &[u8] {
        &self.cardinalities
    }

    /// Total number of rows in the underlying dataset (`cov(XX..X)`).
    pub fn total(&self) -> u64 {
        self.combos.total()
    }

    /// The underlying unique-combination aggregation.
    pub fn combinations(&self) -> &UniqueCombinations {
        &self.combos
    }

    /// The posting list for `(attribute, value)`.
    ///
    /// # Panics
    ///
    /// Panics when `value >= cardinality(attribute)`.
    fn list(&self, attribute: usize, value: u8) -> &PostingList {
        assert!(
            value < self.cardinalities[attribute],
            "value {value} out of range for attribute {attribute}"
        );
        &self.lists[self.offsets[attribute] + value as usize]
    }

    /// The posting lists selected by a pattern's deterministic elements.
    fn selected(&self, codes: &[u8]) -> Vec<&PostingList> {
        assert_eq!(codes.len(), self.arity(), "pattern arity mismatch");
        let mut selected = Vec::with_capacity(codes.len());
        for (i, &v) in codes.iter().enumerate() {
            if v != X {
                selected.push(self.list(i, v));
            }
        }
        selected
    }

    /// `cov(P, D)`: the number of rows matching the pattern, where `codes`
    /// uses [`X`] for non-deterministic elements. Chunk-at-a-time: the list
    /// with the fewest chunks drives, others are binary-searched by chunk
    /// key; within a chunk the container kernels take over.
    ///
    /// # Panics
    ///
    /// Panics when `codes.len() != arity()` or a deterministic code is out
    /// of range.
    pub fn coverage(&self, codes: &[u8]) -> u64 {
        let selected = self.selected(codes);
        if selected.is_empty() {
            return self.combos.total();
        }
        let counts = self.combos.counts();
        let mut scratch = Vec::new();
        let mut containers: Vec<&Container> = Vec::with_capacity(selected.len());
        let mut total = 0u64;
        let (pivot, rest) = split_pivot(&selected);
        'chunks: for &(key, ref driver) in pivot.chunks() {
            containers.clear();
            containers.push(driver);
            for other in &rest {
                match other.chunk(key) {
                    Some(c) => containers.push(c),
                    None => continue 'chunks,
                }
            }
            let base = (key as usize) << 16;
            total += container::intersect_weighted(&containers, &counts[base..], &mut scratch);
        }
        total
    }

    /// Whether `cov(P) ≥ tau`, with early exit as soon as the running count
    /// reaches the threshold.
    pub fn covered(&self, codes: &[u8], tau: u64) -> bool {
        self.coverage_capped(codes, tau) >= tau
    }

    /// `cov(P)` computed only up to `cap`: the exact count when it is below
    /// `cap`, otherwise the first running count that reached `cap` — the
    /// same capped contract as the dense oracle, so the two compose
    /// identically under [`crate::ShardedOracle`].
    pub fn coverage_capped(&self, codes: &[u8], cap: u64) -> u64 {
        if cap == 0 {
            return 0;
        }
        let selected = self.selected(codes);
        let counts = self.combos.counts();
        if selected.is_empty() {
            let mut total = 0u64;
            for &w in counts {
                total = total.saturating_add(w);
                if total >= cap {
                    return total;
                }
            }
            return total;
        }
        let mut scratch = Vec::new();
        let mut containers: Vec<&Container> = Vec::with_capacity(selected.len());
        let mut total = 0u64;
        let (pivot, rest) = split_pivot(&selected);
        'chunks: for &(key, ref driver) in pivot.chunks() {
            containers.clear();
            containers.push(driver);
            for other in &rest {
                match other.chunk(key) {
                    Some(c) => containers.push(c),
                    None => continue 'chunks,
                }
            }
            let base = (key as usize) << 16;
            let remaining = cap - total; // total < cap on every iteration
            total = total.saturating_add(container::intersect_weighted_capped(
                &containers,
                &counts[base..],
                remaining,
                &mut scratch,
            ));
            if total >= cap {
                return total;
            }
        }
        total
    }

    /// Storage accounting over every container (the `stats` op's
    /// per-backend memory section).
    pub fn memory(&self) -> BackendMemory {
        let mut memory = BackendMemory::default();
        for list in &self.lists {
            for (_, c) in list.chunks() {
                memory.bytes += c.bytes();
                match c {
                    Container::Array(_) => memory.array_containers += 1,
                    Container::Bitmap { .. } => memory.bitmap_containers += 1,
                    Container::Runs(_) => memory.run_containers += 1,
                }
            }
        }
        memory
    }
}

/// Splits off the list with the fewest chunks as the chunk-iteration pivot.
fn split_pivot<'a>(selected: &[&'a PostingList]) -> (&'a PostingList, Vec<&'a PostingList>) {
    let mut pivot = 0usize;
    for (i, list) in selected.iter().enumerate() {
        if list.chunks().len() < selected[pivot].chunks().len() {
            pivot = i;
        }
    }
    let rest: Vec<&PostingList> = selected
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != pivot)
        .map(|(_, &l)| l)
        .collect();
    (selected[pivot], rest)
}

impl CoverageProvider for CompressedOracle {
    fn arity(&self) -> usize {
        CompressedOracle::arity(self)
    }

    fn cardinalities(&self) -> &[u8] {
        CompressedOracle::cardinalities(self)
    }

    fn total(&self) -> u64 {
        CompressedOracle::total(self)
    }

    fn coverage(&self, codes: &[u8]) -> u64 {
        CompressedOracle::coverage(self, codes)
    }

    fn covered(&self, codes: &[u8], tau: u64) -> bool {
        CompressedOracle::covered(self, codes, tau)
    }

    fn coverage_capped(&self, codes: &[u8], cap: u64) -> u64 {
        CompressedOracle::coverage_capped(self, codes, cap)
    }

    fn add_row(&mut self, row: &[u8]) {
        CompressedOracle::add_row(self, row);
    }

    fn remove_row(&mut self, row: &[u8]) -> bool {
        CompressedOracle::remove_row(self, row)
    }

    fn grow_value(&mut self, attribute: usize) -> u8 {
        CompressedOracle::grow_value(self, attribute)
    }

    fn for_each_combination(&self, visit: &mut dyn FnMut(&[u8], u64)) {
        for (combo, count) in self.combinations().iter() {
            visit(combo, count);
        }
    }

    fn backend_name(&self) -> &'static str {
        "compressed"
    }

    fn memory_stats(&self) -> BackendMemory {
        self.memory()
    }
}

impl CoverageBackend for CompressedOracle {
    fn build(dataset: &Dataset, _shards: usize) -> Self {
        CompressedOracle::from_dataset(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoverageOracle;
    use coverage_data::Schema;

    fn example1() -> Dataset {
        Dataset::from_rows(
            Schema::binary(3).unwrap(),
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap()
    }

    fn assert_equivalent(
        compressed: &CompressedOracle,
        dense: &CoverageOracle,
        patterns: &[Vec<u8>],
    ) {
        assert_eq!(compressed.total(), dense.total());
        for p in patterns {
            assert_eq!(compressed.coverage(p), dense.coverage(p), "pattern {p:?}");
            for tau in [1u64, 2, 5, 50] {
                assert_eq!(
                    compressed.covered(p, tau),
                    dense.covered(p, tau),
                    "{p:?} τ={tau}"
                );
            }
        }
    }

    #[test]
    fn appendix_a_worked_example() {
        let oracle = CompressedOracle::from_dataset(&example1());
        assert_eq!(oracle.coverage(&[0, X, 1]), 3);
        assert_eq!(oracle.coverage(&[X, X, X]), 5);
        assert_eq!(oracle.coverage(&[1, X, X]), 0);
        assert_eq!(oracle.coverage(&[X, 1, X]), 2);
        assert_eq!(oracle.coverage(&[0, 0, 1]), 2);
    }

    #[test]
    fn matches_dense_oracle_on_generated_data() {
        let ds = coverage_data::generators::airbnb_like(2_000, 6, 11).unwrap();
        let compressed = CompressedOracle::from_dataset(&ds);
        let dense = CoverageOracle::from_dataset(&ds);
        let patterns: Vec<Vec<u8>> = vec![
            vec![X; 6],
            vec![1, X, X, X, X, X],
            vec![X, 0, X, 1, X, X],
            vec![1, 1, 0, X, X, 0],
            vec![0, 0, 0, 0, 0, 0],
        ];
        assert_equivalent(&compressed, &dense, &patterns);
    }

    #[test]
    fn streamed_inserts_and_deletes_match_dense() {
        let ds = coverage_data::generators::airbnb_like(600, 5, 23).unwrap();
        let half = ds.head(300);
        let mut compressed = CompressedOracle::from_dataset(&half);
        let mut dense = CoverageOracle::from_dataset(&half);
        for i in 300..ds.len() {
            assert_eq!(compressed.add_row(ds.row(i)), dense.add_row(ds.row(i)));
        }
        let patterns: Vec<Vec<u8>> = vec![
            vec![X; 5],
            vec![1, X, X, X, X],
            vec![X, 0, X, 1, X],
            vec![1, 1, 0, X, 0],
            vec![X, X, X, X, 1],
        ];
        assert_equivalent(&compressed, &dense, &patterns);
        // Delete the first 200 rows (exercises the swap-remove re-homing).
        for i in 0..200 {
            assert_eq!(
                compressed.remove_row(ds.row(i)),
                dense.remove_row(ds.row(i))
            );
        }
        assert_equivalent(&compressed, &dense, &patterns);
        assert!(!compressed.remove_row(&[0, 0, 0, 0, 0]) || dense.total() > 0);
    }

    #[test]
    fn remove_to_empty_and_refill() {
        let mut oracle = CompressedOracle::from_dataset(&example1());
        assert!(!oracle.remove_row(&[1, 1, 1]));
        for row in [[0u8, 1, 0], [0, 0, 1], [0, 0, 0], [0, 1, 1], [0, 0, 1]] {
            assert!(oracle.remove_row(&row));
        }
        assert_eq!(oracle.total(), 0);
        assert_eq!(oracle.coverage(&[X, X, X]), 0);
        assert_eq!(oracle.memory().bytes, 0, "empty lists cost nothing");
        oracle.add_row(&[1, 0, 1]);
        assert_eq!(oracle.coverage(&[1, X, 1]), 1);
    }

    #[test]
    fn grow_value_is_free_and_matches_dense() {
        let mut compressed = CompressedOracle::from_dataset(&example1());
        let mut dense = CoverageOracle::from_dataset(&example1());
        let before = compressed.memory().bytes;
        assert_eq!(compressed.grow_value(1), dense.grow_value(1));
        assert_eq!(compressed.memory().bytes, before, "empty list is free");
        assert_eq!(compressed.cardinalities(), &[2, 3, 2]);
        compressed.add_row(&[1, 2, 0]);
        dense.add_row(&[1, 2, 0]);
        let patterns: Vec<Vec<u8>> = vec![
            vec![X, X, X],
            vec![X, 2, X],
            vec![1, 2, X],
            vec![X, 2, 0],
            vec![0, 1, X],
        ];
        assert_equivalent(&compressed, &dense, &patterns);
    }

    #[test]
    fn coverage_capped_is_exact_below_the_cap() {
        let oracle = CompressedOracle::from_dataset(&example1());
        assert_eq!(oracle.coverage_capped(&[0, X, X], 100), 5);
        assert_eq!(oracle.coverage_capped(&[0, X, X], 6), 5);
        assert!(oracle.coverage_capped(&[0, X, X], 3) >= 3);
        assert_eq!(oracle.coverage_capped(&[1, X, X], 3), 0);
        assert_eq!(oracle.coverage_capped(&[0, X, X], 0), 0);
        assert!(oracle.coverage_capped(&[X, X, X], 2) >= 2);
        assert_eq!(oracle.coverage_capped(&[X, X, X], 100), 5);
    }

    #[test]
    fn provider_surface_and_memory_stats() {
        let mut oracle: Box<dyn CoverageProvider> =
            Box::new(CompressedOracle::from_dataset(&example1()));
        assert_eq!(oracle.backend_name(), "compressed");
        assert_eq!(oracle.coverage_batch(&[&[X, X, X], &[1, X, X]]), vec![5, 0]);
        oracle.add_rows(&[&[1, 0, 1], &[1, 0, 1]]);
        assert_eq!(oracle.coverage(&[1, X, X]), 2);
        assert!(oracle.remove_row(&[1, 0, 1]));
        assert_eq!(oracle.shard_totals(), vec![6]);
        let stats = oracle.memory_stats();
        assert!(stats.bytes > 0);
        assert_eq!(stats.array_containers, stats.containers());
        let mut seen = 0u64;
        oracle.for_each_combination(&mut |combo, count| {
            assert_eq!(combo.len(), 3);
            seen += count;
        });
        assert_eq!(seen, 6);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        CompressedOracle::from_dataset(&example1()).coverage(&[X, X]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_value_panics() {
        CompressedOracle::from_dataset(&example1()).coverage(&[7, X, X]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_row_rejects_out_of_range_values() {
        CompressedOracle::from_dataset(&example1()).add_row(&[0, 0, 7]);
    }
}
