//! A packed bit-vector tuned for the paper's two inverted-index workloads:
//! word-parallel AND across several vectors with early exit (Appendix B's
//! "early stop strategy ... conducting the operation word by word and
//! terminating as soon as a 1 is observed"), and weighted popcounts against a
//! multiplicity vector (Appendix A's dot product with the `cnt` vector).
//!
//! The heavy loops live in [`crate::kernels`] — explicit 4×`u64`-lane
//! unrolled word kernels shared with the compressed backend's bitmap
//! containers; this module only adds the length/weight contracts on top.

use crate::kernels;

/// Number of bits per storage word.
const WORD_BITS: usize = kernels::WORD_BITS;

/// A growable packed bit-vector.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// An all-one vector of `len` bits (trailing bits of the last word are
    /// kept zero so popcounts stay exact).
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds a vector of `len` bits with the given indices set.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut v = Self::zeros(len);
        for i in indices {
            v.set(i, true);
        }
        v
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Writes bit `i`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Appends one bit (used by the growable MUP dominance index).
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(WORD_BITS) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            self.set(self.len - 1, true);
        }
    }

    /// Removes and returns the last bit (used by the shrinkable coverage
    /// oracle when a unique combination's multiplicity drops to zero).
    pub fn pop(&mut self) -> Option<bool> {
        if self.len == 0 {
            return None;
        }
        let value = self.get(self.len - 1);
        self.set(self.len - 1, false); // keep trailing bits zero for popcounts
        self.len -= 1;
        if self.words.len() > self.len.div_ceil(WORD_BITS) {
            self.words.pop();
        }
        Some(value)
    }

    /// Removes bit `i` in O(1) by moving the last bit into its place
    /// (mirrors `Vec::swap_remove`), returning the removed value.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`.
    pub fn swap_remove(&mut self, i: usize) -> bool {
        let removed = self.get(i);
        let last = self.pop().expect("len checked by get");
        if i < self.len {
            self.set(i, last);
        }
        removed
    }

    /// `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Copies `other` into `self` without reallocating when capacities match.
    pub fn copy_from(&mut self, other: &BitVec) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        kernels::popcount_words(&self.words)
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Whether `self & other` has any set bit (early exit, no allocation).
    pub fn intersects(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Dot product with a multiplicity vector: Σ `weights[i]` over set bits
    /// `i`. This is Appendix A's `result · cnt`.
    ///
    /// # Panics
    ///
    /// Panics when `weights.len() < self.len()`.
    pub fn weighted_sum(&self, weights: &[u64]) -> u64 {
        assert!(weights.len() >= self.len, "weight vector too short");
        kernels::weighted_sum_words(&self.words, weights)
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors(if word == 0 { None } else { Some(word) }, |w| {
                let w = w & (w - 1);
                (w != 0).then_some(w)
            })
            .map(move |w| wi * WORD_BITS + w.trailing_zeros() as usize)
        })
    }

    /// Raw storage words (low bit of word 0 is bit 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Weighted popcount of the intersection of several vectors without
/// materializing it: Σ `weights[i]` over bits set in *all* of `vectors`.
///
/// An empty `vectors` slice denotes the universe (all bits set), matching the
/// all-`X` pattern whose coverage is the full dataset size.
///
/// # Panics
///
/// Panics when vector lengths differ or `weights` is shorter than the vectors.
pub fn intersection_weighted_sum(vectors: &[&BitVec], weights: &[u64]) -> u64 {
    match vectors {
        [] => weights.iter().sum(),
        [single] => single.weighted_sum(weights),
        [first, rest @ ..] => {
            for v in rest {
                assert_eq!(v.len, first.len, "bitvec length mismatch");
            }
            assert!(weights.len() >= first.len, "weight vector too short");
            let slices: Vec<&[u64]> = vectors.iter().map(|v| v.words.as_slice()).collect();
            kernels::intersect_weighted_sum(&slices, weights)
        }
    }
}

/// The weighted popcount of the intersection, computed only up to `cap`:
/// the exact sum when it is below `cap`, otherwise the first running total
/// that reached `cap` — the early exit behind every covered/uncovered
/// decision (`cov(P) ≥ τ`), which in covered regions terminates after a
/// handful of words instead of scanning the dataset. Returning the capped
/// count instead of a bool lets a caller summing over several disjoint
/// partitions (a sharded oracle) keep the early exit *within* each
/// partition while the cross-partition total stays exact until the
/// threshold is met.
///
/// An empty `vectors` slice denotes the universe.
pub fn intersection_weight_capped(vectors: &[&BitVec], weights: &[u64], cap: u64) -> u64 {
    if cap == 0 {
        return 0;
    }
    if let [first, rest @ ..] = vectors {
        for v in rest {
            assert_eq!(v.len, first.len, "bitvec length mismatch");
        }
        assert!(weights.len() >= first.len, "weight vector too short");
    }
    let slices: Vec<&[u64]> = vectors.iter().map(|v| v.words.as_slice()).collect();
    kernels::intersect_weighted_capped(&slices, weights, cap)
}

/// Whether the intersection of `vectors` is non-empty, with word-level early
/// exit (Appendix B's early-stop strategy). An empty slice denotes the
/// universe and yields `true` iff the universe is non-empty — callers must
/// special-case the all-`X` pattern themselves, so this returns `false` for
/// an empty slice to stay conservative.
pub fn intersection_any(vectors: &[&BitVec]) -> bool {
    match vectors {
        [] => false,
        [single] => single.any(),
        [first, rest @ ..] => {
            for v in rest {
                assert_eq!(v.len, first.len, "bitvec length mismatch");
            }
            let slices: Vec<&[u64]> = vectors.iter().map(|v| v.words.as_slice()).collect();
            kernels::intersect_any(&slices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_get_set() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);

        let ones = BitVec::ones(130);
        assert_eq!(ones.count_ones(), 130);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn push_grows() {
        let mut v = BitVec::default();
        for i in 0..200 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 200);
        assert_eq!(v.count_ones(), 67);
        assert!(v.get(0) && v.get(3) && !v.get(1));
    }

    #[test]
    fn pop_shrinks_and_keeps_tail_clean() {
        let mut v = BitVec::from_indices(130, [0, 64, 129]);
        assert_eq!(v.pop(), Some(true));
        assert_eq!(v.len(), 129);
        assert_eq!(v.count_ones(), 2);
        assert_eq!(v.pop(), Some(false));
        // Word count shrinks as whole words empty out.
        for _ in 0..64 {
            v.pop();
        }
        assert_eq!(v.len(), 64);
        assert_eq!(v.words().len(), 1);
        assert!(v.get(0));
        let mut empty = BitVec::default();
        assert_eq!(empty.pop(), None);
    }

    #[test]
    fn swap_remove_moves_last_bit_into_hole() {
        let mut v = BitVec::from_indices(100, [3, 99]);
        assert!(!v.swap_remove(5)); // bit 99 (set) moves into slot 5
        assert_eq!(v.len(), 99);
        assert!(v.get(5) && v.get(3));
        assert_eq!(v.count_ones(), 2);
        assert!(v.swap_remove(3)); // last bit (98, unset) moves into slot 3
        assert!(!v.get(3));
        // Removing the final bit needs no move.
        let mut w = BitVec::from_indices(2, [1]);
        assert!(w.swap_remove(1));
        assert_eq!(w.len(), 1);
        assert!(!w.get(0));
    }

    #[test]
    fn and_or_assign() {
        let a0 = BitVec::from_indices(100, [1, 5, 64, 99]);
        let b = BitVec::from_indices(100, [5, 64, 70]);
        let mut a = a0.clone();
        a.and_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![5, 64]);
        let mut o = a0.clone();
        o.or_assign(&b);
        assert_eq!(o.iter_ones().collect::<Vec<_>>(), vec![1, 5, 64, 70, 99]);
    }

    #[test]
    fn weighted_sum_matches_appendix_a_example() {
        // Appendix A: cov(0X1) = (v1,0 & v3,1) · cnt = 3 with
        // cnt = [1,2,1,1], combos 000,001,010,011.
        let v1_0 = BitVec::ones(4);
        let v3_1 = BitVec::from_indices(4, [1, 3]);
        let cnt = [1u64, 2, 1, 1];
        assert_eq!(intersection_weighted_sum(&[&v1_0, &v3_1], &cnt), 3);
    }

    #[test]
    fn intersection_weighted_sum_empty_is_total() {
        let cnt = [1u64, 2, 3];
        assert_eq!(intersection_weighted_sum(&[], &cnt), 6);
    }

    #[test]
    fn intersection_any_early_exit_semantics() {
        let a = BitVec::from_indices(300, [250]);
        let b = BitVec::from_indices(300, [250, 10]);
        let c = BitVec::from_indices(300, [10]);
        assert!(intersection_any(&[&a, &b]));
        assert!(!intersection_any(&[&a, &c]));
        assert!(!intersection_any(&[]));
        assert!(intersection_any(&[&a]));
        assert!(!intersection_any(&[&BitVec::zeros(300)]));
    }

    #[test]
    fn iter_ones_across_words() {
        let v = BitVec::from_indices(200, [0, 63, 64, 127, 128, 199]);
        assert_eq!(
            v.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 199]
        );
    }

    #[test]
    fn intersects_pairwise() {
        let a = BitVec::from_indices(70, [69]);
        let b = BitVec::from_indices(70, [69, 1]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&BitVec::from_indices(70, [1])));
    }

    #[test]
    fn copy_from_reuses_buffer() {
        let mut dst = BitVec::zeros(128);
        let src = BitVec::from_indices(128, [7, 100]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn ones_masks_tail_bits() {
        let v = BitVec::ones(65);
        assert_eq!(v.count_ones(), 65);
        assert_eq!(v.words()[1], 1);
    }
}
