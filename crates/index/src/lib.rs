//! # coverage-index
//!
//! Bit-parallel index structures behind the *mithra* coverage library:
//!
//! * [`BitVec`] — packed bit-vectors with word-parallel AND/OR, weighted
//!   popcounts, and early-exit intersection tests;
//! * [`CoverageProvider`] / [`CoverageBackend`] — the probe-and-mutate
//!   surface the algorithms and the serving layer are generic over;
//! * [`CoverageOracle`] — the inverted-index coverage oracle of Appendix A
//!   (`cov(P)` as an AND over per-(attribute, value) vectors followed by a
//!   dot product with the multiplicity vector) — the canonical single-shard
//!   provider;
//! * [`ShardedOracle`] — N row-disjoint oracles behind the same trait, with
//!   parallel build/ingest/wide-probes for multi-core serving;
//! * [`MupDominanceIndex`] — the growable dominance index of Appendix B used
//!   by DEEPDIVER to prune ancestors and descendants of discovered MUPs.
//!
//! The low-level pattern contract throughout is a `&[u8]` of value codes
//! with [`X`] (= `0xFF`) marking non-deterministic elements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod compressed;
mod container;
mod dominance;
mod kernels;
mod oracle;
mod provider;
mod sharded;

pub use bitvec::{intersection_any, intersection_weighted_sum, BitVec};
pub use compressed::CompressedOracle;
pub use container::{Container, ARRAY_MAX, BITMAP_WORDS, CHUNK_SIZE};
pub use dominance::MupDominanceIndex;
pub use kernels::kernel_features;
pub use oracle::{CoverageOracle, X};
pub use provider::{BackendMemory, CoverageBackend, CoverageProvider};
pub use sharded::ShardedOracle;
