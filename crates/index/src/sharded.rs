//! [`ShardedOracle`]: N row-disjoint backend shards behind the
//! [`CoverageProvider`] trait, for multi-core ingest and wide probes.
//!
//! Coverage is row-partitionable — `cov(P, D)` over a dataset is the sum of
//! `cov(P, D_i)` over disjoint row shards — so every probe answer is the sum
//! of shard-local answers and every row mutation touches exactly one shard:
//!
//! * **build** ([`ShardedOracle::from_dataset`]) splits rows round-robin and
//!   builds the shard backends in parallel (`std::thread::scope`);
//! * **batch ingest** ([`CoverageProvider::add_rows`]) routes each row to
//!   the least-loaded shard, then runs the shard-local ingests in parallel;
//! * **wide probes** ([`CoverageProvider::coverage_batch`]) fan the whole
//!   pattern batch out to every shard in parallel and sum the per-shard
//!   count vectors;
//! * **point probes** stay sequential — [`CoverageProvider::covered`] walks
//!   shards with an early-out as soon as the running count reaches τ, which
//!   beats thread fan-out for the single-pattern probes traversals issue.
//!
//! The wrapper is generic over *any* [`CoverageBackend`] — the default
//! `ShardedOracle` shards the dense [`CoverageOracle`], while
//! `ShardedOracle<CompressedOracle>` shards the compressed one; the capped
//! cross-shard early-out composes identically because both honor the same
//! `coverage_capped` contract.
//!
//! A combination present in several shards is counted independently by each;
//! only the sums are meaningful, which is exactly what the provider contract
//! promises.

use coverage_data::Dataset;

use crate::oracle::CoverageOracle;
use crate::provider::{BackendMemory, CoverageBackend, CoverageProvider};

/// Minimum rows in a build/ingest batch before thread fan-out pays for
/// itself; smaller batches run sequentially.
const PARALLEL_ROW_THRESHOLD: usize = 256;

/// Minimum patterns in a wide probe before thread fan-out pays for itself.
const PARALLEL_PROBE_THRESHOLD: usize = 8;

/// Row-sharded coverage index: disjoint row partitions over any
/// [`CoverageBackend`], summed probes. Defaults to sharding the dense
/// [`CoverageOracle`].
#[derive(Debug, Clone)]
pub struct ShardedOracle<O: CoverageBackend = CoverageOracle> {
    shards: Vec<O>,
}

impl<O: CoverageBackend> ShardedOracle<O> {
    /// Builds a sharded index over `dataset` with `shards` row partitions
    /// (clamped to at least 1). Rows are dealt round-robin; shard backends
    /// are built in parallel for non-trivial datasets.
    pub fn from_dataset(dataset: &Dataset, shards: usize) -> Self {
        let n = shards.max(1);
        let mut parts: Vec<Dataset> = (0..n)
            .map(|_| Dataset::new(dataset.schema().clone()))
            .collect();
        for (i, row) in dataset.rows().enumerate() {
            parts[i % n]
                .push_row(row)
                .expect("source rows are schema-valid");
        }
        let shards = if n > 1 && dataset.len() >= PARALLEL_ROW_THRESHOLD {
            std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .iter()
                    .map(|part| scope.spawn(|| O::build(part, 1)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard build does not panic"))
                    .collect()
            })
        } else {
            parts.iter().map(|part| O::build(part, 1)).collect()
        };
        Self { shards }
    }

    /// Number of shards (always at least 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard backends, in layout order.
    pub fn shards(&self) -> &[O] {
        &self.shards
    }

    /// Index of the shard the next [`CoverageProvider::add_row`] will land
    /// in: the least-loaded one, lowest index on ties — which degrades to
    /// round-robin under uniform load.
    fn least_loaded(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .min_by_key(|(_, shard)| shard.total())
            .map(|(i, _)| i)
            .expect("at least one shard")
    }
}

impl<O: CoverageBackend> CoverageProvider for ShardedOracle<O> {
    fn arity(&self) -> usize {
        self.shards[0].arity()
    }

    fn cardinalities(&self) -> &[u8] {
        self.shards[0].cardinalities()
    }

    fn total(&self) -> u64 {
        self.shards.iter().map(|shard| shard.total()).sum()
    }

    fn coverage(&self, codes: &[u8]) -> u64 {
        self.shards.iter().map(|shard| shard.coverage(codes)).sum()
    }

    fn covered(&self, codes: &[u8], tau: u64) -> bool {
        if tau == 0 {
            return true;
        }
        self.coverage_capped(codes, tau) >= tau
    }

    fn coverage_capped(&self, codes: &[u8], cap: u64) -> u64 {
        // Early-out across shards, early exit within each: every shard
        // counts only up to the still-missing remainder (exact below it),
        // so one scan per shard and the walk stops the moment the running
        // total reaches the cap — in covered regions usually inside shard 0
        // after a handful of words.
        if cap == 0 {
            return 0;
        }
        let mut acc = 0u64;
        for shard in &self.shards {
            acc = acc.saturating_add(shard.coverage_capped(codes, cap - acc));
            if acc >= cap {
                return acc;
            }
        }
        acc
    }

    fn coverage_batch(&self, patterns: &[&[u8]]) -> Vec<u64> {
        if self.shards.len() == 1 || patterns.len() < PARALLEL_PROBE_THRESHOLD {
            let mut sums = vec![0u64; patterns.len()];
            for shard in &self.shards {
                for (sum, p) in sums.iter_mut().zip(patterns) {
                    *sum += shard.coverage(p);
                }
            }
            return sums;
        }
        // Wide probe: every shard answers the whole batch in parallel, then
        // the per-shard count vectors are summed element-wise.
        let per_shard: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || {
                        patterns
                            .iter()
                            .map(|p| shard.coverage(p))
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard probe does not panic"))
                .collect()
        });
        let mut sums = vec![0u64; patterns.len()];
        for counts in per_shard {
            for (sum, c) in sums.iter_mut().zip(counts) {
                *sum += c;
            }
        }
        sums
    }

    fn add_row(&mut self, row: &[u8]) {
        let target = self.least_loaded();
        self.shards[target].add_row(row);
    }

    fn add_rows(&mut self, rows: &[&[u8]]) {
        if self.shards.len() == 1 {
            for row in rows {
                self.shards[0].add_row(row);
            }
            return;
        }
        // Route first (sequential, cheap): simulate the per-row least-loaded
        // choice so batch ingest lands rows exactly where the equivalent
        // stream of add_row calls would.
        let mut loads: Vec<u64> = self.shards.iter().map(|shard| shard.total()).collect();
        let mut groups: Vec<Vec<&[u8]>> = vec![Vec::new(); self.shards.len()];
        for &row in rows {
            let target = loads
                .iter()
                .enumerate()
                .min_by_key(|(_, &load)| load)
                .map(|(i, _)| i)
                .expect("at least one shard");
            loads[target] += 1;
            groups[target].push(row);
        }
        if rows.len() < PARALLEL_ROW_THRESHOLD {
            for (shard, group) in self.shards.iter_mut().zip(&groups) {
                for row in group {
                    shard.add_row(row);
                }
            }
            return;
        }
        // Shard-local ingest in parallel: each thread owns one shard.
        std::thread::scope(|scope| {
            for (shard, group) in self.shards.iter_mut().zip(&groups) {
                scope.spawn(move || {
                    for row in group {
                        shard.add_row(row);
                    }
                });
            }
        });
    }

    fn remove_row(&mut self, row: &[u8]) -> bool {
        // One copy from whichever shard holds the row; shards without it
        // answer with a cheap index miss.
        self.shards.iter_mut().any(|shard| shard.remove_row(row))
    }

    fn grow_value(&mut self, attribute: usize) -> u8 {
        // Every shard grows, so per-shard cardinalities stay in lock-step
        // and any shard can receive rows carrying the new code.
        let mut code = 0;
        for shard in &mut self.shards {
            code = shard.grow_value(attribute);
        }
        code
    }

    fn for_each_combination(&self, visit: &mut dyn FnMut(&[u8], u64)) {
        for shard in &self.shards {
            shard.for_each_combination(visit);
        }
    }

    fn shard_totals(&self) -> Vec<u64> {
        self.shards.iter().map(|shard| shard.total()).collect()
    }

    fn backend_name(&self) -> &'static str {
        // A sharded index reports its inner backend family: sharding is a
        // layout property, the backend is the storage property.
        self.shards[0].backend_name()
    }

    fn memory_stats(&self) -> BackendMemory {
        let mut memory = BackendMemory::default();
        for shard in &self.shards {
            memory.merge(&shard.memory_stats());
        }
        memory
    }
}

impl<O: CoverageBackend> CoverageBackend for ShardedOracle<O> {
    fn build(dataset: &Dataset, shards: usize) -> Self {
        Self::from_dataset(dataset, shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedOracle, X};
    use coverage_data::Schema;

    fn example1() -> Dataset {
        Dataset::from_rows(
            Schema::binary(3).unwrap(),
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap()
    }

    fn probes(d: usize) -> Vec<Vec<u8>> {
        let mut out = vec![vec![X; d]];
        for i in 0..d {
            for v in 0..2u8 {
                let mut p = vec![X; d];
                p[i] = v;
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn shard_counts_are_clamped_and_rows_dealt_round_robin() {
        let sharded = ShardedOracle::<CoverageOracle>::from_dataset(&example1(), 0);
        assert_eq!(sharded.shard_count(), 1);
        let sharded = ShardedOracle::<CoverageOracle>::from_dataset(&example1(), 3);
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.shard_totals(), vec![2, 2, 1]);
        assert_eq!(sharded.total(), 5);
    }

    #[test]
    fn summed_probes_match_the_single_oracle() {
        let single = CoverageOracle::from_dataset(&example1());
        for shards in 1..=4 {
            let sharded = ShardedOracle::<CoverageOracle>::from_dataset(&example1(), shards);
            for p in probes(3) {
                assert_eq!(
                    CoverageProvider::coverage(&sharded, &p),
                    single.coverage(&p),
                    "{shards} shards, pattern {p:?}"
                );
                for tau in [1u64, 2, 3, 5, 6] {
                    assert_eq!(
                        CoverageProvider::covered(&sharded, &p, tau),
                        single.covered(&p, tau),
                        "{shards} shards, pattern {p:?}, tau {tau}"
                    );
                }
            }
        }
    }

    #[test]
    fn coverage_batch_matches_point_probes() {
        let ds = coverage_data::generators::airbnb_like(2_000, 5, 3).unwrap();
        let sharded = ShardedOracle::<CoverageOracle>::from_dataset(&ds, 4);
        let patterns: Vec<Vec<u8>> = probes(5);
        let refs: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
        let batch = sharded.coverage_batch(&refs);
        for (p, &count) in patterns.iter().zip(&batch) {
            assert_eq!(CoverageProvider::coverage(&sharded, p), count, "{p:?}");
        }
    }

    #[test]
    fn add_row_routes_to_the_least_loaded_shard() {
        let mut sharded = ShardedOracle::<CoverageOracle>::from_dataset(&example1(), 3);
        assert_eq!(sharded.shard_totals(), vec![2, 2, 1]);
        CoverageProvider::add_row(&mut sharded, &[1, 1, 1]);
        assert_eq!(sharded.shard_totals(), vec![2, 2, 2]);
        CoverageProvider::add_row(&mut sharded, &[1, 1, 0]);
        assert_eq!(sharded.shard_totals(), vec![3, 2, 2]);
        assert_eq!(CoverageProvider::coverage(&sharded, &[1, 1, X]), 2);
    }

    #[test]
    fn batch_ingest_equals_streamed_single_rows() {
        let ds = coverage_data::generators::airbnb_like(400, 4, 9).unwrap();
        let stream = coverage_data::generators::airbnb_like(800, 4, 10).unwrap();
        let rows: Vec<&[u8]> = stream.rows().collect();
        let mut batched = ShardedOracle::<CoverageOracle>::from_dataset(&ds, 3);
        batched.add_rows(&rows);
        let mut streamed = ShardedOracle::<CoverageOracle>::from_dataset(&ds, 3);
        for row in &rows {
            CoverageProvider::add_row(&mut streamed, row);
        }
        assert_eq!(batched.shard_totals(), streamed.shard_totals());
        for p in probes(4) {
            assert_eq!(
                CoverageProvider::coverage(&batched, &p),
                CoverageProvider::coverage(&streamed, &p),
                "{p:?}"
            );
        }
    }

    #[test]
    fn remove_row_takes_exactly_one_copy_across_shards() {
        let mut sharded = ShardedOracle::<CoverageOracle>::from_dataset(&example1(), 2);
        // (0,0,1) is present twice (one copy per shard under round-robin).
        assert_eq!(CoverageProvider::coverage(&sharded, &[0, 0, 1]), 2);
        assert!(CoverageProvider::remove_row(&mut sharded, &[0, 0, 1]));
        assert_eq!(CoverageProvider::coverage(&sharded, &[0, 0, 1]), 1);
        assert!(CoverageProvider::remove_row(&mut sharded, &[0, 0, 1]));
        assert!(!CoverageProvider::remove_row(&mut sharded, &[0, 0, 1]));
        assert_eq!(sharded.total(), 3);
    }

    #[test]
    fn grow_value_fans_out_to_every_shard() {
        let mut sharded = ShardedOracle::<CoverageOracle>::from_dataset(&example1(), 3);
        assert_eq!(CoverageProvider::grow_value(&mut sharded, 1), 2);
        assert_eq!(CoverageProvider::cardinalities(&sharded), &[2, 3, 2]);
        for shard in sharded.shards() {
            assert_eq!(shard.cardinalities(), &[2, 3, 2]);
        }
        // Existing answers unchanged, the new value covers nothing…
        assert_eq!(CoverageProvider::coverage(&sharded, &[X, X, X]), 5);
        assert_eq!(CoverageProvider::coverage(&sharded, &[X, 2, X]), 0);
        // …and rows carrying it route to any shard without panicking.
        for _ in 0..4 {
            CoverageProvider::add_row(&mut sharded, &[0, 2, 1]);
        }
        assert_eq!(CoverageProvider::coverage(&sharded, &[X, 2, X]), 4);
        // Equivalence with a from-scratch single oracle over the grown data.
        let mut ds = Dataset::new(Schema::with_cardinalities(&[2, 3, 2]).unwrap());
        for row in example1().rows() {
            ds.push_row(row).unwrap();
        }
        for _ in 0..4 {
            ds.push_row(&[0, 2, 1]).unwrap();
        }
        let single = CoverageOracle::from_dataset(&ds);
        for p in [vec![X, 2, X], vec![0, 2, 1], vec![X, X, 1], vec![X, 2, 0]] {
            assert_eq!(
                CoverageProvider::coverage(&sharded, &p),
                single.coverage(&p),
                "{p:?}"
            );
        }
    }

    #[test]
    fn for_each_combination_multiplicities_sum_to_total() {
        let ds = coverage_data::generators::airbnb_like(500, 3, 5).unwrap();
        let sharded = ShardedOracle::<CoverageOracle>::from_dataset(&ds, 4);
        let mut sum = 0u64;
        sharded.for_each_combination(&mut |combo, count| {
            assert_eq!(combo.len(), 3);
            sum += count;
        });
        assert_eq!(sum, 500);
    }

    #[test]
    fn parallel_build_and_ingest_match_sequential_results() {
        // Large enough to cross PARALLEL_ROW_THRESHOLD on both paths.
        let ds = coverage_data::generators::airbnb_like(3_000, 5, 21).unwrap();
        let stream = coverage_data::generators::airbnb_like(1_500, 5, 22).unwrap();
        let rows: Vec<&[u8]> = stream.rows().collect();
        let mut sharded = ShardedOracle::<CoverageOracle>::from_dataset(&ds, 4);
        sharded.add_rows(&rows);
        let mut everything = Dataset::new(ds.schema().clone());
        everything.extend_from(&ds).unwrap();
        for row in &rows {
            everything.push_row(row).unwrap();
        }
        let single = CoverageOracle::from_dataset(&everything);
        assert_eq!(sharded.total(), single.total());
        for p in probes(5) {
            assert_eq!(
                CoverageProvider::coverage(&sharded, &p),
                single.coverage(&p),
                "{p:?}"
            );
        }
    }

    #[test]
    fn empty_dataset_shards_cleanly() {
        let ds = Dataset::new(Schema::binary(2).unwrap());
        let mut sharded = ShardedOracle::<CoverageOracle>::from_dataset(&ds, 4);
        assert_eq!(sharded.total(), 0);
        assert_eq!(CoverageProvider::coverage(&sharded, &[X, X]), 0);
        assert!(!CoverageProvider::covered(&sharded, &[X, X], 1));
        CoverageProvider::add_row(&mut sharded, &[1, 0]);
        assert_eq!(CoverageProvider::coverage(&sharded, &[1, X]), 1);
    }

    #[test]
    fn sharding_composes_over_the_compressed_backend() {
        let ds = coverage_data::generators::airbnb_like(2_000, 5, 17).unwrap();
        let dense = CoverageOracle::from_dataset(&ds);
        let mut sharded = ShardedOracle::<CompressedOracle>::from_dataset(&ds, 4);
        assert_eq!(sharded.backend_name(), "compressed");
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(sharded.total(), dense.total());
        for p in probes(5) {
            assert_eq!(
                CoverageProvider::coverage(&sharded, &p),
                dense.coverage(&p),
                "{p:?}"
            );
            for tau in [1u64, 3, 100] {
                assert_eq!(
                    CoverageProvider::covered(&sharded, &p, tau),
                    dense.covered(&p, tau),
                    "{p:?} τ={tau}"
                );
            }
        }
        // Mutations route through the same trait surface.
        CoverageProvider::add_rows(
            &mut sharded,
            &[&[0, 0, 0, 0, 0], &[1, 0, 1, 0, 1], &[0, 0, 0, 0, 0]],
        );
        assert!(CoverageProvider::remove_row(&mut sharded, &[0, 0, 0, 0, 0]));
        assert_eq!(sharded.total(), dense.total() + 2);
        let memory = sharded.memory_stats();
        assert!(memory.bytes > 0 && memory.containers() > 0);
    }
}
