//! The [`CoverageProvider`] trait: the probe surface the MUP algorithms,
//! the enhancement planner, and the serving layer actually need from a
//! coverage backend — decoupled from any particular index layout.
//!
//! [`CoverageOracle`] is the canonical single-shard implementation;
//! [`crate::ShardedOracle`] distributes rows over several of them for
//! multi-core ingest. Future backends (compressed bitmaps, columnar stores,
//! remote shards) plug in behind the same two traits without touching a
//! single algorithm.

use coverage_data::Dataset;

use crate::oracle::CoverageOracle;

/// Storage accounting for a coverage backend, surfaced through the `stats`
/// op: total index bytes plus a histogram of compressed-container kinds
/// (all zero for backends without containers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendMemory {
    /// Logical index bytes (posting storage; excludes the aggregation).
    pub bytes: u64,
    /// Sorted-array containers in use.
    pub array_containers: u64,
    /// Dense-bitmap containers in use.
    pub bitmap_containers: u64,
    /// Run-length containers in use.
    pub run_containers: u64,
}

impl BackendMemory {
    /// Total containers across all kinds.
    pub fn containers(&self) -> u64 {
        self.array_containers + self.bitmap_containers + self.run_containers
    }

    /// Accumulates another backend's accounting (shard-wise merge).
    pub fn merge(&mut self, other: &BackendMemory) {
        self.bytes += other.bytes;
        self.array_containers += other.array_containers;
        self.bitmap_containers += other.bitmap_containers;
        self.run_containers += other.run_containers;
    }
}

/// Read/write probe interface over a coverage index.
///
/// The pattern contract is the crate-wide one: a `&[u8]` of value codes with
/// [`crate::X`] marking non-deterministic elements. All methods follow the
/// oracle's semantics — `coverage(p)` counts matching rows, `covered(p, τ)`
/// tests `cov(p) ≥ τ`, and the mutation hooks keep answers identical to a
/// from-scratch rebuild over the updated multiset.
///
/// The trait is dyn-compatible on purpose: algorithms take
/// `&dyn CoverageProvider`, so a single compiled body serves every backend.
pub trait CoverageProvider {
    /// Number of attributes (`d`).
    fn arity(&self) -> usize;

    /// Attribute cardinalities, in order.
    fn cardinalities(&self) -> &[u8];

    /// Total number of rows (`cov(XX..X)`).
    fn total(&self) -> u64;

    /// `cov(P, D)`: the number of rows matching the pattern.
    fn coverage(&self, codes: &[u8]) -> u64;

    /// Whether `cov(P) ≥ tau`, routed through [`Self::coverage_capped`] so
    /// every backend keeps the early exit once the running count reaches the
    /// threshold — even backends that only override the capped probe.
    fn covered(&self, codes: &[u8], tau: u64) -> bool {
        self.coverage_capped(codes, tau) >= tau
    }

    /// `cov(P)` computed only up to `cap`: exact when the count is below
    /// `cap`, otherwise any running count that reached `cap` (callers only
    /// compare against `cap` or keep summing shard-wise). An exact count
    /// satisfies the contract, so the default delegates to
    /// [`Self::coverage`]; backends with an early-exit path should override.
    fn coverage_capped(&self, codes: &[u8], cap: u64) -> u64 {
        if cap == 0 {
            return 0;
        }
        self.coverage(codes)
    }

    /// `cov` for a batch of patterns at once — the wide-probe entry point a
    /// multi-shard backend answers in parallel. The default is a sequential
    /// loop over [`Self::coverage`].
    fn coverage_batch(&self, patterns: &[&[u8]]) -> Vec<u64> {
        patterns.iter().map(|p| self.coverage(p)).collect()
    }

    /// Ingests one row; answers afterwards are identical to a rebuild over
    /// the extended multiset.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or a value code out of range (callers
    /// validate against the schema first, as with [`CoverageOracle::add_row`]).
    fn add_row(&mut self, row: &[u8]);

    /// Ingests a batch of rows — the entry point a multi-shard backend
    /// parallelizes over shard-local sub-batches. The default is a
    /// sequential loop over [`Self::add_row`].
    fn add_rows(&mut self, rows: &[&[u8]]) {
        for row in rows {
            self.add_row(row);
        }
    }

    /// Forgets one copy of `row`, returning whether a matching row was
    /// registered (and removed).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or a value code out of range.
    fn remove_row(&mut self, row: &[u8]) -> bool;

    /// Grows attribute `attribute`'s value dictionary by one, returning the
    /// new value's code (always the old cardinality). Answers for existing
    /// patterns must be unchanged; patterns carrying the new code answer 0
    /// until matching rows arrive. A sharded backend grows every shard so
    /// the per-shard cardinalities stay in lock-step.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range attribute position or when the cardinality
    /// is already at the encoding ceiling (callers validate against the
    /// schema's [`coverage_data::MAX_CARDINALITY`] bound first).
    fn grow_value(&mut self, attribute: usize) -> u8;

    /// Visits every distinct `(combination, multiplicity)` pair. A sharded
    /// backend may visit the same combination once per shard holding copies
    /// of it — consumers must sum multiplicities, never assume distinctness.
    fn for_each_combination(&self, visit: &mut dyn FnMut(&[u8], u64));

    /// Rows held per shard — `[total()]` for single-shard backends. Serving
    /// stats surface this so operators can see skew.
    fn shard_totals(&self) -> Vec<u64> {
        vec![self.total()]
    }

    /// Stable backend family name, as accepted by `serve --backend` and
    /// recorded in v5 snapshots. Composite backends report their inner
    /// family (a sharded-over-compressed index is still "compressed").
    fn backend_name(&self) -> &'static str {
        "dense"
    }

    /// Storage accounting for the `stats` op. The default reports nothing;
    /// real backends override with their index footprint.
    fn memory_stats(&self) -> BackendMemory {
        BackendMemory::default()
    }
}

impl CoverageProvider for CoverageOracle {
    fn arity(&self) -> usize {
        CoverageOracle::arity(self)
    }

    fn cardinalities(&self) -> &[u8] {
        CoverageOracle::cardinalities(self)
    }

    fn total(&self) -> u64 {
        CoverageOracle::total(self)
    }

    fn coverage(&self, codes: &[u8]) -> u64 {
        CoverageOracle::coverage(self, codes)
    }

    fn covered(&self, codes: &[u8], tau: u64) -> bool {
        CoverageOracle::covered(self, codes, tau)
    }

    fn coverage_capped(&self, codes: &[u8], cap: u64) -> u64 {
        CoverageOracle::coverage_capped(self, codes, cap)
    }

    fn add_row(&mut self, row: &[u8]) {
        CoverageOracle::add_row(self, row);
    }

    fn remove_row(&mut self, row: &[u8]) -> bool {
        CoverageOracle::remove_row(self, row)
    }

    fn grow_value(&mut self, attribute: usize) -> u8 {
        CoverageOracle::grow_value(self, attribute)
    }

    fn for_each_combination(&self, visit: &mut dyn FnMut(&[u8], u64)) {
        for (combo, count) in self.combinations().iter() {
            visit(combo, count);
        }
    }

    fn memory_stats(&self) -> BackendMemory {
        BackendMemory {
            bytes: self.memory_bytes(),
            ..BackendMemory::default()
        }
    }
}

/// A provider a long-lived engine can own: constructible from a dataset
/// (with a shard-layout hint) and rebuildable after faults.
///
/// `shards` is a *hint*: single-shard backends ignore it, sharded backends
/// clamp it to at least 1. The bounds (`Clone + Send + Sync + 'static`) are
/// what the serving layer needs to share an engine across worker threads
/// (and what lets a sharded wrapper fan probes out over scoped threads).
pub trait CoverageBackend:
    CoverageProvider + Clone + Send + Sync + std::fmt::Debug + 'static
{
    /// Builds the backend over a dataset, honoring the shard-layout hint.
    fn build(dataset: &Dataset, shards: usize) -> Self;
}

impl CoverageBackend for CoverageOracle {
    fn build(dataset: &Dataset, _shards: usize) -> Self {
        CoverageOracle::from_dataset(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::X;
    use coverage_data::Schema;

    fn example1() -> Dataset {
        Dataset::from_rows(
            Schema::binary(3).unwrap(),
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap()
    }

    #[test]
    fn oracle_implements_the_provider_surface() {
        let mut oracle: Box<dyn CoverageProvider> =
            Box::new(CoverageOracle::from_dataset(&example1()));
        assert_eq!(oracle.arity(), 3);
        assert_eq!(oracle.cardinalities(), &[2, 2, 2]);
        assert_eq!(oracle.total(), 5);
        assert_eq!(oracle.coverage(&[0, X, 1]), 3);
        assert!(oracle.covered(&[X, X, X], 5));
        assert!(!oracle.covered(&[1, X, X], 1));
        assert_eq!(oracle.coverage_batch(&[&[X, X, X], &[1, X, X]]), vec![5, 0]);
        oracle.add_rows(&[&[1, 0, 1], &[1, 0, 1]]);
        assert_eq!(oracle.coverage(&[1, X, X]), 2);
        assert!(oracle.remove_row(&[1, 0, 1]));
        assert_eq!(oracle.coverage(&[1, X, X]), 1);
        assert_eq!(oracle.grow_value(2), 2);
        assert_eq!(oracle.cardinalities(), &[2, 2, 3]);
        assert_eq!(oracle.coverage(&[X, X, 2]), 0);
        oracle.add_row(&[0, 0, 2]);
        assert_eq!(oracle.coverage(&[X, X, 2]), 1);
        assert!(oracle.remove_row(&[0, 0, 2]));
        assert_eq!(oracle.shard_totals(), vec![6]);
        let mut seen = 0u64;
        oracle.for_each_combination(&mut |combo, count| {
            assert_eq!(combo.len(), 3);
            seen += count;
        });
        assert_eq!(seen, 6);
    }

    #[test]
    fn backend_build_matches_from_dataset() {
        let built = <CoverageOracle as CoverageBackend>::build(&example1(), 7);
        let direct = CoverageOracle::from_dataset(&example1());
        assert_eq!(built.coverage(&[0, X, 1]), direct.coverage(&[0, X, 1]));
        assert_eq!(built.total(), direct.total());
    }
}
