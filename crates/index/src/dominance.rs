//! The dynamic MUP-dominance index of Appendix B.
//!
//! DEEPDIVER visits a large number of pattern-graph nodes and must decide,
//! for each, whether it *dominates* or *is dominated by* any already
//! discovered MUP (Definition 9). A linear scan over the MUP set is too slow,
//! so the paper keeps, per attribute, one growable bit-vector per value
//! **plus one for `X`**; bit `k` describes MUP `k`. Both checks reduce to a
//! word-parallel AND with early termination.

use crate::bitvec::{intersection_any, BitVec};
use crate::oracle::X;

/// Growable inverted index over a set of MUPs supporting bit-parallel
/// dominance checks.
#[derive(Debug, Clone)]
pub struct MupDominanceIndex {
    /// `slabs[offsets[i] + v]` = bit-vector of MUPs with value `v` on
    /// attribute `i`; slot `cardinality(i)` within each attribute block is
    /// the `X` vector.
    slabs: Vec<BitVec>,
    offsets: Vec<usize>,
    cardinalities: Vec<u8>,
    len: usize,
}

impl MupDominanceIndex {
    /// Creates an empty index for attributes with the given cardinalities.
    pub fn new(cardinalities: &[u8]) -> Self {
        let mut offsets = Vec::with_capacity(cardinalities.len() + 1);
        let mut acc = 0usize;
        for &c in cardinalities {
            offsets.push(acc);
            acc += c as usize + 1; // one slot per value plus the X slot
        }
        offsets.push(acc);
        Self {
            slabs: vec![BitVec::default(); acc],
            offsets,
            cardinalities: cardinalities.to_vec(),
            len: 0,
        }
    }

    fn slot(&self, attribute: usize, code: u8) -> usize {
        let c = self.cardinalities[attribute];
        let v = if code == X {
            c as usize
        } else {
            assert!(
                code < c,
                "value {code} out of range for attribute {attribute}"
            );
            code as usize
        };
        self.offsets[attribute] + v
    }

    /// Number of MUPs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no MUPs have been added yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Registers a newly discovered MUP.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range value codes.
    pub fn add(&mut self, codes: &[u8]) {
        assert_eq!(codes.len(), self.cardinalities.len(), "arity mismatch");
        for (i, &code) in codes.iter().enumerate() {
            let hit = self.slot(i, code);
            let base = self.offsets[i];
            let end = self.offsets[i + 1];
            for s in base..end {
                self.slabs[s].push(s == hit);
            }
        }
        self.len += 1;
    }

    /// Whether `codes` dominates at least one stored MUP: some MUP `M`
    /// agrees with every deterministic element of `codes` (so `M` lies in
    /// the subtree below `codes`).
    pub fn dominates_any(&self, codes: &[u8]) -> bool {
        assert_eq!(codes.len(), self.cardinalities.len(), "arity mismatch");
        if self.len == 0 {
            return false;
        }
        let selected: Vec<&BitVec> = codes
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != X)
            .map(|(i, &v)| &self.slabs[self.slot(i, v)])
            .collect();
        if selected.is_empty() {
            // The all-X root dominates every pattern, hence any MUP.
            return true;
        }
        intersection_any(&selected)
    }

    /// Whether some stored MUP dominates `codes` (i.e. `codes` lies in a
    /// pruned subtree): some MUP `M` with `M[i] ∈ {X, codes[i]}` for every
    /// deterministic `i`, and `M[i] = X` wherever `codes[i] = X`.
    ///
    /// Per Appendix B this ORs the value vector with the `X` vector for
    /// deterministic elements and uses the bare `X` vector for
    /// non-deterministic ones.
    pub fn dominated_by_any(&self, codes: &[u8]) -> bool {
        assert_eq!(codes.len(), self.cardinalities.len(), "arity mismatch");
        if self.len == 0 {
            return false;
        }
        // Word-parallel without materializing the OR vectors: for each
        // storage word, AND together (value | X) words across attributes,
        // short-circuiting within the word and returning on the first
        // surviving bit. All slabs share the same bit length, and `push`
        // keeps tail bits zero, so no masking is needed.
        let words = self.len.div_ceil(64);
        for w in 0..words {
            let mut acc = u64::MAX;
            for (i, &v) in codes.iter().enumerate() {
                let x_word = self.slabs[self.slot(i, X)].words()[w];
                acc &= if v == X {
                    x_word
                } else {
                    self.slabs[self.slot(i, v)].words()[w] | x_word
                };
                if acc == 0 {
                    break;
                }
            }
            if acc != 0 {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_with(mups: &[&[u8]], cards: &[u8]) -> MupDominanceIndex {
        let mut idx = MupDominanceIndex::new(cards);
        for m in mups {
            idx.add(m);
        }
        idx
    }

    #[test]
    fn empty_index_dominates_nothing() {
        let idx = MupDominanceIndex::new(&[2, 2, 2]);
        assert!(!idx.dominates_any(&[X, X, X]) || idx.is_empty());
        assert!(!idx.dominated_by_any(&[1, 1, 1]));
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn paper_example_dominance() {
        // MUP 1XX from Example 1.
        let idx = index_with(&[&[1, X, X]], &[2, 2, 2]);
        // 10X is dominated by 1XX.
        assert!(idx.dominated_by_any(&[1, 0, X]));
        assert!(idx.dominated_by_any(&[1, 1, 1]));
        // XXX dominates 1XX.
        assert!(idx.dominates_any(&[X, X, X]));
        // 0XX neither dominates nor is dominated.
        assert!(!idx.dominated_by_any(&[0, X, X]));
        assert!(!idx.dominates_any(&[0, X, X]));
        // The MUP itself is dominated by (equal to) a stored MUP and
        // dominates one too — both checks include equality.
        assert!(idx.dominated_by_any(&[1, X, X]));
        assert!(idx.dominates_any(&[1, X, X]));
    }

    #[test]
    fn x_positions_require_x_in_dominator() {
        // MUP 10X: pattern 1XX is NOT dominated by it (1XX is more general).
        let idx = index_with(&[&[1, 0, X]], &[2, 2, 2]);
        assert!(!idx.dominated_by_any(&[1, X, X]));
        assert!(idx.dominates_any(&[1, X, X]));
        assert!(idx.dominated_by_any(&[1, 0, 1]));
    }

    #[test]
    fn multiple_mups_any_semantics() {
        let idx = index_with(&[&[1, X, X], &[X, 0, 2]], &[2, 2, 3]);
        assert!(idx.dominated_by_any(&[1, 1, 0])); // by 1XX
        assert!(idx.dominated_by_any(&[0, 0, 2])); // by X02
        assert!(!idx.dominated_by_any(&[0, 1, 0]));
        assert!(idx.dominates_any(&[X, X, 2])); // dominates X02
        assert!(!idx.dominates_any(&[0, 1, 0]));
    }

    #[test]
    fn agrees_with_reference_implementation() {
        use rand::Rng;
        use rand::SeedableRng;
        let cards = [2u8, 3, 2, 4];
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let random_pattern = |rng: &mut rand_chacha::ChaCha8Rng| -> Vec<u8> {
            cards
                .iter()
                .map(|&c| {
                    if rng.random::<f64>() < 0.4 {
                        X
                    } else {
                        rng.random_range(0..c)
                    }
                })
                .collect()
        };
        let dominates = |general: &[u8], specific: &[u8]| {
            general
                .iter()
                .zip(specific)
                .all(|(&g, &s)| g == X || g == s)
        };
        let mups: Vec<Vec<u8>> = (0..30).map(|_| random_pattern(&mut rng)).collect();
        let mut idx = MupDominanceIndex::new(&cards);
        for m in &mups {
            idx.add(m);
        }
        for _ in 0..300 {
            let p = random_pattern(&mut rng);
            let expect_dominated = mups.iter().any(|m| dominates(m, &p));
            let expect_dominates = mups.iter().any(|m| dominates(&p, m));
            assert_eq!(idx.dominated_by_any(&p), expect_dominated, "pattern {p:?}");
            assert_eq!(idx.dominates_any(&p), expect_dominates, "pattern {p:?}");
        }
    }

    #[test]
    fn grows_past_word_boundaries() {
        let mut idx = MupDominanceIndex::new(&[2, 2]);
        for k in 0..130 {
            // MUPs alternate between 0X and X1.
            if k % 2 == 0 {
                idx.add(&[0, X]);
            } else {
                idx.add(&[X, 1]);
            }
        }
        assert_eq!(idx.len(), 130);
        assert!(idx.dominated_by_any(&[0, 0]));
        assert!(idx.dominated_by_any(&[1, 1]));
        assert!(!idx.dominated_by_any(&[1, 0]));
    }
}
