//! Shared word-level intersection kernels.
//!
//! Every coverage probe — the dense oracle's multi-vector AND, the
//! compressed backend's bitmap-container intersections — bottoms out in the
//! loops here. They are written as explicit 4×`u64`-lane unrolled loops with
//! a scalar tail: four independent accumulators per iteration give the
//! backend four in-flight dependency chains, which is what lets a scalar
//! core keep its popcount/AND units saturated (and what an auto-vectorizer
//! needs to emit 256-bit SIMD). The crate stays `#![forbid(unsafe_code)]`,
//! so `u64::count_ones` is the popcount primitive — it compiles to the
//! hardware `popcnt` instruction whenever the target enables the feature
//! (x86-64-v2 and newer, all aarch64); [`kernel_features`] reports what the
//! running host actually has so `stats` can surface it.

/// Words processed per unrolled iteration.
const LANES: usize = 4;

/// Bits per storage word.
pub(crate) const WORD_BITS: usize = 64;

/// `dst[i] &= src[i]` over the common prefix, 4 words per iteration.
pub(crate) fn and_into(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let mut i = 0;
    while i + LANES <= n {
        dst[i] &= src[i];
        dst[i + 1] &= src[i + 1];
        dst[i + 2] &= src[i + 2];
        dst[i + 3] &= src[i + 3];
        i += LANES;
    }
    while i < n {
        dst[i] &= src[i];
        i += 1;
    }
}

/// Population count of a word slice with four independent accumulators.
pub(crate) fn popcount_words(words: &[u64]) -> u64 {
    let mut acc = [0u64; LANES];
    let mut chunks = words.chunks_exact(LANES);
    for chunk in &mut chunks {
        acc[0] += u64::from(chunk[0].count_ones());
        acc[1] += u64::from(chunk[1].count_ones());
        acc[2] += u64::from(chunk[2].count_ones());
        acc[3] += u64::from(chunk[3].count_ones());
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for &w in chunks.remainder() {
        total += u64::from(w.count_ones());
    }
    total
}

/// Σ `weights[base + bit]` over set bits of `word`.
#[inline]
fn weighted_bits(mut word: u64, weights: &[u64], base: usize) -> u64 {
    let mut total = 0u64;
    while word != 0 {
        let bit = word.trailing_zeros() as usize;
        total += weights[base + bit];
        word &= word - 1;
    }
    total
}

/// Σ `weights[wi*64 + bit]` over set bits of `words` (the Appendix A dot
/// product with the multiplicity vector). Bits whose weight index would be
/// out of range must be zero — the bit-vector tail invariant.
pub(crate) fn weighted_sum_words(words: &[u64], weights: &[u64]) -> u64 {
    let mut acc = [0u64; LANES];
    let mut wi = 0;
    let n = words.len();
    while wi + LANES <= n {
        acc[0] += weighted_bits(words[wi], weights, wi * WORD_BITS);
        acc[1] += weighted_bits(words[wi + 1], weights, (wi + 1) * WORD_BITS);
        acc[2] += weighted_bits(words[wi + 2], weights, (wi + 2) * WORD_BITS);
        acc[3] += weighted_bits(words[wi + 3], weights, (wi + 3) * WORD_BITS);
        wi += LANES;
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    while wi < n {
        total += weighted_bits(words[wi], weights, wi * WORD_BITS);
        wi += 1;
    }
    total
}

/// Like [`weighted_sum_words`] but stops at the first running total that
/// reaches `cap` (exact below it). The per-bit early exit is what makes
/// covered-region probes O(τ) instead of O(words).
pub(crate) fn weighted_sum_words_capped(words: &[u64], weights: &[u64], cap: u64) -> u64 {
    if cap == 0 {
        return 0;
    }
    let mut total = 0u64;
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            total = total.saturating_add(weights[wi * WORD_BITS + bit]);
            if total >= cap {
                return total;
            }
            w &= w - 1;
        }
    }
    total
}

/// AND of `slices` at word group `wi..wi+4` (all slices at least `wi+4`
/// words long; `first` provides the seed lanes).
#[inline]
fn and_lanes(first: &[u64], rest: &[&[u64]], wi: usize) -> [u64; LANES] {
    let mut lanes = [first[wi], first[wi + 1], first[wi + 2], first[wi + 3]];
    for s in rest {
        lanes[0] &= s[wi];
        lanes[1] &= s[wi + 1];
        lanes[2] &= s[wi + 2];
        lanes[3] &= s[wi + 3];
    }
    lanes
}

/// Weighted popcount of the intersection of several equally-long word
/// slices without materializing it. An empty `slices` denotes the universe.
pub(crate) fn intersect_weighted_sum(slices: &[&[u64]], weights: &[u64]) -> u64 {
    let Some((first, rest)) = slices.split_first() else {
        return weights.iter().sum();
    };
    let n = first.len();
    let mut acc = [0u64; LANES];
    let mut wi = 0;
    while wi + LANES <= n {
        let lanes = and_lanes(first, rest, wi);
        acc[0] += weighted_bits(lanes[0], weights, wi * WORD_BITS);
        acc[1] += weighted_bits(lanes[1], weights, (wi + 1) * WORD_BITS);
        acc[2] += weighted_bits(lanes[2], weights, (wi + 2) * WORD_BITS);
        acc[3] += weighted_bits(lanes[3], weights, (wi + 3) * WORD_BITS);
        wi += LANES;
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    while wi < n {
        let mut word = first[wi];
        for s in rest {
            word &= s[wi];
        }
        total += weighted_bits(word, weights, wi * WORD_BITS);
        wi += 1;
    }
    total
}

/// Capped variant of [`intersect_weighted_sum`]: exact below `cap`, returns
/// the first running total reaching `cap` otherwise. Unrolling would defeat
/// the per-bit early exit, so this stays a scalar word loop on purpose.
pub(crate) fn intersect_weighted_capped(slices: &[&[u64]], weights: &[u64], cap: u64) -> u64 {
    if cap == 0 {
        return 0;
    }
    let Some((first, rest)) = slices.split_first() else {
        let mut total = 0u64;
        for &w in weights {
            total = total.saturating_add(w);
            if total >= cap {
                return total;
            }
        }
        return total;
    };
    let mut total = 0u64;
    for wi in 0..first.len() {
        let mut word = first[wi];
        for s in rest {
            if word == 0 {
                break;
            }
            word &= s[wi];
        }
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            total = total.saturating_add(weights[wi * WORD_BITS + bit]);
            if total >= cap {
                return total;
            }
            word &= word - 1;
        }
    }
    total
}

/// Whether the intersection of several equally-long word slices has any set
/// bit, 4 words per iteration with a group-level early exit (Appendix B's
/// early-stop strategy). An empty `slices` returns `false` — callers
/// special-case the all-`X` pattern themselves.
pub(crate) fn intersect_any(slices: &[&[u64]]) -> bool {
    let Some((first, rest)) = slices.split_first() else {
        return false;
    };
    let n = first.len();
    let mut wi = 0;
    while wi + LANES <= n {
        let lanes = and_lanes(first, rest, wi);
        if lanes[0] | lanes[1] | lanes[2] | lanes[3] != 0 {
            return true;
        }
        wi += LANES;
    }
    while wi < n {
        let mut word = first[wi];
        for s in rest {
            word &= s[wi];
        }
        if word != 0 {
            return true;
        }
        wi += 1;
    }
    false
}

/// A short description of the intersection-kernel code paths available on
/// the running host (surfaced through the `stats` op). The kernels are
/// branch-free safe Rust, so this is diagnostic only: `u64::count_ones`
/// lowers to hardware popcount whenever the compile target enables it.
pub fn kernel_features() -> &'static str {
    #[cfg(all(target_arch = "x86_64", target_feature = "popcnt"))]
    {
        "x86_64+popcnt (compile-time)"
    }
    #[cfg(all(target_arch = "x86_64", not(target_feature = "popcnt")))]
    {
        if std::arch::is_x86_feature_detected!("popcnt") {
            "x86_64 (popcnt available at runtime; rebuild with -C target-cpu=native to use it)"
        } else {
            "x86_64 (software popcount)"
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        "aarch64+cnt"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "portable"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_weighted(slices: &[&[u64]], weights: &[u64]) -> u64 {
        let Some((first, rest)) = slices.split_first() else {
            return weights.iter().sum();
        };
        let mut total = 0;
        for wi in 0..first.len() {
            let mut word = first[wi];
            for s in rest {
                word &= s[wi];
            }
            for bit in 0..64 {
                if word >> bit & 1 == 1 {
                    total += weights[wi * 64 + bit];
                }
            }
        }
        total
    }

    fn words(seed: u64, n: usize) -> Vec<u64> {
        // Splitmix64: deterministic pseudo-random words, no RNG dependency.
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn unrolled_kernels_match_the_reference_across_tail_lengths() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 11, 16, 17] {
            let a = words(1, n);
            let b = words(2, n);
            let c = words(3, n);
            let weights: Vec<u64> = (0..n * 64).map(|i| (i % 7 + 1) as u64).collect();
            for slices in [
                vec![a.as_slice()],
                vec![a.as_slice(), b.as_slice()],
                vec![a.as_slice(), b.as_slice(), c.as_slice()],
            ] {
                let expected = reference_weighted(&slices, &weights);
                assert_eq!(intersect_weighted_sum(&slices, &weights), expected, "n={n}");
                assert_eq!(
                    intersect_weighted_capped(&slices, &weights, u64::MAX),
                    expected
                );
                assert_eq!(intersect_any(&slices), expected != 0, "n={n}");
                let capped = intersect_weighted_capped(&slices, &weights, 5);
                if expected >= 5 {
                    assert!(capped >= 5);
                } else {
                    assert_eq!(capped, expected);
                }
            }
        }
    }

    #[test]
    fn popcount_and_and_into_cover_the_scalar_tail() {
        for n in [0usize, 1, 4, 5, 9, 1024] {
            let a = words(7, n);
            let b = words(8, n);
            let expected: u64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| u64::from((x & y).count_ones()))
                .sum();
            let mut dst = a.clone();
            and_into(&mut dst, &b);
            assert_eq!(popcount_words(&dst), expected, "n={n}");
        }
    }

    #[test]
    fn weighted_sum_words_matches_single_slice_intersection() {
        let a = words(9, 17);
        let weights: Vec<u64> = (0..17 * 64).map(|i| (i % 5) as u64).collect();
        assert_eq!(
            weighted_sum_words(&a, &weights),
            intersect_weighted_sum(&[&a], &weights)
        );
        assert_eq!(
            weighted_sum_words_capped(&a, &weights, u64::MAX),
            weighted_sum_words(&a, &weights)
        );
        assert_eq!(weighted_sum_words_capped(&a, &weights, 0), 0);
    }

    #[test]
    fn kernel_features_reports_something() {
        assert!(!kernel_features().is_empty());
    }
}
