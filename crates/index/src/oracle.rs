//! The coverage oracle of Appendix A.
//!
//! The dataset is aggregated into unique value combinations with
//! multiplicities; one bit-vector per `(attribute, value)` pair marks the
//! combinations carrying that value. `cov(P)` is then the weighted popcount
//! of the AND of the vectors selected by `P`'s deterministic elements —
//! never a scan over the raw rows.

use coverage_data::{Dataset, UniqueCombinations};

use crate::bitvec::{intersection_weighted_sum, BitVec};

/// Sentinel code for a non-deterministic (`X`) pattern element.
///
/// Shared contract with the pattern layer: a pattern over `d` attributes is a
/// `&[u8]` of length `d` where each element is either a value code or `X`.
pub const X: u8 = 0xFF;

/// Inverted-index coverage oracle (`cov` in the paper).
#[derive(Debug, Clone)]
pub struct CoverageOracle {
    /// `index[i][v]` = bit-vector of unique combinations with value `v` on
    /// attribute `i`. Outer index laid out as a prefix-offset table.
    vectors: Vec<BitVec>,
    offsets: Vec<usize>,
    cardinalities: Vec<u8>,
    combos: UniqueCombinations,
}

impl CoverageOracle {
    /// Builds the oracle directly from a dataset (aggregating internally).
    pub fn from_dataset(dataset: &Dataset) -> Self {
        Self::from_unique(UniqueCombinations::from_dataset(dataset))
    }

    /// Builds the oracle from pre-aggregated unique combinations.
    pub fn from_unique(combos: UniqueCombinations) -> Self {
        let cards = combos.cardinalities().to_vec();
        let mut offsets = Vec::with_capacity(cards.len() + 1);
        let mut acc = 0usize;
        for &c in &cards {
            offsets.push(acc);
            acc += c as usize;
        }
        offsets.push(acc);
        let mut vectors = vec![BitVec::zeros(combos.len()); acc];
        for (k, (combo, _)) in combos.iter().enumerate() {
            for (i, &v) in combo.iter().enumerate() {
                vectors[offsets[i] + v as usize].set(k, true);
            }
        }
        Self {
            vectors,
            offsets,
            cardinalities: cards,
            combos,
        }
    }

    /// Incrementally ingests one row (streamed inserts): the aggregation
    /// gains a count — or a brand-new combination, in which case every
    /// bit-vector grows by one bit. The result is identical to rebuilding
    /// with [`Self::from_dataset`] on the extended dataset. Returns the
    /// row's combination index.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or a value code out of range.
    pub fn add_row(&mut self, row: &[u8]) -> usize {
        assert_eq!(row.len(), self.arity(), "row arity mismatch");
        for (i, &v) in row.iter().enumerate() {
            assert!(
                v < self.cardinalities[i],
                "value {v} out of range for attribute {i}"
            );
        }
        let (k, is_new) = self.combos.add_row(row);
        if is_new {
            for (i, &v) in row.iter().enumerate() {
                for value in 0..self.cardinalities[i] {
                    self.vectors[self.offsets[i] + value as usize].push(value == v);
                }
            }
        }
        k
    }

    /// Incrementally forgets one row (streamed deletes): the aggregation
    /// loses a count — and when a combination's multiplicity hits zero every
    /// bit-vector shrinks by one bit in place (the last combination's bit
    /// moves into the vacated slot, mirroring the aggregation's swap-remove).
    /// Coverage answers are identical to rebuilding from the shrunk dataset.
    /// Returns whether a matching row was registered (and removed).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or a value code out of range.
    pub fn remove_row(&mut self, row: &[u8]) -> bool {
        assert_eq!(row.len(), self.arity(), "row arity mismatch");
        for (i, &v) in row.iter().enumerate() {
            assert!(
                v < self.cardinalities[i],
                "value {v} out of range for attribute {i}"
            );
        }
        match self.combos.remove_row(row) {
            None => false,
            Some((_, false)) => true, // multiplicity decremented, index intact
            Some((k, true)) => {
                for vector in &mut self.vectors {
                    vector.swap_remove(k);
                }
                true
            }
        }
    }

    /// Grows attribute `attribute`'s value dictionary by one (the schema
    /// registered a new value), returning the new value's code. One all-zero
    /// bit-vector is appended to the attribute's value list — the new value
    /// matches no existing combination — and later offsets shift by one.
    /// Coverage answers for existing patterns are unchanged; patterns
    /// carrying the new code answer 0 until rows arrive.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range attribute position or when the cardinality
    /// is already at the encoding ceiling.
    pub fn grow_value(&mut self, attribute: usize) -> u8 {
        assert!(
            attribute < self.cardinalities.len(),
            "attribute {attribute} out of range"
        );
        let code = self.cardinalities[attribute];
        assert!(code < u8::MAX - 1, "cardinality ceiling reached");
        self.vectors.insert(
            self.offsets[attribute] + code as usize,
            BitVec::zeros(self.combos.len()),
        );
        for offset in &mut self.offsets[attribute + 1..] {
            *offset += 1;
        }
        self.cardinalities[attribute] = code + 1;
        self.combos.grow_value(attribute);
        code
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.cardinalities.len()
    }

    /// Attribute cardinalities.
    pub fn cardinalities(&self) -> &[u8] {
        &self.cardinalities
    }

    /// Total number of rows in the underlying dataset (`cov(XX..X)`).
    pub fn total(&self) -> u64 {
        self.combos.total()
    }

    /// The underlying unique-combination aggregation.
    pub fn combinations(&self) -> &UniqueCombinations {
        &self.combos
    }

    /// The inverted-index bit-vector for `(attribute, value)`.
    ///
    /// # Panics
    ///
    /// Panics when `value >= cardinality(attribute)`.
    pub fn vector(&self, attribute: usize, value: u8) -> &BitVec {
        assert!(
            value < self.cardinalities[attribute],
            "value {value} out of range for attribute {attribute}"
        );
        &self.vectors[self.offsets[attribute] + value as usize]
    }

    /// `cov(P, D)`: the number of rows matching the pattern, where `codes`
    /// uses [`X`] for non-deterministic elements.
    ///
    /// # Panics
    ///
    /// Panics when `codes.len() != arity()` or a deterministic code is out of
    /// range.
    pub fn coverage(&self, codes: &[u8]) -> u64 {
        assert_eq!(codes.len(), self.arity(), "pattern arity mismatch");
        let mut selected: Vec<&BitVec> = Vec::with_capacity(codes.len());
        for (i, &v) in codes.iter().enumerate() {
            if v != X {
                selected.push(self.vector(i, v));
            }
        }
        intersection_weighted_sum(&selected, self.combos.counts())
    }

    /// Whether `cov(P) ≥ tau`, with early exit as soon as the running count
    /// reaches the threshold — much cheaper than [`Self::coverage`] in
    /// covered regions, where most traversal decisions are made.
    pub fn covered(&self, codes: &[u8], tau: u64) -> bool {
        self.coverage_capped(codes, tau) >= tau
    }

    /// `cov(P)` computed only up to `cap`: the exact count when it is below
    /// `cap`, otherwise the first running count that reached `cap` (same
    /// early exit as [`Self::covered`]). A sharded backend sums these across
    /// its shards, keeping the early exit within each shard while the
    /// cross-shard total stays exact until the threshold is met.
    pub fn coverage_capped(&self, codes: &[u8], cap: u64) -> u64 {
        assert_eq!(codes.len(), self.arity(), "pattern arity mismatch");
        let mut selected: Vec<&BitVec> = Vec::with_capacity(codes.len());
        for (i, &v) in codes.iter().enumerate() {
            if v != X {
                selected.push(self.vector(i, v));
            }
        }
        crate::bitvec::intersection_weight_capped(&selected, self.combos.counts(), cap)
    }

    /// Logical index bytes: every `(attribute, value)` vector stores one bit
    /// per unique combination, packed into words — the dense memory model
    /// the compressed backend exists to beat.
    pub fn memory_bytes(&self) -> u64 {
        self.vectors
            .iter()
            .map(|v| 8 * v.words().len() as u64)
            .sum()
    }

    /// Materializes the match bit-vector of a pattern over the unique
    /// combinations (used by callers that post-process matches).
    pub fn match_vector(&self, codes: &[u8]) -> BitVec {
        assert_eq!(codes.len(), self.arity(), "pattern arity mismatch");
        let mut result = BitVec::ones(self.combos.len());
        for (i, &v) in codes.iter().enumerate() {
            if v != X {
                result.and_assign(self.vector(i, v));
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::Schema;

    /// Example 1 of the paper (also Appendix A's worked bit-vectors).
    fn example1() -> Dataset {
        Dataset::from_rows(
            Schema::binary(3).unwrap(),
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap()
    }

    #[test]
    fn appendix_a_worked_example() {
        let oracle = CoverageOracle::from_dataset(&example1());
        // cov(0X1) = 3 (tuples 001 ×2 and 011).
        assert_eq!(oracle.coverage(&[0, X, 1]), 3);
        // cov(XXX) = 5, cov(1XX) = 0 (the MUP), cov(X1X) = 2.
        assert_eq!(oracle.coverage(&[X, X, X]), 5);
        assert_eq!(oracle.coverage(&[1, X, X]), 0);
        assert_eq!(oracle.coverage(&[X, 1, X]), 2);
        assert_eq!(oracle.coverage(&[0, 0, 1]), 2);
    }

    #[test]
    fn coverage_agrees_with_brute_force() {
        let ds = coverage_data::generators::airbnb_like(2_000, 6, 11).unwrap();
        let oracle = CoverageOracle::from_dataset(&ds);
        let patterns: Vec<Vec<u8>> = vec![
            vec![X; 6],
            vec![1, X, X, X, X, X],
            vec![X, 0, X, 1, X, X],
            vec![1, 1, 0, X, X, 0],
            vec![0, 0, 0, 0, 0, 0],
        ];
        for p in patterns {
            let expected = ds
                .count_where(|row, _| row.iter().zip(&p).all(|(&r, &pv)| pv == X || pv == r))
                as u64;
            assert_eq!(oracle.coverage(&p), expected, "pattern {p:?}");
        }
    }

    #[test]
    fn match_vector_selects_unique_combos() {
        let oracle = CoverageOracle::from_dataset(&example1());
        let mv = oracle.match_vector(&[X, 0, X]);
        // Unique combos in first-seen order: 010, 001, 000, 011.
        assert_eq!(mv.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn total_equals_row_count() {
        let oracle = CoverageOracle::from_dataset(&example1());
        assert_eq!(oracle.total(), 5);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        CoverageOracle::from_dataset(&example1()).coverage(&[X, X]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_value_panics() {
        CoverageOracle::from_dataset(&example1()).coverage(&[7, X, X]);
    }

    #[test]
    fn add_row_matches_from_dataset_rebuild() {
        // Stream the second half of a generated dataset into an oracle built
        // from the first half; coverage must equal a from-scratch rebuild on
        // the full dataset for every probe pattern.
        let ds = coverage_data::generators::airbnb_like(600, 5, 23).unwrap();
        let half = ds.head(300);
        let mut streaming = CoverageOracle::from_dataset(&half);
        for i in 300..ds.len() {
            streaming.add_row(ds.row(i));
        }
        let rebuilt = CoverageOracle::from_dataset(&ds);
        assert_eq!(streaming.total(), rebuilt.total());
        assert_eq!(streaming.combinations().len(), rebuilt.combinations().len());
        let patterns: Vec<Vec<u8>> = vec![
            vec![X; 5],
            vec![1, X, X, X, X],
            vec![X, 0, X, 1, X],
            vec![1, 1, 0, X, 0],
            vec![0, 0, 0, 0, 0],
            vec![X, X, X, X, 1],
        ];
        for p in &patterns {
            assert_eq!(streaming.coverage(p), rebuilt.coverage(p), "pattern {p:?}");
            for tau in [1u64, 5, 50, 500] {
                assert_eq!(streaming.covered(p, tau), rebuilt.covered(p, tau));
            }
        }
    }

    #[test]
    fn remove_row_matches_from_dataset_rebuild() {
        // Delete a prefix of a generated dataset from a full oracle; coverage
        // must equal a from-scratch rebuild on the suffix for every probe.
        let ds = coverage_data::generators::airbnb_like(600, 5, 23).unwrap();
        let mut shrinking = CoverageOracle::from_dataset(&ds);
        for i in 0..300 {
            assert!(shrinking.remove_row(ds.row(i)), "row {i} must be present");
        }
        let suffix: Vec<Vec<u8>> = (300..ds.len()).map(|i| ds.row(i).to_vec()).collect();
        let rebuilt = CoverageOracle::from_dataset(
            &Dataset::from_rows(ds.schema().clone(), &suffix).unwrap(),
        );
        assert_eq!(shrinking.total(), rebuilt.total());
        assert_eq!(shrinking.combinations().len(), rebuilt.combinations().len());
        let patterns: Vec<Vec<u8>> = vec![
            vec![X; 5],
            vec![1, X, X, X, X],
            vec![X, 0, X, 1, X],
            vec![1, 1, 0, X, 0],
            vec![0, 0, 0, 0, 0],
            vec![X, X, X, X, 1],
        ];
        for p in &patterns {
            assert_eq!(shrinking.coverage(p), rebuilt.coverage(p), "pattern {p:?}");
            for tau in [1u64, 5, 50, 500] {
                assert_eq!(shrinking.covered(p, tau), rebuilt.covered(p, tau));
            }
        }
    }

    #[test]
    fn remove_row_reports_absence_and_handles_exhaustion() {
        let mut oracle = CoverageOracle::from_dataset(&example1());
        assert!(!oracle.remove_row(&[1, 1, 1]), "row was never present");
        assert_eq!(oracle.total(), 5);
        // (0,1,0) is present exactly once: removing it shrinks the index.
        assert!(oracle.remove_row(&[0, 1, 0]));
        assert!(!oracle.remove_row(&[0, 1, 0]));
        assert_eq!(oracle.total(), 4);
        assert_eq!(oracle.coverage(&[X, 1, X]), 1);
        assert_eq!(oracle.coverage(&[X, X, 0]), 1);
        // Remove everything, then stream rows back in.
        for row in [[0u8, 0, 1], [0, 0, 0], [0, 1, 1], [0, 0, 1]] {
            assert!(oracle.remove_row(&row));
        }
        assert_eq!(oracle.total(), 0);
        assert_eq!(oracle.coverage(&[X, X, X]), 0);
        oracle.add_row(&[1, 0, 1]);
        assert_eq!(oracle.coverage(&[1, X, 1]), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn remove_row_rejects_out_of_range_values() {
        CoverageOracle::from_dataset(&example1()).remove_row(&[0, 0, 7]);
    }

    #[test]
    fn add_row_into_empty_oracle() {
        let mut oracle = CoverageOracle::from_dataset(&Dataset::new(Schema::binary(2).unwrap()));
        assert_eq!(oracle.coverage(&[X, X]), 0);
        oracle.add_row(&[0, 1]);
        oracle.add_row(&[0, 1]);
        oracle.add_row(&[1, 0]);
        assert_eq!(oracle.total(), 3);
        assert_eq!(oracle.coverage(&[X, X]), 3);
        assert_eq!(oracle.coverage(&[0, 1]), 2);
        assert_eq!(oracle.coverage(&[1, X]), 1);
        assert_eq!(oracle.coverage(&[1, 1]), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_row_rejects_out_of_range_values() {
        CoverageOracle::from_dataset(&example1()).add_row(&[0, 0, 7]);
    }

    #[test]
    fn grow_value_matches_from_dataset_rebuild() {
        // Grow attribute 1 of Example 1, stream in rows carrying the new
        // value, and compare every probe against a from-scratch rebuild over
        // the equivalent grown dataset.
        let mut grown = CoverageOracle::from_dataset(&example1());
        assert_eq!(grown.grow_value(1), 2);
        assert_eq!(grown.cardinalities(), &[2, 3, 2]);
        // Existing answers are untouched; the new value covers nothing yet.
        assert_eq!(grown.coverage(&[X, X, X]), 5);
        assert_eq!(grown.coverage(&[X, 2, X]), 0);
        grown.add_row(&[1, 2, 0]);
        grown.add_row(&[0, 2, 0]);

        let mut ds = Dataset::new(Schema::with_cardinalities(&[2, 3, 2]).unwrap());
        for row in example1().rows() {
            ds.push_row(row).unwrap();
        }
        ds.push_row(&[1, 2, 0]).unwrap();
        ds.push_row(&[0, 2, 0]).unwrap();
        let rebuilt = CoverageOracle::from_dataset(&ds);
        assert_eq!(grown.total(), rebuilt.total());
        let patterns: Vec<Vec<u8>> = vec![
            vec![X, X, X],
            vec![X, 2, X],
            vec![1, 2, X],
            vec![X, 2, 0],
            vec![0, 1, X],
            vec![1, X, X],
            vec![0, 2, 1],
        ];
        for p in &patterns {
            assert_eq!(grown.coverage(p), rebuilt.coverage(p), "pattern {p:?}");
            for tau in [1u64, 2, 5] {
                assert_eq!(
                    grown.covered(p, tau),
                    rebuilt.covered(p, tau),
                    "{p:?} τ={tau}"
                );
            }
        }
    }

    #[test]
    fn grow_value_on_every_attribute_keeps_offsets_consistent() {
        let mut oracle = CoverageOracle::from_dataset(&example1());
        for i in 0..3 {
            oracle.grow_value(i);
        }
        assert_eq!(oracle.cardinalities(), &[3, 3, 3]);
        for i in 0..3 {
            let mut p = vec![X; 3];
            p[i] = 2;
            assert_eq!(oracle.coverage(&p), 0, "new value on attribute {i}");
        }
        assert_eq!(oracle.coverage(&[0, 1, 0]), 1);
        oracle.add_row(&[2, 2, 2]);
        assert_eq!(oracle.coverage(&[2, X, X]), 1);
        assert_eq!(oracle.coverage(&[2, 2, 2]), 1);
        assert_eq!(oracle.total(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grow_value_rejects_bad_attribute() {
        CoverageOracle::from_dataset(&example1()).grow_value(9);
    }

    #[test]
    fn coverage_capped_is_exact_below_the_cap() {
        let oracle = CoverageOracle::from_dataset(&example1());
        // cov(0XX) = 5: exact below the cap, ≥ cap once it is reached.
        assert_eq!(oracle.coverage_capped(&[0, X, X], 100), 5);
        assert_eq!(oracle.coverage_capped(&[0, X, X], 6), 5);
        assert!(oracle.coverage_capped(&[0, X, X], 3) >= 3);
        assert_eq!(oracle.coverage_capped(&[1, X, X], 3), 0);
        assert_eq!(oracle.coverage_capped(&[0, X, X], 0), 0);
    }

    #[test]
    fn empty_dataset_has_zero_coverage() {
        let ds = Dataset::new(Schema::binary(2).unwrap());
        let oracle = CoverageOracle::from_dataset(&ds);
        assert_eq!(oracle.coverage(&[X, X]), 0);
        assert_eq!(oracle.coverage(&[1, 0]), 0);
    }
}
