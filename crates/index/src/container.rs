//! Roaring-style containers: the storage unit of the compressed backend.
//!
//! A posting list over combination indices is split into chunks of 2^16
//! consecutive indices; each chunk holds its low 16 bits in whichever
//! [`Container`] representation is smallest — a sorted `u16` array (≤ 4096
//! elements, 2 bytes each), a dense 1024-word bitmap (8 KiB flat), or
//! run-length ranges (4 bytes per run) — converting adaptively as elements
//! arrive and leave. Answers never depend on the representation; only the
//! bytes do.
//!
//! This file is on the `mithra-lint` panic-freedom hot list: probe and
//! mutation paths must not contain `unwrap`/`expect`/`panic!`.

use crate::kernels;

/// Elements per chunk: each container covers 2^16 consecutive indices.
pub const CHUNK_SIZE: usize = 1 << 16;

/// Words in a dense bitmap container (`CHUNK_SIZE / 64`).
pub const BITMAP_WORDS: usize = CHUNK_SIZE / 64;

/// Maximum sorted-array cardinality: past this a bitmap (8 KiB) is smaller
/// than the array (2 bytes per element), the classic Roaring threshold.
pub const ARRAY_MAX: usize = 4096;

/// One chunk of a compressed posting list: the set of low-16-bit indices
/// present, stored as whichever representation is smallest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Container {
    /// Sorted, deduplicated element array (≤ [`ARRAY_MAX`] entries).
    Array(Vec<u16>),
    /// Dense bitmap over the full chunk with a cached cardinality.
    Bitmap {
        /// [`BITMAP_WORDS`] storage words, low bit of word 0 = element 0.
        words: Box<[u64]>,
        /// Number of set bits (maintained incrementally).
        len: u32,
    },
    /// Sorted, non-overlapping, non-adjacent inclusive `[start, end]` runs.
    Runs(Vec<(u16, u16)>),
}

impl Default for Container {
    fn default() -> Self {
        Container::Array(Vec::new())
    }
}

impl Container {
    /// Number of elements present.
    pub fn cardinality(&self) -> usize {
        match self {
            Container::Array(a) => a.len(),
            Container::Bitmap { len, .. } => *len as usize,
            Container::Runs(runs) => runs
                .iter()
                .map(|&(s, e)| usize::from(e) - usize::from(s) + 1)
                .sum(),
        }
    }

    /// Whether no element is present.
    pub fn is_empty(&self) -> bool {
        match self {
            Container::Array(a) => a.is_empty(),
            Container::Bitmap { len, .. } => *len == 0,
            Container::Runs(runs) => runs.is_empty(),
        }
    }

    /// Logical storage bytes of the representation (what the `stats` op
    /// reports): 2 per array element, 8 KiB per bitmap, 4 per run.
    pub fn bytes(&self) -> u64 {
        match self {
            Container::Array(a) => 2 * a.len() as u64,
            Container::Bitmap { .. } => 8 * BITMAP_WORDS as u64,
            Container::Runs(runs) => 4 * runs.len() as u64,
        }
    }

    /// Whether element `k` is present. Arrays and runs binary-search
    /// (galloping against a sorted probe sequence), bitmaps test one word.
    pub fn contains(&self, k: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&k).is_ok(),
            Container::Bitmap { words, .. } => {
                words[usize::from(k) / 64] >> (usize::from(k) % 64) & 1 == 1
            }
            Container::Runs(runs) => {
                let at = runs.partition_point(|&(s, _)| s <= k);
                at > 0 && runs[at - 1].1 >= k
            }
        }
    }

    /// Adds element `k`, returning whether it was newly inserted, and
    /// converts the representation when the mutation crosses a size
    /// boundary (array overflow → bitmap or runs, whichever is smaller;
    /// chunk saturation → a single full run).
    pub fn insert(&mut self, k: u16) -> bool {
        let inserted = match self {
            Container::Array(a) => {
                // Ascending build streams append; binary-search otherwise.
                if a.last().is_none_or(|&last| last < k) {
                    if a.len() == ARRAY_MAX {
                        *self = spill_array(a, k);
                        return true;
                    }
                    a.push(k);
                    true
                } else {
                    match a.binary_search(&k) {
                        Ok(_) => false,
                        Err(pos) => {
                            if a.len() == ARRAY_MAX {
                                *self = spill_array(a, k);
                                return true;
                            }
                            a.insert(pos, k);
                            true
                        }
                    }
                }
            }
            Container::Bitmap { words, len } => {
                let (wi, mask) = (usize::from(k) / 64, 1u64 << (usize::from(k) % 64));
                if words[wi] & mask == 0 {
                    words[wi] |= mask;
                    *len += 1;
                    true
                } else {
                    false
                }
            }
            Container::Runs(runs) => insert_into_runs(runs, k),
        };
        if inserted {
            self.settle();
        }
        inserted
    }

    /// Removes element `k`, returning whether it was present, and converts
    /// the representation when the mutation crosses a size boundary
    /// (bitmap shrinking to ≤ [`ARRAY_MAX`] → array, fragmented runs →
    /// whatever is smaller).
    pub fn remove(&mut self, k: u16) -> bool {
        let removed = match self {
            Container::Array(a) => match a.binary_search(&k) {
                Ok(pos) => {
                    a.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap { words, len } => {
                let (wi, mask) = (usize::from(k) / 64, 1u64 << (usize::from(k) % 64));
                if words[wi] & mask != 0 {
                    words[wi] &= !mask;
                    *len -= 1;
                    true
                } else {
                    false
                }
            }
            Container::Runs(runs) => remove_from_runs(runs, k),
        };
        if removed {
            self.settle();
        }
        removed
    }

    /// Converts to the smallest representation when the current one has
    /// drifted past a boundary. Idempotent; cheap when nothing changes.
    fn settle(&mut self) {
        match self {
            Container::Array(_) => {} // insert/remove keep arrays ≤ ARRAY_MAX
            Container::Bitmap { words, len } => {
                if *len as usize <= ARRAY_MAX {
                    let mut a = Vec::with_capacity(*len as usize);
                    for (wi, &word) in words.iter().enumerate() {
                        let mut w = word;
                        while w != 0 {
                            let bit = w.trailing_zeros() as usize;
                            a.push((wi * 64 + bit) as u16);
                            w &= w - 1;
                        }
                    }
                    *self = Container::Array(a);
                } else if *len as usize == CHUNK_SIZE {
                    *self = Container::Runs(vec![(0, (CHUNK_SIZE - 1) as u16)]);
                }
            }
            Container::Runs(runs) => {
                let card: usize = runs
                    .iter()
                    .map(|&(s, e)| usize::from(e) - usize::from(s) + 1)
                    .sum();
                let run_bytes = 4 * runs.len();
                if card <= ARRAY_MAX && 2 * card < run_bytes {
                    let mut a = Vec::with_capacity(card);
                    for &(s, e) in runs.iter() {
                        a.extend(s..=e);
                    }
                    *self = Container::Array(a);
                } else if run_bytes > 8 * BITMAP_WORDS {
                    let mut words = vec![0u64; BITMAP_WORDS].into_boxed_slice();
                    for &(s, e) in runs.iter() {
                        for k in s..=e {
                            words[usize::from(k) / 64] |= 1u64 << (usize::from(k) % 64);
                        }
                    }
                    *self = Container::Bitmap {
                        words,
                        len: card as u32,
                    };
                }
            }
        }
    }

    /// The dense storage words when this container is a bitmap.
    pub fn as_bitmap_words(&self) -> Option<&[u64]> {
        match self {
            Container::Bitmap { words, .. } => Some(words),
            _ => None,
        }
    }

    /// Visits every element ascending while `f` returns `true`; returns
    /// whether the traversal ran to completion.
    pub fn for_each_while(&self, mut f: impl FnMut(u16) -> bool) -> bool {
        match self {
            Container::Array(a) => a.iter().all(|&k| f(k)),
            Container::Bitmap { words, .. } => {
                for (wi, &word) in words.iter().enumerate() {
                    let mut w = word;
                    while w != 0 {
                        let bit = w.trailing_zeros() as usize;
                        if !f((wi * 64 + bit) as u16) {
                            return false;
                        }
                        w &= w - 1;
                    }
                }
                true
            }
            Container::Runs(runs) => runs.iter().all(|&(s, e)| (s..=e).all(&mut f)),
        }
    }
}

/// An [`ARRAY_MAX`]-full array gaining one more element: convert to runs
/// when the data is run-compressible (fewer than 2048 runs — under the
/// 8 KiB bitmap), a bitmap otherwise.
fn spill_array(a: &[u16], extra: u16) -> Container {
    // One pass over the sorted array counts runs of the would-be merged set.
    let mut runs = 0usize;
    let mut prev: Option<u16> = None;
    let mut pending = Some(extra);
    let push = |k: u16, runs: &mut usize, prev: &mut Option<u16>| {
        if prev.is_none_or(|p| k > p.saturating_add(1)) {
            *runs += 1;
        }
        *prev = Some(k);
    };
    for &k in a {
        if pending.is_some_and(|e| e < k) {
            // `extra` slots in before `k` (it is not already present —
            // insert() only spills on a miss).
            if let Some(e) = pending.take() {
                push(e, &mut runs, &mut prev);
            }
        }
        push(k, &mut runs, &mut prev);
    }
    if let Some(e) = pending {
        push(e, &mut runs, &mut prev);
    }
    if 4 * runs < 8 * BITMAP_WORDS && 4 * runs < 2 * (a.len() + 1) {
        let mut out: Vec<(u16, u16)> = Vec::with_capacity(runs);
        let feed = |k: u16, out: &mut Vec<(u16, u16)>| match out.last_mut() {
            Some(last) if u32::from(last.1) + 1 == u32::from(k) => last.1 = k,
            _ => out.push((k, k)),
        };
        let mut pending = Some(extra);
        for &k in a {
            if pending.is_some_and(|e| e < k) {
                if let Some(e) = pending.take() {
                    feed(e, &mut out);
                }
            }
            feed(k, &mut out);
        }
        if let Some(e) = pending {
            feed(e, &mut out);
        }
        Container::Runs(out)
    } else {
        let mut words = vec![0u64; BITMAP_WORDS].into_boxed_slice();
        for &k in a {
            words[usize::from(k) / 64] |= 1u64 << (usize::from(k) % 64);
        }
        words[usize::from(extra) / 64] |= 1u64 << (usize::from(extra) % 64);
        Container::Bitmap {
            words,
            len: (a.len() + 1) as u32,
        }
    }
}

/// Adds `k` to a sorted run list, merging with adjacent runs.
fn insert_into_runs(runs: &mut Vec<(u16, u16)>, k: u16) -> bool {
    let at = runs.partition_point(|&(s, _)| s <= k);
    if at > 0 && runs[at - 1].1 >= k {
        return false; // already inside the previous run
    }
    let touches_prev = at > 0 && u32::from(runs[at - 1].1) + 1 == u32::from(k);
    let touches_next = at < runs.len() && u32::from(k) + 1 == u32::from(runs[at].0);
    match (touches_prev, touches_next) {
        (true, true) => {
            runs[at - 1].1 = runs[at].1;
            runs.remove(at);
        }
        (true, false) => runs[at - 1].1 = k,
        (false, true) => runs[at].0 = k,
        (false, false) => runs.insert(at, (k, k)),
    }
    true
}

/// Removes `k` from a sorted run list, splitting the containing run.
fn remove_from_runs(runs: &mut Vec<(u16, u16)>, k: u16) -> bool {
    let at = runs.partition_point(|&(s, _)| s <= k);
    if at == 0 || runs[at - 1].1 < k {
        return false;
    }
    let (s, e) = runs[at - 1];
    match (s == k, e == k) {
        (true, true) => {
            runs.remove(at - 1);
        }
        (true, false) => runs[at - 1].0 = k + 1,
        (false, true) => runs[at - 1].1 = k - 1,
        (false, false) => {
            runs[at - 1].1 = k - 1;
            runs.insert(at, (k + 1, e));
        }
    }
    true
}

/// Weighted popcount of the intersection of several containers from the
/// same chunk: Σ `weights[k]` over elements `k` present in *all* of them.
///
/// When every container is a bitmap the AND runs through the shared 4-lane
/// word kernels over `scratch`; otherwise the smallest container drives an
/// element walk with `contains` lookups in the rest (array∧bitmap galloping
/// intersection).
pub(crate) fn intersect_weighted(
    containers: &[&Container],
    weights: &[u64],
    scratch: &mut Vec<u64>,
) -> u64 {
    match containers {
        [] => 0,
        [single] => {
            let mut total = 0u64;
            single.for_each_while(|k| {
                total += weights[usize::from(k)];
                true
            });
            total
        }
        all => {
            if let Some(words) = and_bitmaps(all, scratch) {
                return kernels::weighted_sum_words(words, weights);
            }
            let (driver, rest) = split_driver(all);
            let mut total = 0u64;
            driver.for_each_while(|k| {
                if rest.iter().all(|c| c.contains(k)) {
                    total += weights[usize::from(k)];
                }
                true
            });
            total
        }
    }
}

/// Capped variant of [`intersect_weighted`]: exact below `cap`, stops at
/// the first running total reaching it.
pub(crate) fn intersect_weighted_capped(
    containers: &[&Container],
    weights: &[u64],
    cap: u64,
    scratch: &mut Vec<u64>,
) -> u64 {
    if cap == 0 {
        return 0;
    }
    match containers {
        [] => 0,
        [single] => {
            let mut total = 0u64;
            single.for_each_while(|k| {
                total = total.saturating_add(weights[usize::from(k)]);
                total < cap
            });
            total
        }
        all => {
            if let Some(words) = and_bitmaps(all, scratch) {
                return kernels::weighted_sum_words_capped(words, weights, cap);
            }
            let (driver, rest) = split_driver(all);
            let mut total = 0u64;
            driver.for_each_while(|k| {
                if rest.iter().all(|c| c.contains(k)) {
                    total = total.saturating_add(weights[usize::from(k)]);
                }
                total < cap
            });
            total
        }
    }
}

/// When every container is a bitmap: AND them all into `scratch` through
/// the 4-lane word kernels and return the result.
fn and_bitmaps<'a>(containers: &[&Container], scratch: &'a mut Vec<u64>) -> Option<&'a [u64]> {
    let mut first: Option<&[u64]> = None;
    for c in containers {
        let words = c.as_bitmap_words()?;
        match first {
            None => {
                scratch.clear();
                scratch.extend_from_slice(words);
                first = Some(words);
            }
            Some(_) => kernels::and_into(scratch, words),
        }
    }
    first.map(|_| scratch.as_slice())
}

/// Splits off the smallest-cardinality container as the iteration driver.
fn split_driver<'a>(containers: &'a [&'a Container]) -> (&'a Container, Vec<&'a Container>) {
    let mut driver = 0usize;
    for (i, c) in containers.iter().enumerate() {
        if c.cardinality() < containers[driver].cardinality() {
            driver = i;
        }
    }
    let rest: Vec<&Container> = containers
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != driver)
        .map(|(_, &c)| c)
        .collect();
    (containers[driver], rest)
}

/// A compressed posting list: sorted `(chunk key, container)` pairs over
/// combination indices, where chunk key = `index >> 16` and the container
/// holds the low 16 bits. Empty chunks are absent — a fresh list costs
/// nothing (the zero-cost `grow_value` guarantee).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct PostingList {
    chunks: Vec<(u32, Container)>,
}

impl PostingList {
    /// Adds combination index `k`.
    pub(crate) fn insert(&mut self, k: usize) {
        let (key, low) = split_index(k);
        match self.chunks.binary_search_by_key(&key, |&(c, _)| c) {
            Ok(at) => {
                self.chunks[at].1.insert(low);
            }
            Err(at) => {
                let mut container = Container::default();
                container.insert(low);
                self.chunks.insert(at, (key, container));
            }
        }
    }

    /// Removes combination index `k` (absent indices are a no-op); empty
    /// containers are dropped from the list.
    pub(crate) fn remove(&mut self, k: usize) {
        let (key, low) = split_index(k);
        if let Ok(at) = self.chunks.binary_search_by_key(&key, |&(c, _)| c) {
            self.chunks[at].1.remove(low);
            if self.chunks[at].1.is_empty() {
                self.chunks.remove(at);
            }
        }
    }

    /// Whether combination index `k` is present.
    #[cfg(test)]
    pub(crate) fn contains(&self, k: usize) -> bool {
        let (key, low) = split_index(k);
        self.chunk(key).is_some_and(|c| c.contains(low))
    }

    /// The container for `key`, if any elements live there.
    pub(crate) fn chunk(&self, key: u32) -> Option<&Container> {
        self.chunks
            .binary_search_by_key(&key, |&(c, _)| c)
            .ok()
            .map(|at| &self.chunks[at].1)
    }

    /// The `(chunk key, container)` pairs, ascending by key.
    pub(crate) fn chunks(&self) -> &[(u32, Container)] {
        &self.chunks
    }

    /// Total number of indices present.
    #[cfg(test)]
    pub(crate) fn cardinality(&self) -> usize {
        self.chunks.iter().map(|(_, c)| c.cardinality()).sum()
    }
}

/// Splits a combination index into `(chunk key, low 16 bits)`.
#[inline]
pub(crate) fn split_index(k: usize) -> (u32, u16) {
    ((k >> 16) as u32, (k & 0xFFFF) as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn elements(c: &Container) -> Vec<u16> {
        let mut out = Vec::new();
        c.for_each_while(|k| {
            out.push(k);
            true
        });
        out
    }

    #[test]
    fn array_insert_remove_stays_sorted_and_deduped() {
        let mut c = Container::default();
        for k in [5u16, 1, 9, 5, 0, 65535] {
            c.insert(k);
        }
        assert_eq!(elements(&c), vec![0, 1, 5, 9, 65535]);
        assert_eq!(c.cardinality(), 5);
        assert!(c.contains(5) && !c.contains(2));
        assert!(c.remove(5));
        assert!(!c.remove(5));
        assert_eq!(elements(&c), vec![0, 1, 9, 65535]);
    }

    #[test]
    fn array_spills_to_bitmap_past_the_threshold_and_back() {
        let mut c = Container::default();
        // 4096 scattered elements (stride 2: no long runs) stay an array.
        for k in 0..ARRAY_MAX as u16 {
            assert!(c.insert(k * 2));
        }
        assert!(matches!(c, Container::Array(_)));
        assert_eq!(c.cardinality(), ARRAY_MAX);
        // Element 4097 converts to a bitmap (runs would need 4097×4 bytes).
        assert!(c.insert(1));
        assert!(matches!(c, Container::Bitmap { .. }));
        assert_eq!(c.cardinality(), ARRAY_MAX + 1);
        assert!(c.contains(1) && c.contains(0) && c.contains(8190));
        // Dropping back to the threshold converts down to an array again.
        assert!(c.remove(1));
        assert!(matches!(c, Container::Array(_)));
        assert_eq!(c.cardinality(), ARRAY_MAX);
    }

    #[test]
    fn contiguous_array_spills_to_runs_not_bitmap() {
        let mut c = Container::default();
        for k in 0..=ARRAY_MAX as u16 {
            c.insert(k);
        }
        assert_eq!(c, Container::Runs(vec![(0, ARRAY_MAX as u16)]));
        assert_eq!(c.cardinality(), ARRAY_MAX + 1);
        assert!(c.contains(0) && c.contains(4096) && !c.contains(4097));
    }

    #[test]
    fn full_bitmap_collapses_to_a_single_run() {
        let mut c = Container::Bitmap {
            words: vec![u64::MAX; BITMAP_WORDS].into_boxed_slice(),
            len: CHUNK_SIZE as u32,
        };
        // One hole: stays a bitmap. Filling it collapses to the full run.
        c.remove(77);
        assert!(matches!(c, Container::Bitmap { .. }));
        assert!(c.insert(77));
        assert_eq!(c, Container::Runs(vec![(0, (CHUNK_SIZE - 1) as u16)]));
        assert_eq!(c.cardinality(), CHUNK_SIZE);
    }

    #[test]
    fn run_splitting_and_merging() {
        let mut c = Container::Runs(vec![(10, 20), (30, 40)]);
        assert!(!c.insert(15));
        assert!(c.insert(21)); // extend left run
        assert!(c.insert(29)); // extend right run downward
        assert!(c.insert(25)); // singleton in the gap
        assert_eq!(c, Container::Runs(vec![(10, 21), (25, 25), (29, 40)]));
        assert!(c.remove(35)); // split
        assert_eq!(
            c,
            Container::Runs(vec![(10, 21), (25, 25), (29, 34), (36, 40)])
        );
        // Bridging two runs merges them back into one.
        assert!(c.insert(35));
        assert_eq!(c, Container::Runs(vec![(10, 21), (25, 25), (29, 40)]));
        assert!(c.remove(25));
        assert_eq!(c, Container::Runs(vec![(10, 21), (29, 40)]));
    }

    #[test]
    fn fragmented_runs_settle_to_array() {
        // 8 singleton runs = 32 run-bytes vs 16 array-bytes → array wins.
        let mut c = Container::Runs((0..8).map(|i| (i * 10, i * 10)).collect());
        c.remove(0);
        assert!(matches!(c, Container::Array(_)));
        assert_eq!(c.cardinality(), 7);
    }

    #[test]
    fn randomized_container_matches_btreeset() {
        let mut c = Container::default();
        let mut model = BTreeSet::new();
        let mut state = 42u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..30_000 {
            let k = (next() % 9000) as u16;
            if next() % 3 == 0 {
                assert_eq!(c.remove(k), model.remove(&k));
            } else {
                assert_eq!(c.insert(k), model.insert(k));
            }
        }
        assert_eq!(c.cardinality(), model.len());
        assert_eq!(elements(&c), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn intersections_match_the_reference_across_representations() {
        let array = Container::Array((0..200).map(|i| i * 13).collect());
        let mut bitmap = Container::default();
        for k in 0..5000u16 {
            bitmap.insert(k * 3);
        }
        assert!(matches!(bitmap, Container::Bitmap { .. }));
        let runs = Container::Runs(vec![(0, 999), (2000, 2999)]);
        let weights: Vec<u64> = (0..CHUNK_SIZE).map(|i| (i % 11 + 1) as u64).collect();
        let mut scratch = Vec::new();
        let combos: Vec<Vec<&Container>> = vec![
            vec![&array, &bitmap],
            vec![&bitmap, &runs],
            vec![&array, &runs],
            vec![&array, &bitmap, &runs],
            vec![&bitmap, &bitmap],
        ];
        for containers in combos {
            let mut expected = 0u64;
            containers[0].for_each_while(|k| {
                if containers[1..].iter().all(|c| c.contains(k)) {
                    expected += weights[usize::from(k)];
                }
                true
            });
            assert_eq!(
                intersect_weighted(&containers, &weights, &mut scratch),
                expected
            );
            assert_eq!(
                intersect_weighted_capped(&containers, &weights, u64::MAX, &mut scratch),
                expected
            );
            let capped = intersect_weighted_capped(&containers, &weights, 7, &mut scratch);
            if expected >= 7 {
                assert!(capped >= 7);
            } else {
                assert_eq!(capped, expected);
            }
            assert_eq!(
                intersect_weighted_capped(&containers, &weights, 0, &mut scratch),
                0
            );
        }
    }

    #[test]
    fn posting_list_spans_chunk_boundaries() {
        let mut list = PostingList::default();
        for k in [0usize, 65535, 65536, 65537, 200_000] {
            list.insert(k);
        }
        assert_eq!(list.chunks().len(), 3);
        assert_eq!(list.cardinality(), 5);
        assert!(list.contains(65536) && !list.contains(65538));
        list.remove(65536);
        list.remove(65537);
        assert_eq!(list.chunks().len(), 2, "emptied chunk is dropped");
        assert!(!list.contains(65536));
        list.remove(42); // absent: no-op
        assert_eq!(list.cardinality(), 3);
    }

    #[test]
    fn container_bytes_track_the_representation() {
        let mut c = Container::default();
        c.insert(1);
        c.insert(2);
        assert_eq!(c.bytes(), 4);
        let runs = Container::Runs(vec![(0, 100)]);
        assert_eq!(runs.bytes(), 4);
        let mut big = Container::default();
        for k in 0..=ARRAY_MAX as u16 {
            big.insert(k * 2);
        }
        assert_eq!(big.bytes(), 8 * BITMAP_WORDS as u64);
    }
}
