//! Property tests: the Roaring-style [`CompressedOracle`] is
//! observationally identical to the dense [`CoverageOracle`] — on
//! `coverage`, `covered`, `coverage_capped`, `coverage_batch`, and
//! `total` — after arbitrary mixed insert/delete/grow streams, both
//! standalone and composed under [`ShardedOracle`]. Deterministic tests
//! pin the container-representation boundaries (the 4096-element
//! array↔bitmap crossing and the full-chunk run collapse), where an
//! off-by-one in a conversion would hide from random workloads.

use coverage_data::{Dataset, Schema};
use coverage_index::{
    CompressedOracle, CoverageOracle, CoverageProvider, ShardedOracle, ARRAY_MAX, CHUNK_SIZE, X,
};
use proptest::prelude::*;

/// A random workload: schema shape, base rows, a mixed op stream, and probe
/// patterns. Ops: selector 0 = delete the row (a no-op on both sides when
/// absent), selector 1 = grow the dictionary of the attribute the row's
/// first value picks, anything else = insert the row. Probes: `(row,
/// x_mask)` pairs turned into patterns by masking positions to `X`.
#[allow(clippy::type_complexity)]
fn workload_strategy() -> impl Strategy<Value = (Dataset, Vec<(u8, Vec<u8>)>, Vec<(Vec<u8>, u8)>)> {
    (2usize..=3, 2u8..=4)
        .prop_flat_map(|(d, c)| {
            let base = proptest::collection::vec(proptest::collection::vec(0..c, d), 0..30);
            let ops =
                proptest::collection::vec((0u8..5, proptest::collection::vec(0..c, d)), 1..50);
            let probes =
                proptest::collection::vec((proptest::collection::vec(0..c, d), 0u8..=255), 1..12);
            (Just((d, c)), base, ops, probes)
        })
        .prop_map(|((d, c), base, ops, probes)| {
            let schema = Schema::with_cardinalities(&vec![c as usize; d]).unwrap();
            (Dataset::from_rows(schema, &base).unwrap(), ops, probes)
        })
}

fn to_pattern(row: &[u8], x_mask: u8) -> Vec<u8> {
    row.iter()
        .enumerate()
        .map(|(i, &v)| if x_mask & (1 << i) != 0 { X } else { v })
        .collect()
}

/// Applies one workload op to any provider. Returns what `remove_row`
/// reported so callers can compare sides.
fn apply<P: CoverageProvider + ?Sized>(p: &mut P, selector: u8, row: &[u8]) -> Option<bool> {
    match selector {
        0 => Some(p.remove_row(row)),
        1 => {
            p.grow_value(row[0] as usize % p.arity());
            None
        }
        _ => {
            p.add_row(row);
            None
        }
    }
}

/// Probes both sides with every pattern at every τ and asserts agreement.
fn assert_probes_agree(
    dense: &CoverageOracle,
    other: &dyn CoverageProvider,
    probes: &[(Vec<u8>, u8)],
) -> Result<(), TestCaseError> {
    let patterns: Vec<Vec<u8>> = probes
        .iter()
        .map(|(row, mask)| to_pattern(row, *mask))
        .collect();
    for p in &patterns {
        let expect = dense.coverage(p);
        prop_assert_eq!(expect, other.coverage(p), "pattern {:?}", p);
        for tau in [1u64, 2, 3, 5, 10, 100] {
            prop_assert_eq!(
                dense.covered(p, tau),
                other.covered(p, tau),
                "pattern {:?}, tau {}",
                p,
                tau
            );
            // The capped probe must be exact below the cap and must report
            // at-least-cap (any count ≥ cap is allowed) once reached.
            let capped = other.coverage_capped(p, tau);
            if expect < tau {
                prop_assert_eq!(expect, capped, "uncapped region, pattern {:?}", p);
            } else {
                prop_assert!(capped >= tau, "pattern {:?}: {} < cap {}", p, capped, tau);
            }
        }
    }
    let refs: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
    let batch = other.coverage_batch(&refs);
    for (p, &count) in patterns.iter().zip(&batch) {
        prop_assert_eq!(dense.coverage(p), count, "batch probe {:?}", p);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn compressed_oracle_equals_dense_oracle_after_mixed_streams(
        workload in workload_strategy(),
    ) {
        let (base, ops, probes) = workload;
        let mut dense = CoverageOracle::from_dataset(&base);
        let mut compressed = CompressedOracle::from_dataset(&base);
        for (selector, row) in &ops {
            let removed_dense = apply(&mut dense, *selector, row);
            let removed_compressed = apply(&mut compressed, *selector, row);
            prop_assert_eq!(removed_dense, removed_compressed, "presence of {:?}", row);
            prop_assert_eq!(dense.total(), compressed.total());
        }
        prop_assert_eq!(dense.cardinalities(), compressed.cardinalities());
        assert_probes_agree(&dense, &compressed, &probes)?;
    }

    /// The tentpole composition: row shards each holding a compressed
    /// index must still agree with one dense oracle.
    #[test]
    fn sharding_over_compressed_equals_dense_oracle(
        workload in workload_strategy(),
        shards in 1usize..=4,
    ) {
        let (base, ops, probes) = workload;
        let mut dense = CoverageOracle::from_dataset(&base);
        let mut sharded = ShardedOracle::<CompressedOracle>::from_dataset(&base, shards);
        prop_assert_eq!(sharded.shard_count(), shards);
        for (selector, row) in &ops {
            let removed_dense = apply(&mut dense, *selector, row);
            let removed_sharded = apply(&mut sharded, *selector, row);
            prop_assert_eq!(removed_dense, removed_sharded, "presence of {:?}", row);
            prop_assert_eq!(dense.total(), sharded.total());
        }
        assert_probes_agree(&dense, &sharded, &probes)?;
    }

    /// Batch ingest into compressed shards must land on the same aggregate
    /// state as streamed single-row ingest.
    #[test]
    fn batch_ingest_equals_streamed_ingest_on_compressed_shards(
        workload in workload_strategy(),
        shards in 1usize..=4,
    ) {
        let (base, ops, probes) = workload;
        let rows: Vec<&[u8]> = ops.iter().map(|(_, row)| row.as_slice()).collect();
        let mut batched = ShardedOracle::<CompressedOracle>::from_dataset(&base, shards);
        batched.add_rows(&rows);
        let mut streamed = ShardedOracle::<CompressedOracle>::from_dataset(&base, shards);
        for row in &rows {
            CoverageProvider::add_row(&mut streamed, row);
        }
        prop_assert_eq!(batched.shard_totals(), streamed.shard_totals());
        for (row, mask) in &probes {
            let p = to_pattern(row, *mask);
            prop_assert_eq!(
                CoverageProvider::coverage(&batched, &p),
                CoverageProvider::coverage(&streamed, &p),
                "pattern {:?}", p
            );
        }
    }
}

/// Walks a posting list across the `ARRAY_MAX` spill boundary and back:
/// 4095 → 4096 → 4097 distinct combinations sharing `attr0 = 0`, then
/// deletions back below the boundary. `step` spaces the combination ids so
/// both spill targets are exercised: consecutive ids collapse to runs,
/// alternating ids force a bitmap.
fn boundary_crossing(step: usize) {
    // Cardinalities sized so `ARRAY_MAX + 1` distinct (0, b, c) combos
    // exist with room to spare: 2 × 128 × 128 = 32768 combinations.
    let schema = Schema::with_cardinalities(&[2, 128, 128]).unwrap();
    // Row i is its own combination (so combo id == insert order == i);
    // every `step`-th one carries attr0 = 0, the rest pad the id space so
    // the interesting posting list's ids are `step` apart.
    let row = |i: usize| -> Vec<u8> {
        let attr0 = u8::from(!i.is_multiple_of(step));
        vec![attr0, (i / 128 % 128) as u8, (i % 128) as u8]
    };
    let rows: Vec<Vec<u8>> = (0..(ARRAY_MAX + 1) * step).map(row).collect();
    let base = Dataset::from_rows(schema, &rows[..(ARRAY_MAX - 1) * step]).unwrap();
    let mut dense = CoverageOracle::from_dataset(&base);
    let mut compressed = CompressedOracle::from_dataset(&base);
    let probe: Vec<u8> = vec![0, X, X];
    assert_eq!(dense.coverage(&probe), (ARRAY_MAX - 1) as u64);

    // Cross the boundary one row at a time: 4095 → 4096 → 4097.
    let crossing = (ARRAY_MAX - 1) * step..(ARRAY_MAX + 1) * step;
    for (i, row) in crossing.clone().zip(&rows[crossing.clone()]) {
        dense.add_row(row);
        compressed.add_row(row);
        assert_eq!(
            dense.coverage(&probe),
            compressed.coverage(&probe),
            "insert #{i} (step {step})"
        );
        assert!(compressed.covered(&probe, ARRAY_MAX as u64 - 2));
    }
    assert_eq!(compressed.coverage(&probe), (ARRAY_MAX + 1) as u64);
    let stats = compressed.memory();
    assert!(
        stats.bitmap_containers + stats.run_containers > 0,
        "a {}-element list must have spilled out of array form: {stats:?}",
        ARRAY_MAX + 1
    );

    // …and back below it, in the same lock step.
    for i in ((ARRAY_MAX - 1) * step..(ARRAY_MAX + 1) * step).rev() {
        assert!(compressed.remove_row(&rows[i]), "delete #{i}");
        assert!(dense.remove_row(&rows[i]));
        assert_eq!(
            dense.coverage(&probe),
            compressed.coverage(&probe),
            "delete #{i} (step {step})"
        );
    }
    assert_eq!(compressed.coverage(&probe), (ARRAY_MAX - 1) as u64);
    assert_eq!(dense.total(), compressed.total());
}

#[test]
fn array_boundary_crossing_with_consecutive_ids() {
    // step 1: every combination lands in the hot posting list, ids are
    // consecutive, so the spill target is a run container.
    boundary_crossing(1);
}

#[test]
fn array_boundary_crossing_with_alternating_ids() {
    // step 2: ids alternate in and out of the hot list, so runs cannot
    // win and the spill target is a bitmap container.
    boundary_crossing(2);
}

#[test]
fn full_chunk_collapses_to_runs_and_spans_chunks() {
    // 2 × 128 × 128 × 4 values: exactly CHUNK_SIZE distinct combinations
    // carry attr0 = 0, filling chunk 0 of that posting list completely
    // (the all-ones bitmap must collapse to a single full run), and the
    // attr0 = 1 tail pushes later combinations into chunk 1.
    let schema = Schema::with_cardinalities(&[2, 128, 128, 4]).unwrap();
    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(CHUNK_SIZE + 64);
    for i in 0..CHUNK_SIZE {
        rows.push(vec![
            0,
            (i / 512) as u8,
            ((i / 4) % 128) as u8,
            (i % 4) as u8,
        ]);
    }
    for i in 0..64 {
        rows.push(vec![1, (i / 4) as u8, (i % 4) as u8, 0]);
    }
    let ds = Dataset::from_rows(schema, &rows).unwrap();
    let dense = CoverageOracle::from_dataset(&ds);
    let compressed = CompressedOracle::from_dataset(&ds);

    for probe in [
        vec![0, X, X, X],
        vec![1, X, X, X],
        vec![X, 0, X, X],
        vec![X, X, X, 3],
        vec![0, 64, X, 2],
        vec![X, X, X, X],
    ] {
        assert_eq!(
            dense.coverage(&probe),
            compressed.coverage(&probe),
            "probe {probe:?}"
        );
    }
    assert_eq!(compressed.coverage(&[0, X, X, X]), CHUNK_SIZE as u64);

    let stats = compressed.memory();
    assert!(
        stats.run_containers >= 1,
        "the full chunk must be stored as runs: {stats:?}"
    );
    // A full-chunk run costs 4 bytes where the dense bitmap costs 8 KiB.
    assert!(
        stats.bytes < dense.memory_bytes(),
        "compressed ({}) should undercut dense ({}) here",
        stats.bytes,
        dense.memory_bytes()
    );
}
