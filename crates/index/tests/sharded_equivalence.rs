//! Property tests: a [`ShardedOracle`] with any shard count is
//! observationally identical to the single [`CoverageOracle`] — on
//! `coverage`, `covered`, `coverage_batch`, and `total` — after arbitrary
//! mixed insert/delete streams.

use coverage_data::{Dataset, Schema};
use coverage_index::{CoverageOracle, CoverageProvider, ShardedOracle, X};
use proptest::prelude::*;

/// A random workload: schema shape, base rows, a mixed op stream, and probe
/// patterns. Ops: selector 0 = delete the row (a no-op on both sides when
/// absent), anything else = insert it. Probes: `(row, x_mask)` pairs turned
/// into patterns by masking positions to `X`.
#[allow(clippy::type_complexity)]
fn workload_strategy() -> impl Strategy<Value = (Dataset, Vec<(u8, Vec<u8>)>, Vec<(Vec<u8>, u8)>)> {
    (2usize..=3, 2u8..=4)
        .prop_flat_map(|(d, c)| {
            let base = proptest::collection::vec(proptest::collection::vec(0..c, d), 0..30);
            let ops =
                proptest::collection::vec((0u8..4, proptest::collection::vec(0..c, d)), 1..50);
            let probes =
                proptest::collection::vec((proptest::collection::vec(0..c, d), 0u8..=255), 1..12);
            (Just((d, c)), base, ops, probes)
        })
        .prop_map(|((d, c), base, ops, probes)| {
            let schema = Schema::with_cardinalities(&vec![c as usize; d]).unwrap();
            (Dataset::from_rows(schema, &base).unwrap(), ops, probes)
        })
}

fn to_pattern(row: &[u8], x_mask: u8) -> Vec<u8> {
    row.iter()
        .enumerate()
        .map(|(i, &v)| if x_mask & (1 << i) != 0 { X } else { v })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sharded_oracle_equals_single_oracle_after_mixed_streams(
        workload in workload_strategy(),
        shards in 1usize..=4,
    ) {
        let (base, ops, probes) = workload;
        let mut single = CoverageOracle::from_dataset(&base);
        let mut sharded = ShardedOracle::<CoverageOracle>::from_dataset(&base, shards);
        prop_assert_eq!(sharded.shard_count(), shards);
        for (selector, row) in &ops {
            if *selector == 0 {
                let removed_single = single.remove_row(row);
                let removed_sharded = CoverageProvider::remove_row(&mut sharded, row);
                prop_assert_eq!(removed_single, removed_sharded, "presence of {:?}", row);
            } else {
                single.add_row(row);
                CoverageProvider::add_row(&mut sharded, row);
            }
            prop_assert_eq!(single.total(), sharded.total());
        }
        let patterns: Vec<Vec<u8>> = probes
            .iter()
            .map(|(row, mask)| to_pattern(row, *mask))
            .collect();
        for p in &patterns {
            prop_assert_eq!(
                single.coverage(p),
                CoverageProvider::coverage(&sharded, p),
                "pattern {:?} over {} shards", p, shards
            );
            for tau in [1u64, 2, 3, 5, 10, 100] {
                prop_assert_eq!(
                    single.covered(p, tau),
                    CoverageProvider::covered(&sharded, p, tau),
                    "pattern {:?}, tau {}", p, tau
                );
            }
        }
        // The wide-probe path must agree with the point probes.
        let refs: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
        let batch = sharded.coverage_batch(&refs);
        for (p, &count) in patterns.iter().zip(&batch) {
            prop_assert_eq!(single.coverage(p), count, "batch probe {:?}", p);
        }
    }

    /// Batch ingest must land on the same aggregate state as streamed
    /// single-row ingest (routing is simulated identically).
    #[test]
    fn batch_ingest_equals_streamed_ingest(
        workload in workload_strategy(),
        shards in 1usize..=4,
    ) {
        let (base, ops, probes) = workload;
        let rows: Vec<&[u8]> = ops.iter().map(|(_, row)| row.as_slice()).collect();
        let mut batched = ShardedOracle::<CoverageOracle>::from_dataset(&base, shards);
        batched.add_rows(&rows);
        let mut streamed = ShardedOracle::<CoverageOracle>::from_dataset(&base, shards);
        for row in &rows {
            CoverageProvider::add_row(&mut streamed, row);
        }
        prop_assert_eq!(batched.shard_totals(), streamed.shard_totals());
        for (row, mask) in &probes {
            let p = to_pattern(row, *mask);
            prop_assert_eq!(
                CoverageProvider::coverage(&batched, &p),
                CoverageProvider::coverage(&streamed, &p),
                "pattern {:?}", p
            );
        }
    }
}
