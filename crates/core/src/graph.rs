//! The pattern graph (Definition 8): combinatorics and, for small spaces,
//! explicit materialization.
//!
//! The algorithms never materialize the graph — they traverse it implicitly
//! via Rule 1 / Rule 2 — but the statistics here size search spaces up front
//! (guarding the naïve algorithms) and the materialized form backs tests and
//! teaching examples.

use std::collections::{HashMap, HashSet};

use crate::error::{CoverageError, Result};
use crate::pattern::Pattern;

/// Neighborhood walk for incremental (delta) MUP maintenance: given a
/// pattern `root` that has just *become covered* — an ex-MUP after new
/// tuples arrived — returns the maximal uncovered patterns strictly below
/// it, i.e. exactly the new MUPs that replace `root` in the frontier.
///
/// The walk expands the children of covered nodes and emits every uncovered
/// node whose parents are all covered. Because coverage is monotone along
/// dominance (a parent covers at least as much as any child), every maximal
/// uncovered descendant of `root` is reachable through covered nodes only,
/// so the region visited is bounded by the covered slab between `root` and
/// the new frontier — not the whole subgraph.
///
/// `is_covered` is called at most once per visited pattern plus once per
/// parent probe; callers typically back it with a coverage oracle and a memo
/// cache. `root` itself is assumed covered and is never probed.
pub fn maximal_uncovered_below(
    root: &Pattern,
    cardinalities: &[u8],
    mut is_covered: impl FnMut(&Pattern) -> bool,
) -> Vec<Pattern> {
    let mut out = Vec::new();
    let mut seen: HashSet<Pattern> = HashSet::new();
    let mut stack: Vec<Pattern> = Vec::new();
    for child in root.children(cardinalities) {
        if seen.insert(child.clone()) {
            stack.push(child);
        }
    }
    while let Some(p) = stack.pop() {
        if is_covered(&p) {
            for child in p.children(cardinalities) {
                if seen.insert(child.clone()) {
                    stack.push(child);
                }
            }
        } else if p.parents().all(|parent| is_covered(&parent)) {
            // Uncovered with every parent covered: a MUP by Definition 5.
            // (Uncovered nodes with an uncovered parent are dropped — they
            // lie below some other maximal uncovered pattern.)
            out.push(p);
        }
    }
    out
}

/// Neighborhood walk for incremental *delete* maintenance: given a tuple
/// `t` that has just been removed from the dataset, returns every maximal
/// uncovered pattern that *matches* `t` — exactly the candidate MUPs a
/// deletion can mint, plus any existing MUPs matching `t` (callers diff
/// against their current frontier).
///
/// Deletes only decrease coverage, and only for patterns matching the
/// deleted tuple, so every brand-new MUP lies in the sublattice of patterns
/// whose deterministic elements agree with `t` (size `2^d`, one node per
/// attribute subset). Parents of a sublattice node are sublattice nodes
/// (a parent drops a deterministic element), so Definition 5's
/// all-parents-covered condition is decidable without leaving the
/// sublattice. The walk descends through covered nodes only, so the region
/// visited is bounded by the covered slab above the post-delete frontier —
/// not all `2^d` nodes.
///
/// `is_covered` is called at most once per visited pattern plus once per
/// parent probe; callers typically back it with a coverage oracle and a
/// memo cache.
pub fn maximal_uncovered_within(
    tuple: &[u8],
    mut is_covered: impl FnMut(&Pattern) -> bool,
) -> Vec<Pattern> {
    let root = Pattern::all_x(tuple.len());
    if !is_covered(&root) {
        // The whole dataset dropped below τ: the root dominates everything.
        return vec![root];
    }
    let sublattice_children = |p: &Pattern| -> Vec<Pattern> {
        (0..tuple.len())
            .filter(|&i| !p.is_deterministic(i))
            .map(|i| p.with(i, tuple[i]))
            .collect()
    };
    let mut out = Vec::new();
    let mut seen: HashSet<Pattern> = HashSet::new();
    let mut stack: Vec<Pattern> = Vec::new();
    for child in sublattice_children(&root) {
        if seen.insert(child.clone()) {
            stack.push(child);
        }
    }
    while let Some(p) = stack.pop() {
        if is_covered(&p) {
            for child in sublattice_children(&p) {
                if seen.insert(child.clone()) {
                    stack.push(child);
                }
            }
        } else if p.parents().all(|parent| is_covered(&parent)) {
            out.push(p);
        }
    }
    out
}

/// Structural statistics of the pattern graph over the given cardinalities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternGraphStats {
    /// Attribute cardinalities.
    pub cardinalities: Vec<u8>,
    /// Number of nodes per level (`levels[l]` = # patterns with `l`
    /// deterministic elements).
    pub nodes_per_level: Vec<u128>,
    /// Total node count, `Π (c_i + 1)`.
    pub total_nodes: u128,
    /// Total edge count.
    pub total_edges: u128,
}

/// Computes node and edge counts of the pattern graph without materializing
/// it. Saturates at `u128::MAX` on overflow.
pub fn pattern_graph_stats(cardinalities: &[u8]) -> PatternGraphStats {
    let d = cardinalities.len();
    // nodes_per_level[l] = Σ over l-subsets S of attributes of Π_{i∈S} c_i —
    // computed by the elementary-symmetric-polynomial recurrence.
    let mut esp = vec![0u128; d + 1];
    esp[0] = 1;
    for &c in cardinalities {
        for l in (1..=d).rev() {
            esp[l] = esp[l].saturating_add(esp[l - 1].saturating_mul(c as u128));
        }
    }
    let total_nodes = esp.iter().fold(0u128, |a, &b| a.saturating_add(b));
    // Each node at level l has one edge to each deterministic element's
    // parent... equivalently: total edges = Σ over nodes of (# children) =
    // Σ_l nodes(l) * Σ_{X positions} c_i. Closed form per attribute: an edge
    // corresponds to choosing an attribute i, a value for i, and a pattern
    // over the remaining attributes: c_i * Π_{j≠i}(c_j + 1).
    let mut total_edges = 0u128;
    for i in 0..d {
        let mut others = 1u128;
        for (j, &c) in cardinalities.iter().enumerate() {
            if j != i {
                others = others.saturating_mul(c as u128 + 1);
            }
        }
        total_edges = total_edges.saturating_add(others.saturating_mul(cardinalities[i] as u128));
    }
    PatternGraphStats {
        cardinalities: cardinalities.to_vec(),
        nodes_per_level: esp,
        total_nodes,
        total_edges,
    }
}

/// A fully materialized pattern graph — only for small attribute spaces.
#[derive(Debug, Clone)]
pub struct PatternGraph {
    nodes: Vec<Pattern>,
    index: HashMap<Pattern, usize>,
    /// `children[i]` = indices of the children of node `i`.
    children: Vec<Vec<usize>>,
    cardinalities: Vec<u8>,
}

/// Hard cap on materialized graph size.
const MATERIALIZE_LIMIT: u128 = 2_000_000;

impl PatternGraph {
    /// Materializes the pattern graph for the given cardinalities.
    ///
    /// # Errors
    ///
    /// Refuses spaces with more than two million nodes.
    pub fn materialize(cardinalities: &[u8]) -> Result<Self> {
        let stats = pattern_graph_stats(cardinalities);
        if stats.total_nodes > MATERIALIZE_LIMIT {
            return Err(CoverageError::SearchSpaceTooLarge {
                algorithm: "PatternGraph::materialize",
                size: stats.total_nodes,
                limit: MATERIALIZE_LIMIT,
            });
        }
        let mut nodes = Vec::with_capacity(stats.total_nodes as usize);
        let mut index = HashMap::new();
        let root = Pattern::all_x(cardinalities.len());
        nodes.push(root.clone());
        index.insert(root, 0usize);
        // Generate all nodes via Rule 1 (each exactly once).
        let mut cursor = 0;
        while cursor < nodes.len() {
            let p = nodes[cursor].clone();
            for child in p.rule1_children(cardinalities) {
                index.insert(child.clone(), nodes.len());
                nodes.push(child);
            }
            cursor += 1;
        }
        // Edges: connect every node to all of its children (not just Rule-1
        // ones) — Definition 8's full parent/child edge set.
        let mut children = vec![Vec::new(); nodes.len()];
        for (i, p) in nodes.iter().enumerate() {
            for child in p.children(cardinalities) {
                children[i].push(index[&child]);
            }
        }
        Ok(Self {
            nodes,
            index,
            children,
            cardinalities: cardinalities.to_vec(),
        })
    }

    /// All nodes, in Rule-1 generation order (root first).
    pub fn nodes(&self) -> &[Pattern] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (parent→child) edges.
    pub fn edge_count(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// Index of a pattern, if present.
    pub fn index_of(&self, p: &Pattern) -> Option<usize> {
        self.index.get(p).copied()
    }

    /// Children indices of node `i`.
    pub fn children_of(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Attribute cardinalities.
    pub fn cardinalities(&self) -> &[u8] {
        &self.cardinalities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_counts() {
        // Fig 2: three binary attributes → 27 nodes, 54 edges.
        let stats = pattern_graph_stats(&[2, 2, 2]);
        assert_eq!(stats.total_nodes, 27);
        assert_eq!(stats.total_edges, 54);
        // Levels: 1 root, C(3,1)·2 = 6 at level 1, C(3,2)·4 = 12 at level 2,
        // 8 leaves.
        assert_eq!(stats.nodes_per_level, vec![1, 6, 12, 8]);
    }

    #[test]
    fn edge_closed_form_matches_paper() {
        // Paper: equal cardinalities c ⇒ edges = c · d · (c+1)^(d-1).
        for (c, d) in [(2u8, 4usize), (3, 3), (5, 2)] {
            let cards = vec![c; d];
            let stats = pattern_graph_stats(&cards);
            let expected = (c as u128) * (d as u128) * ((c as u128 + 1).pow(d as u32 - 1));
            assert_eq!(stats.total_edges, expected, "c={c} d={d}");
        }
    }

    #[test]
    fn bluenile_bottom_level_width() {
        // §V-C1: level 7 of the BlueNile graph has > 100K nodes (100,800),
        // versus 128 for seven binary attributes.
        let stats = pattern_graph_stats(&[10, 4, 7, 8, 3, 3, 5]);
        assert_eq!(*stats.nodes_per_level.last().unwrap(), 100_800);
        let binary = pattern_graph_stats(&[2; 7]);
        assert_eq!(*binary.nodes_per_level.last().unwrap(), 128);
    }

    #[test]
    fn materialized_graph_matches_stats() {
        let stats = pattern_graph_stats(&[2, 3, 2]);
        let graph = PatternGraph::materialize(&[2, 3, 2]).unwrap();
        assert_eq!(graph.node_count() as u128, stats.total_nodes);
        assert_eq!(graph.edge_count() as u128, stats.total_edges);
        // Every child edge goes one level down.
        for (i, p) in graph.nodes().iter().enumerate() {
            for &c in graph.children_of(i) {
                assert_eq!(graph.nodes()[c].level(), p.level() + 1);
            }
        }
    }

    #[test]
    fn materialize_refuses_huge_spaces() {
        assert!(matches!(
            PatternGraph::materialize(&[9; 10]),
            Err(CoverageError::SearchSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn maximal_uncovered_below_finds_replacement_mups() {
        // Example 1 with tuple (1,0,1) inserted: the old MUP 1XX becomes
        // covered (τ=1) and the walk below it must find the new frontier
        // {11X, 1X0, 10X∖{101}…} — computed here against a brute-force
        // coverage predicate over the extended dataset.
        let rows: Vec<[u8; 3]> = vec![
            [0, 1, 0],
            [0, 0, 1],
            [0, 0, 0],
            [0, 1, 1],
            [0, 0, 1],
            [1, 0, 1], // the insert
        ];
        let covered = |p: &Pattern| rows.iter().any(|r| p.matches(r));
        let root = Pattern::parse("1XX").unwrap();
        let mut got: Vec<String> = maximal_uncovered_below(&root, &[2, 2, 2], covered)
            .iter()
            .map(|p| p.to_string())
            .collect();
        got.sort();
        assert_eq!(got, vec!["11X", "1X0"]);
    }

    #[test]
    fn walk_agrees_with_exhaustive_enumeration() {
        // Random coverage assignments (downward-closed in the uncovered
        // direction): the walk from the root equals the brute-force maximal
        // uncovered set.
        use rand::{Rng, SeedableRng};
        let cards = [2u8, 3, 2];
        for seed in 0..20u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            // Sample a random "dataset" of 0..6 tuples; coverage = matching.
            let n = rng.random_range(0..6usize);
            let tuples: Vec<Vec<u8>> = (0..n)
                .map(|_| cards.iter().map(|&c| rng.random_range(0..c)).collect())
                .collect();
            let covered = |p: &Pattern| tuples.iter().any(|t| p.matches(t));
            let root = Pattern::all_x(3);
            if !covered(&root) {
                continue; // walk contract requires a covered root
            }
            let mut got = maximal_uncovered_below(&root, &cards, covered);
            got.sort();
            let graph = PatternGraph::materialize(&cards).unwrap();
            let mut expected: Vec<Pattern> = graph
                .nodes()
                .iter()
                .filter(|p| !covered(p) && p.parents().all(|q| covered(&q)))
                .cloned()
                .collect();
            expected.sort();
            assert_eq!(got, expected, "seed {seed} tuples {tuples:?}");
        }
    }

    #[test]
    fn maximal_uncovered_within_finds_post_delete_frontier() {
        // Example 1 plus (1,0,1), then (1,0,1) deleted again: every pattern
        // matching the deleted tuple reverts to its Example-1 coverage, and
        // the walk within the (1,0,1) sublattice must surface 1XX (τ=1).
        let rows: Vec<[u8; 3]> = vec![[0, 1, 0], [0, 0, 1], [0, 0, 0], [0, 1, 1], [0, 0, 1]];
        let covered = |p: &Pattern| rows.iter().any(|r| p.matches(r));
        let got: Vec<String> = maximal_uncovered_within(&[1, 0, 1], covered)
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(got, vec!["1XX"]);
    }

    #[test]
    fn within_walk_agrees_with_exhaustive_enumeration() {
        // Random datasets: for every possible deleted tuple the walk must
        // equal the brute-force maximal uncovered patterns restricted to the
        // tuple's sublattice.
        use rand::{Rng, SeedableRng};
        let cards = [2u8, 3, 2];
        let graph = PatternGraph::materialize(&cards).unwrap();
        for seed in 0..20u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let n = rng.random_range(0..6usize);
            let tuples: Vec<Vec<u8>> = (0..n)
                .map(|_| cards.iter().map(|&c| rng.random_range(0..c)).collect())
                .collect();
            let covered = |p: &Pattern| tuples.iter().any(|t| p.matches(t));
            let deleted: Vec<u8> = cards.iter().map(|&c| rng.random_range(0..c)).collect();
            let mut got = maximal_uncovered_within(&deleted, covered);
            got.sort();
            let mut expected: Vec<Pattern> = graph
                .nodes()
                .iter()
                .filter(|p| p.matches(&deleted) && !covered(p) && p.parents().all(|q| covered(&q)))
                .cloned()
                .collect();
            expected.sort();
            assert_eq!(got, expected, "seed {seed} deleted {deleted:?}");
        }
    }

    #[test]
    fn within_walk_over_empty_dataset_is_the_root() {
        let got = maximal_uncovered_within(&[1, 0], |_| false);
        assert_eq!(got, vec![Pattern::all_x(2)]);
    }

    #[test]
    fn within_walk_over_fully_covered_sublattice_is_empty() {
        assert!(maximal_uncovered_within(&[0, 0, 0], |_| true).is_empty());
    }

    #[test]
    fn walk_below_fully_covered_root_is_empty() {
        let covered = |_: &Pattern| true;
        let root = Pattern::all_x(3);
        assert!(maximal_uncovered_below(&root, &[2, 2, 2], covered).is_empty());
    }

    #[test]
    fn apriori_lattice_comparison() {
        // §V-C: 10 attributes of cardinality 5 → pattern graph 6^10 ≈ 60M
        // nodes, apriori lattice 2^50 ≈ 10^15.
        let stats = pattern_graph_stats(&[5; 10]);
        assert_eq!(stats.total_nodes, 6u128.pow(10));
        let lattice = 2u128.pow(50);
        assert!(lattice > stats.total_nodes * 10_000);
    }
}
