//! The [`Pattern`] type (Definition 1) and its algebra: matching, levels,
//! parent/child generation, dominance, value counts, and the traversal
//! rules (Rule 1, Rule 2) that turn the pattern graph into a tree/forest.

use std::fmt;

pub use coverage_index::X;

use crate::error::{CoverageError, Result};

/// A pattern over `d` categorical attributes: each element is either a value
/// code or the non-deterministic sentinel [`X`].
///
/// Patterns display as in the paper: `1XX`, `X1X0`, etc. Values `10..` (for
/// cardinalities above ten) render in brackets, e.g. `[12]X0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    codes: Box<[u8]>,
}

impl Pattern {
    /// The all-`X` root pattern of arity `d` (level 0).
    pub fn all_x(d: usize) -> Self {
        Self {
            codes: vec![X; d].into_boxed_slice(),
        }
    }

    /// Builds a pattern from raw codes ([`X`] = non-deterministic).
    pub fn from_codes(codes: impl Into<Vec<u8>>) -> Self {
        Self {
            codes: codes.into().into_boxed_slice(),
        }
    }

    /// Builds a fully deterministic pattern from a value combination.
    pub fn from_combination(combo: &[u8]) -> Self {
        debug_assert!(combo.iter().all(|&v| v != X));
        Self {
            codes: combo.to_vec().into_boxed_slice(),
        }
    }

    /// Parses the paper's compact notation: one element per attribute,
    /// `X`/`x` for non-deterministic, digits for values 0–9, and `[NN]` for
    /// values 10 and above — exactly what [`Display`](fmt::Display) emits,
    /// so every pattern round-trips.
    ///
    /// # Errors
    ///
    /// Returns an error for characters outside `[0-9Xx]` / bracket groups,
    /// and for bracket groups that are empty, unterminated, or ≥ 255 (the
    /// [`X`] sentinel).
    pub fn parse(s: &str) -> Result<Self> {
        let bad = |msg: String| CoverageError::BadThreshold(msg);
        let mut codes = Vec::new();
        let mut chars = s.chars();
        while let Some(ch) = chars.next() {
            match ch {
                'X' | 'x' => codes.push(X),
                '0'..='9' => codes.push(ch as u8 - b'0'),
                '[' => {
                    let mut value: u32 = 0;
                    let mut digits = 0usize;
                    loop {
                        match chars.next() {
                            Some(d @ '0'..='9') => {
                                digits += 1;
                                value = value * 10 + (d as u32 - '0' as u32);
                                if value >= X as u32 {
                                    return Err(bad(format!(
                                        "bracketed value must be below {X}, got `[{value}…`"
                                    )));
                                }
                            }
                            Some(']') => break,
                            Some(other) => {
                                return Err(bad(format!(
                                    "unexpected `{other}` inside bracketed value"
                                )))
                            }
                            None => return Err(bad("unterminated `[` in pattern".into())),
                        }
                    }
                    if digits == 0 {
                        return Err(bad("empty `[]` in pattern".into()));
                    }
                    codes.push(value as u8);
                }
                other => {
                    return Err(bad(format!("unexpected pattern character `{other}`")));
                }
            }
        }
        Ok(Self::from_codes(codes))
    }

    /// Number of attributes (`d`).
    pub fn arity(&self) -> usize {
        self.codes.len()
    }

    /// Raw codes ([`X`] = non-deterministic).
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// The element at position `i`, `None` when non-deterministic.
    pub fn get(&self, i: usize) -> Option<u8> {
        match self.codes[i] {
            X => None,
            v => Some(v),
        }
    }

    /// Whether element `i` is deterministic.
    pub fn is_deterministic(&self, i: usize) -> bool {
        self.codes[i] != X
    }

    /// The pattern's level (Definition: number of deterministic elements).
    pub fn level(&self) -> usize {
        self.codes.iter().filter(|&&v| v != X).count()
    }

    /// Whether the tuple `t` matches this pattern (Equation 1).
    pub fn matches(&self, t: &[u8]) -> bool {
        debug_assert_eq!(t.len(), self.codes.len());
        self.codes.iter().zip(t).all(|(&p, &v)| p == X || p == v)
    }

    /// Whether `self` dominates `other`: `other` can be obtained from `self`
    /// by making some non-deterministic elements deterministic
    /// (equal patterns dominate each other trivially).
    pub fn dominates(&self, other: &Pattern) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.codes
            .iter()
            .zip(other.codes.iter())
            .all(|(&g, &s)| g == X || g == s)
    }

    /// Returns a copy with element `i` replaced by `code` (which may be [`X`]).
    pub fn with(&self, i: usize, code: u8) -> Pattern {
        let mut codes = self.codes.clone();
        codes[i] = code;
        Pattern { codes }
    }

    /// All parents (Definition 4): one deterministic element replaced by `X`.
    pub fn parents(&self) -> impl Iterator<Item = Pattern> + '_ {
        (0..self.arity())
            .filter(|&i| self.codes[i] != X)
            .map(move |i| self.with(i, X))
    }

    /// All children: one non-deterministic element replaced by each value of
    /// the corresponding attribute.
    pub fn children<'a>(&'a self, cardinalities: &'a [u8]) -> impl Iterator<Item = Pattern> + 'a {
        (0..self.arity())
            .filter(|&i| self.codes[i] == X)
            .flat_map(move |i| (0..cardinalities[i]).map(move |v| self.with(i, v)))
    }

    /// Index of the right-most deterministic element, if any.
    pub fn rightmost_deterministic(&self) -> Option<usize> {
        self.codes.iter().rposition(|&v| v != X)
    }

    /// Index of the right-most non-deterministic element, if any.
    pub fn rightmost_x(&self) -> Option<usize> {
        self.codes.iter().rposition(|&v| v == X)
    }

    /// **Rule 1** children: replace the non-deterministic elements strictly
    /// to the right of the right-most deterministic element with each
    /// attribute value. Guarantees each node of the pattern graph is
    /// generated exactly once in the top-down traversal (Theorem 3).
    pub fn rule1_children(&self, cardinalities: &[u8]) -> Vec<Pattern> {
        let start = self.rightmost_deterministic().map_or(0, |i| i + 1);
        let mut out = Vec::new();
        for (i, &card) in cardinalities.iter().enumerate().skip(start) {
            if self.codes[i] == X {
                for v in 0..card {
                    out.push(self.with(i, v));
                }
            }
        }
        out
    }

    /// The unique Rule-1 generator of this pattern: the right-most
    /// deterministic element replaced by `X` (None for the root).
    pub fn rule1_generator(&self) -> Option<Pattern> {
        self.rightmost_deterministic().map(|i| self.with(i, X))
    }

    /// **Rule 2** parents: replace each deterministic element *with value 0*
    /// strictly to the right of the right-most non-deterministic element
    /// with `X`. Guarantees each node is generated exactly once in the
    /// bottom-up traversal (Theorem 4).
    pub fn rule2_parents(&self) -> Vec<Pattern> {
        let start = self.rightmost_x().map_or(0, |i| i + 1);
        (start..self.arity())
            .filter(|&i| self.codes[i] == 0)
            .map(|i| self.with(i, X))
            .collect()
    }

    /// The unique Rule-2 generator of this pattern: the right-most
    /// non-deterministic element replaced by value 0 (None for fully
    /// deterministic patterns, which seed the bottom-up traversal).
    pub fn rule2_generator(&self) -> Option<Pattern> {
        self.rightmost_x().map(|i| self.with(i, 0))
    }

    /// Value count (Definition 7): the number of value combinations matching
    /// this pattern, `Π c_j` over its non-deterministic attributes.
    /// Saturates at `u128::MAX`.
    pub fn value_count(&self, cardinalities: &[u8]) -> u128 {
        self.codes
            .iter()
            .zip(cardinalities)
            .filter(|(&p, _)| p == X)
            .fold(1u128, |acc, (_, &c)| acc.saturating_mul(c as u128))
    }

    /// Enumerates all descendants of this pattern at exactly `level`
    /// deterministic elements (used by the Appendix C expansion).
    /// Returns an empty vector when `level < self.level()`.
    pub fn descendants_at_level(&self, cardinalities: &[u8], level: usize) -> Vec<Pattern> {
        let own = self.level();
        if level < own {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut stack = vec![(self.clone(), 0usize)];
        while let Some((p, from)) = stack.pop() {
            let need = level - p.level();
            if need == 0 {
                out.push(p);
                continue;
            }
            // Choose the next X position at or after `from` to make
            // deterministic; iterating positions in order avoids duplicates.
            let remaining_x = p.codes[from..].iter().filter(|&&v| v == X).count();
            if remaining_x < need {
                continue;
            }
            for (i, &card) in cardinalities.iter().enumerate().skip(from) {
                if p.codes[i] == X {
                    for v in 0..card {
                        stack.push((p.with(i, v), i + 1));
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &code in self.codes.iter() {
            match code {
                X => write!(f, "X")?,
                v if v <= 9 => write!(f, "{v}")?,
                v => write!(f, "[{v}]")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["XXX", "1X0", "X1X0", "10X1", "012", "[12]X0", "[10][254]X"] {
            assert_eq!(Pattern::parse(s).unwrap().to_string(), s);
        }
        assert!(Pattern::parse("1?0").is_err());
        assert_eq!(Pattern::from_codes(vec![12, X, 0]).to_string(), "[12]X0");
        // Bracket groups parse to single elements ([7] ≡ 7).
        assert_eq!(
            Pattern::parse("[7]X").unwrap(),
            Pattern::parse("7X").unwrap()
        );
    }

    #[test]
    fn parse_rejects_malformed_bracket_groups() {
        for bad in ["[", "[]", "[12", "[1x]", "[255]", "[999]", "]0"] {
            assert!(Pattern::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn matching_follows_equation_1() {
        // Paper: P = X1X0, t1 = 1100 and t2 = 0110 match, t3 = 1010 does not.
        let p = Pattern::parse("X1X0").unwrap();
        assert!(p.matches(&[1, 1, 0, 0]));
        assert!(p.matches(&[0, 1, 1, 0]));
        assert!(!p.matches(&[1, 0, 1, 0]));
    }

    #[test]
    fn levels() {
        // Paper: ℓ(1XXX) = 1, ℓ(10X1) = 3.
        assert_eq!(Pattern::parse("1XXX").unwrap().level(), 1);
        assert_eq!(Pattern::parse("10X1").unwrap().level(), 3);
        assert_eq!(Pattern::all_x(5).level(), 0);
    }

    #[test]
    fn dominance_examples() {
        // Paper: 10X1 is dominated by 1XXX.
        let general = Pattern::parse("1XXX").unwrap();
        let specific = Pattern::parse("10X1").unwrap();
        assert!(general.dominates(&specific));
        assert!(!specific.dominates(&general));
        assert!(general.dominates(&general));
    }

    #[test]
    fn parents_and_children() {
        let p = Pattern::parse("10X1").unwrap();
        let parents: Vec<String> = p.parents().map(|q| q.to_string()).collect();
        assert_eq!(parents, vec!["X0X1", "1XX1", "10XX"]);

        let root = Pattern::all_x(2);
        let children: Vec<String> = root.children(&[2, 3]).map(|q| q.to_string()).collect();
        assert_eq!(children, vec!["0X", "1X", "X0", "X1", "X2"]);
    }

    #[test]
    fn rule1_children_match_paper_figure3() {
        // Fig 3: 0XX generates 00X, 01X, 0X0, 0X1; X1X generates X10, X11.
        let cards = [2u8, 2, 2];
        let mut c: Vec<String> = Pattern::parse("0XX")
            .unwrap()
            .rule1_children(&cards)
            .iter()
            .map(|p| p.to_string())
            .collect();
        c.sort();
        assert_eq!(c, vec!["00X", "01X", "0X0", "0X1"]);

        let c: Vec<String> = Pattern::parse("X1X")
            .unwrap()
            .rule1_children(&cards)
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(c, vec!["X10", "X11"]);
    }

    #[test]
    fn rule1_generator_is_unique_parent() {
        // Theorem 3: the generator of P replaces its right-most deterministic
        // element with X.
        let p = Pattern::parse("X10").unwrap();
        assert_eq!(p.rule1_generator().unwrap().to_string(), "X1X");
        assert!(Pattern::all_x(3).rule1_generator().is_none());
    }

    #[test]
    fn rule1_generates_each_node_exactly_once() {
        // Exhaustive check on three ternary attributes: BFS via Rule 1 from
        // the root enumerates every pattern exactly once.
        let cards = [3u8, 3, 3];
        let mut seen = std::collections::HashSet::new();
        let mut queue = vec![Pattern::all_x(3)];
        seen.insert(queue[0].clone());
        while let Some(p) = queue.pop() {
            for child in p.rule1_children(&cards) {
                assert!(seen.insert(child.clone()), "duplicate {child}");
                queue.push(child);
            }
        }
        assert_eq!(seen.len(), 4usize.pow(3)); // Π (c_i + 1)
    }

    #[test]
    fn rule2_parents_match_paper_examples() {
        // Paper: X01 generates XX1; 000 generates 00X, 0X0, X00.
        let p = Pattern::parse("X01").unwrap();
        let parents: Vec<String> = p.rule2_parents().iter().map(|q| q.to_string()).collect();
        assert_eq!(parents, vec!["XX1"]);

        let p = Pattern::parse("000").unwrap();
        let mut parents: Vec<String> = p.rule2_parents().iter().map(|q| q.to_string()).collect();
        parents.sort();
        assert_eq!(parents, vec!["00X", "0X0", "X00"]);
    }

    #[test]
    fn rule2_generator_is_unique_child() {
        // Theorem 4: the generator of P replaces its right-most X with 0.
        let p = Pattern::parse("XX1").unwrap();
        assert_eq!(p.rule2_generator().unwrap().to_string(), "X01");
        assert!(Pattern::parse("010").unwrap().rule2_generator().is_none());
    }

    #[test]
    fn rule2_generates_each_node_exactly_once() {
        // Exhaustive check: starting from all full combinations, bottom-up
        // generation via Rule 2 reaches every pattern exactly once.
        let mut seen = std::collections::HashSet::new();
        let mut queue: Vec<Pattern> = Vec::new();
        for a in 0..2u8 {
            for b in 0..3u8 {
                for c in 0..2u8 {
                    let p = Pattern::from_combination(&[a, b, c]);
                    seen.insert(p.clone());
                    queue.push(p);
                }
            }
        }
        while let Some(p) = queue.pop() {
            for parent in p.rule2_parents() {
                assert!(seen.insert(parent.clone()), "duplicate {parent}");
                queue.push(parent);
            }
        }
        assert_eq!(seen.len(), 3 * 4 * 3); // Π (c_i + 1)
    }

    #[test]
    fn value_count_matches_paper() {
        // Paper: P = X1X0 over binary attributes → c_AP = 2 × 2 = 4.
        let p = Pattern::parse("X1X0").unwrap();
        assert_eq!(p.value_count(&[2, 2, 2, 2]), 4);
        assert_eq!(
            Pattern::parse("1010").unwrap().value_count(&[2, 2, 2, 2]),
            1
        );
        assert_eq!(Pattern::all_x(3).value_count(&[10, 4, 7]), 280);
    }

    #[test]
    fn descendants_at_level_match_appendix_c() {
        // Appendix C: descendants of P1 = XX01X at level 3 are 0X01X, 1X01X,
        // X001X, X101X, X201X, XX010, XX011 (A2 and A3 ternary in Example 2).
        let cards = [2u8, 3, 3, 2, 2];
        let p = Pattern::parse("XX01X").unwrap();
        let mut d: Vec<String> = p
            .descendants_at_level(&cards, 3)
            .iter()
            .map(|q| q.to_string())
            .collect();
        d.sort();
        assert_eq!(
            d,
            vec!["0X01X", "1X01X", "X001X", "X101X", "X201X", "XX010", "XX011"]
        );
    }

    #[test]
    fn descendants_at_own_level_is_self() {
        let p = Pattern::parse("1X0").unwrap();
        let d = p.descendants_at_level(&[2, 2, 2], 2);
        assert_eq!(d, vec![p.clone()]);
        assert!(p.descendants_at_level(&[2, 2, 2], 1).is_empty());
    }

    #[test]
    fn descendants_counts_are_exact() {
        // From the root of d=4 binary, level-2 descendants = C(4,2) * 2^2 = 24.
        let root = Pattern::all_x(4);
        let d = root.descendants_at_level(&[2, 2, 2, 2], 2);
        assert_eq!(d.len(), 24);
        let unique: std::collections::HashSet<_> = d.iter().collect();
        assert_eq!(unique.len(), 24);
    }
}
