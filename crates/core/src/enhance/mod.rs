//! Coverage enhancement (§IV, Problem 2): choose the minimum set of
//! additional value combinations so that, after collection, the dataset's
//! maximum covered level reaches a target λ (or every large-value-count
//! pattern is covered).
//!
//! The pipeline is: MUPs → target expansion ([`uncovered_patterns_at_level`], Appendix C) →
//! greedy hitting set ([`GreedyHittingSet`] or the [`NaiveHittingSet`]
//! baseline) → an [`EnhancementPlan`] with the combinations to collect,
//! their hit assignments, generalized acquisition patterns, and the copy
//! counts needed to actually reach the coverage threshold.

mod expand;
mod greedy;
mod naive_greedy;

pub use expand::{uncovered_patterns_at_level, uncovered_patterns_with_value_count};
pub use greedy::GreedyHittingSet;
pub use naive_greedy::NaiveHittingSet;

use coverage_data::Dataset;
use coverage_index::CoverageProvider;

use crate::error::Result;
use crate::pattern::Pattern;
use crate::validation::ValidationOracle;

/// Strategy interface for the hitting-set step.
pub trait HittingSetSolver {
    /// Solver name (for reports and benches).
    fn name(&self) -> &'static str;

    /// Returns value combinations (each valid under `validation`) whose
    /// union of matches hits every pattern in `targets`.
    fn solve(
        &self,
        targets: &[Pattern],
        cardinalities: &[u8],
        validation: &ValidationOracle,
    ) -> Result<Vec<Vec<u8>>>;
}

/// The output of coverage enhancement.
#[derive(Debug, Clone)]
pub struct EnhancementPlan {
    /// The uncovered patterns that had to be hit (`M_λ`).
    pub targets: Vec<Pattern>,
    /// The value combinations to collect, in greedy selection order.
    pub combinations: Vec<Vec<u8>>,
    /// `hits[k]` = indices into `targets` matched by `combinations[k]`
    /// (all matches, not only first-time hits).
    pub hits: Vec<Vec<usize>>,
    /// Generalized acquisition patterns (§IV-B's closing note): for each
    /// combination, the most general pattern all of whose matching
    /// combinations hit the same target patterns — giving the data collector
    /// freedom beyond a single exact tuple.
    pub generalized: Vec<Pattern>,
}

impl EnhancementPlan {
    fn build(targets: Vec<Pattern>, combinations: Vec<Vec<u8>>) -> Self {
        let hits: Vec<Vec<usize>> = combinations
            .iter()
            .map(|c| {
                targets
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.matches(c))
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        let generalized = combinations
            .iter()
            .zip(&hits)
            .map(|(combo, hit)| {
                // Keep position i deterministic iff some hit pattern
                // constrains it; otherwise any value works.
                let codes: Vec<u8> = (0..combo.len())
                    .map(|i| {
                        if hit.iter().any(|&j| targets[j].is_deterministic(i)) {
                            combo[i]
                        } else {
                            crate::pattern::X
                        }
                    })
                    .collect();
                Pattern::from_codes(codes)
            })
            .collect();
        Self {
            targets,
            combinations,
            hits,
            generalized,
        }
    }

    /// Number of combinations to collect (the paper's "output size").
    pub fn output_size(&self) -> usize {
        self.combinations.len()
    }

    /// Number of target patterns (the paper's "input size").
    pub fn input_size(&self) -> usize {
        self.targets.len()
    }

    /// Copies of each combination sufficient to push every hit pattern to
    /// the threshold `tau` (the paper's hitting-set formulation counts one
    /// hit per pattern; real collection must close each pattern's deficit
    /// `τ − cov(P)`). The allocation is conservative: each combination is
    /// replicated to the largest deficit among the patterns it hits. Any
    /// [`CoverageProvider`] backend answers the deficit probes.
    pub fn required_copies(&self, oracle: &dyn CoverageProvider, tau: u64) -> Vec<u64> {
        self.combinations
            .iter()
            .zip(&self.hits)
            .map(|(_, hit)| {
                hit.iter()
                    .map(|&j| tau.saturating_sub(oracle.coverage(self.targets[j].codes())))
                    .max()
                    .unwrap_or(1)
                    .max(1)
            })
            .collect()
    }

    /// Appends the planned combinations to `dataset` — `copies[k]` copies of
    /// combination `k` (pass `required_copies` output, or all-ones for the
    /// paper-faithful single hit). Labels, when the dataset is labeled, are
    /// set to `false` placeholders.
    pub fn apply_to(&self, dataset: &mut Dataset, copies: &[u64]) -> Result<()> {
        for (combo, &n) in self.combinations.iter().zip(copies) {
            for _ in 0..n {
                if dataset.is_labeled() {
                    dataset.push_labeled_row(combo, false)?;
                } else {
                    dataset.push_row(combo)?;
                }
            }
        }
        Ok(())
    }
}

/// Orchestrates target expansion and hitting-set solving.
#[derive(Debug, Clone, Default)]
pub struct CoverageEnhancer {
    /// Semantic-validity rules enforced on the collected combinations.
    pub validation: ValidationOracle,
}

impl CoverageEnhancer {
    /// Enhancer with a validation oracle.
    pub fn with_validation(validation: ValidationOracle) -> Self {
        Self { validation }
    }

    /// Plans the data collection that raises the maximum covered level to at
    /// least `lambda` (Problem 2): expands the MUPs to all uncovered
    /// patterns at level λ (Appendix C) and hits them all.
    ///
    /// MUPs the domain expert deems immaterial should be removed from `mups`
    /// before calling.
    pub fn plan_for_level(
        &self,
        solver: &dyn HittingSetSolver,
        mups: &[Pattern],
        cardinalities: &[u8],
        lambda: usize,
    ) -> Result<EnhancementPlan> {
        let mut targets = uncovered_patterns_at_level(mups, cardinalities, lambda);
        // Human-in-the-loop materiality (§IV): a target that itself satisfies
        // a validation rule describes semantically impossible combinations
        // (e.g. under-20 *and* widowed) — it is immaterial and must not be
        // collected for.
        targets.retain(|p| self.validation.is_valid(p));
        let combinations = solver.solve(&targets, cardinalities, &self.validation)?;
        Ok(EnhancementPlan::build(targets, combinations))
    }

    /// Plans the data collection for the value-count variant (Definition 7):
    /// every uncovered pattern with value count ≥ `min_value_count` gets hit.
    pub fn plan_for_value_count(
        &self,
        solver: &dyn HittingSetSolver,
        mups: &[Pattern],
        cardinalities: &[u8],
        min_value_count: u128,
    ) -> Result<EnhancementPlan> {
        let mut targets = uncovered_patterns_with_value_count(mups, cardinalities, min_value_count);
        targets.retain(|p| self.validation.is_valid(p));
        let combinations = solver.solve(&targets, cardinalities, &self.validation)?;
        Ok(EnhancementPlan::build(targets, combinations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mup::{DeepDiver, MupAlgorithm};
    use crate::Threshold;
    use coverage_data::generators::{vertex_cover_dataset, SampleGraph, VERTEX_COVER_TAU};

    fn example2_mups() -> Vec<Pattern> {
        [
            "XX01X", "1X20X", "XXXX1", "02XXX", "XX11X", "111XX", "X020X",
        ]
        .iter()
        .map(|s| Pattern::parse(s).unwrap())
        .collect()
    }

    const EX2_CARDS: [u8; 5] = [2, 3, 3, 2, 2];

    #[test]
    fn plan_for_level_2_covers_all_level2_uncovered() {
        let enhancer = CoverageEnhancer::default();
        let plan = enhancer
            .plan_for_level(&GreedyHittingSet, &example2_mups(), &EX2_CARDS, 2)
            .unwrap();
        // 3 level-2 MUPs + 10 level-2 descendants of the level-1 MUP XXXX1.
        assert_eq!(plan.input_size(), 13);
        assert!(plan.output_size() <= plan.input_size());
        assert!(plan.output_size() >= 3);
        // Every target hit by at least one combination.
        let mut hit = vec![false; plan.targets.len()];
        for hits in &plan.hits {
            for &j in hits {
                hit[j] = true;
            }
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn generalized_patterns_hit_same_targets() {
        let enhancer = CoverageEnhancer::default();
        let plan = enhancer
            .plan_for_level(&GreedyHittingSet, &example2_mups(), &EX2_CARDS, 2)
            .unwrap();
        for (k, g) in plan.generalized.iter().enumerate() {
            // Any combination matching the generalized pattern hits at least
            // the same targets as the concrete pick: check by testing every
            // completion over the (small) example space.
            let completions = g.descendants_at_level(&EX2_CARDS, 5);
            for c in completions {
                for &j in &plan.hits[k] {
                    assert!(
                        plan.targets[j].matches(c.codes()),
                        "completion {c} of {g} misses target {}",
                        plan.targets[j]
                    );
                }
            }
        }
    }

    #[test]
    fn vertex_cover_reduction_round_trip() {
        // Theorem 2 / Fig 1: MUPs of the constructed dataset are the five
        // single-1 patterns; the greedy enhancement corresponds to a vertex
        // cover of the original graph.
        let graph = SampleGraph::figure1();
        let ds = vertex_cover_dataset(&graph).unwrap();
        let mups = DeepDiver::default()
            .find_mups(&ds, Threshold::Count(VERTEX_COVER_TAU))
            .unwrap();
        // Exactly the per-edge patterns P1..P5 of Fig 1b.
        assert_eq!(mups.len(), graph.edges.len());
        for m in &mups {
            assert_eq!(m.level(), 1);
            let i = (0..5).find(|&i| m.get(i).is_some()).unwrap();
            assert_eq!(m.get(i), Some(1));
        }
        // Unrestricted enhancement may invent the all-ones tuple that hits
        // every per-edge pattern at once.
        let free = CoverageEnhancer::default()
            .plan_for_level(&GreedyHittingSet, &mups, &[2; 5], 1)
            .unwrap();
        assert_eq!(free.output_size(), 1);
        // Restricting collectible tuples to actual vertex incidence vectors
        // (via the validation oracle) recovers greedy vertex cover: size 2
        // on Fig 1a (e.g. vertices v1 and v4).
        let allowed: Vec<Vec<u8>> = (0..graph.vertices).map(|i| ds.row(i).to_vec()).collect();
        let mut rules = Vec::new();
        let mut odometer = [0u8; 5];
        loop {
            if !allowed.iter().any(|a| a.as_slice() == odometer.as_slice()) {
                rules.push(crate::validation::ValidationRule::new(
                    odometer
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (i, vec![v]))
                        .collect(),
                ));
            }
            let mut i = 5;
            while i > 0 {
                i -= 1;
                odometer[i] += 1;
                if odometer[i] < 2 {
                    break;
                }
                odometer[i] = 0;
                if i == 0 {
                    i = usize::MAX;
                    break;
                }
            }
            if i == usize::MAX {
                break;
            }
        }
        let restricted = CoverageEnhancer::with_validation(ValidationOracle::new(rules))
            .plan_for_level(&GreedyHittingSet, &mups, &[2; 5], 1)
            .unwrap();
        assert_eq!(restricted.output_size(), 2);
        for p in &mups {
            assert!(restricted.combinations.iter().any(|c| p.matches(c)));
        }
        for c in &restricted.combinations {
            assert!(allowed.iter().any(|a| a == c), "non-vertex tuple {c:?}");
        }
    }

    #[test]
    fn apply_to_raises_maximum_covered_level() {
        let ds0 = coverage_data::generators::bluenile_like(200, 3).unwrap();
        let ds0 = ds0.project(&[1, 4, 5]).unwrap(); // cards [4,3,3]
        let tau = 5u64;
        let mups = DeepDiver::default()
            .find_mups(&ds0, Threshold::Count(tau))
            .unwrap();
        let lambda = 1usize;
        let cards = ds0.schema().cardinalities();
        let plan = CoverageEnhancer::default()
            .plan_for_level(&GreedyHittingSet, &mups, &cards, lambda)
            .unwrap();
        let mut ds = ds0.clone();
        let oracle = crate::CoverageReport::oracle_for(&ds0);
        let copies = plan.required_copies(&oracle, tau);
        plan.apply_to(&mut ds, &copies).unwrap();
        // After collection no uncovered pattern remains at level ≤ λ.
        let mups_after = DeepDiver::default()
            .find_mups(&ds, Threshold::Count(tau))
            .unwrap();
        assert!(
            mups_after.iter().all(|m| m.level() > lambda),
            "level ≤ {lambda} MUP remains: {mups_after:?}"
        );
    }

    #[test]
    fn value_count_plan_hits_all_large_patterns() {
        let plan = CoverageEnhancer::default()
            .plan_for_value_count(&GreedyHittingSet, &example2_mups(), &EX2_CARDS, 12)
            .unwrap();
        assert!(!plan.targets.is_empty());
        for p in &plan.targets {
            assert!(p.value_count(&EX2_CARDS) >= 12);
            assert!(plan.combinations.iter().any(|c| p.matches(c)));
        }
    }

    #[test]
    fn no_mups_no_plan() {
        let plan = CoverageEnhancer::default()
            .plan_for_level(&GreedyHittingSet, &[], &EX2_CARDS, 3)
            .unwrap();
        assert_eq!(plan.output_size(), 0);
        assert_eq!(plan.input_size(), 0);
    }
}
