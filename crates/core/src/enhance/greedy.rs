//! The efficient GREEDY hitting-set implementation (§IV-B, Algorithms 4–5).
//!
//! Per attribute value, an inverted index marks the target patterns a
//! combination carrying that value can still hit (`X` or equal value). The
//! enumeration tree over value combinations is walked depth-first; each edge
//! ANDs the parent's bit-vector with the value's index, children are visited
//! in decreasing hit-count order, and a subtree is pruned when its count
//! cannot beat the best known combination. The validation oracle is
//! consulted before each child so only semantically valid combinations are
//! produced.

use coverage_index::BitVec;

use crate::enhance::HittingSetSolver;
use crate::error::{CoverageError, Result};
use crate::pattern::Pattern;
use crate::validation::ValidationOracle;

/// The threshold-pruned greedy solver.
#[derive(Debug, Clone, Default)]
pub struct GreedyHittingSet;

/// Per-(attribute, value) inverted indices over the target patterns.
struct PatternIndex {
    vectors: Vec<BitVec>,
    offsets: Vec<usize>,
    cardinalities: Vec<u8>,
}

impl PatternIndex {
    fn build(patterns: &[Pattern], cardinalities: &[u8]) -> Self {
        let mut offsets = Vec::with_capacity(cardinalities.len() + 1);
        let mut acc = 0;
        for &c in cardinalities {
            offsets.push(acc);
            acc += c as usize;
        }
        offsets.push(acc);
        let mut vectors = vec![BitVec::zeros(patterns.len()); acc];
        for (j, p) in patterns.iter().enumerate() {
            for (i, &c) in cardinalities.iter().enumerate() {
                match p.get(i) {
                    // Fig 9: value v on attribute i is compatible with
                    // patterns carrying X or v there.
                    Some(v) => vectors[offsets[i] + v as usize].set(j, true),
                    None => {
                        for v in 0..c {
                            vectors[offsets[i] + v as usize].set(j, true);
                        }
                    }
                }
            }
        }
        Self {
            vectors,
            offsets,
            cardinalities: cardinalities.to_vec(),
        }
    }

    fn vector(&self, attribute: usize, value: u8) -> &BitVec {
        &self.vectors[self.offsets[attribute] + value as usize]
    }
}

/// Mutable DFS state for one `hit-count` search (Algorithm 4).
struct Search<'a> {
    index: &'a PatternIndex,
    validation: &'a ValidationOracle,
    prefix: Vec<u8>,
    best_count: u64,
    best_combo: Option<Vec<u8>>,
}

impl Search<'_> {
    fn descend(&mut self, level: usize, filter: &BitVec) {
        let d = self.index.cardinalities.len();
        // Score every valid child of the current node.
        let mut children: Vec<(u64, u8, BitVec)> = Vec::new();
        for v in 0..self.index.cardinalities[level] {
            self.prefix.push(v);
            let allowed = self.validation.allows_prefix(&self.prefix);
            self.prefix.pop();
            if !allowed {
                continue;
            }
            let mut bv = filter.clone();
            bv.and_assign(self.index.vector(level, v));
            children.push((bv.count_ones(), v, bv));
        }
        if level == d - 1 {
            // Leaf level: the best child is a full combination.
            if let Some((cnt, v, _)) = children.iter().max_by_key(|(c, _, _)| *c) {
                if *cnt > self.best_count {
                    self.best_count = *cnt;
                    let mut combo = self.prefix.clone();
                    combo.push(*v);
                    self.best_combo = Some(combo);
                }
            }
            return;
        }
        // Interior level: visit children in decreasing hit-count order and
        // prune once a child cannot beat the best known combination.
        children.sort_by_key(|child| std::cmp::Reverse(child.0));
        for (cnt, v, bv) in children {
            if cnt <= self.best_count {
                break;
            }
            self.prefix.push(v);
            self.descend(level + 1, &bv);
            self.prefix.pop();
        }
    }
}

impl HittingSetSolver for GreedyHittingSet {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn solve(
        &self,
        targets: &[Pattern],
        cardinalities: &[u8],
        validation: &ValidationOracle,
    ) -> Result<Vec<Vec<u8>>> {
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        let index = PatternIndex::build(targets, cardinalities);
        let mut filter = BitVec::ones(targets.len());
        let mut selected: Vec<Vec<u8>> = Vec::new();
        while filter.any() {
            let mut search = Search {
                index: &index,
                validation,
                prefix: Vec::with_capacity(cardinalities.len()),
                best_count: 0,
                best_combo: None,
            };
            search.descend(0, &filter);
            let Some(combo) = search.best_combo else {
                // Every remaining pattern is matched only by invalid
                // combinations — surface them instead of looping forever.
                let remaining = filter.iter_ones().map(|j| targets[j].to_string()).collect();
                return Err(CoverageError::Unhittable {
                    patterns: remaining,
                });
            };
            // Clear the freshly hit patterns from the filter.
            let mut hits = filter.clone();
            for (i, &v) in combo.iter().enumerate() {
                hits.and_assign(index.vector(i, v));
            }
            for j in hits.iter_ones() {
                filter.set(j, false);
            }
            selected.push(combo);
        }
        Ok(selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 2's level-2 targets P1..P6 over cardinalities [2,3,3,2,2].
    fn p1_to_p6() -> Vec<Pattern> {
        ["XX01X", "1X20X", "XXXX1", "02XXX", "XX11X", "111XX"]
            .iter()
            .map(|s| Pattern::parse(s).unwrap())
            .collect()
    }

    const EX2_CARDS: [u8; 5] = [2, 3, 3, 2, 2];

    fn hit_count(combo: &[u8], targets: &[Pattern]) -> usize {
        targets.iter().filter(|p| p.matches(combo)).count()
    }

    #[test]
    fn first_pick_hits_three_patterns() {
        // §IV-B: "a value combination that hits the maximum number of
        // patterns is 02011, hitting the patterns P1, P3, and P4."
        let targets = p1_to_p6();
        let solver = GreedyHittingSet;
        let combos = solver
            .solve(&targets, &EX2_CARDS, &ValidationOracle::accept_all())
            .unwrap();
        assert_eq!(
            hit_count(&combos[0], &targets),
            3,
            "first pick {:?}",
            combos[0]
        );
    }

    #[test]
    fn example2_needs_three_combinations() {
        // §IV-B: the greedy algorithm suggests collecting three value
        // combinations (e.g. 02011, 02111, 10201).
        let targets = p1_to_p6();
        let combos = GreedyHittingSet
            .solve(&targets, &EX2_CARDS, &ValidationOracle::accept_all())
            .unwrap();
        assert_eq!(combos.len(), 3);
        // The union of hits covers every pattern.
        for (j, p) in targets.iter().enumerate() {
            assert!(
                combos.iter().any(|c| p.matches(c)),
                "pattern {j} ({p}) never hit"
            );
        }
    }

    #[test]
    fn bit_vector_walk_matches_paper_trace() {
        // §IV-B's worked trace: 12110 hits only P5 among P1..P6.
        let targets = p1_to_p6();
        assert_eq!(hit_count(&[1, 2, 1, 1, 0], &targets), 1);
        assert!(targets[4].matches(&[1, 2, 1, 1, 0]));
    }

    #[test]
    fn inverted_index_matches_figure9() {
        // Fig 9 rows: A1=0 → 101110, A1=1 → 111011, A2=0 → 111010,
        // A2=1 → 111011, A2=2 → 111110 (over P1..P6).
        let targets = p1_to_p6();
        let index = PatternIndex::build(&targets, &EX2_CARDS);
        let row = |attr: usize, v: u8| -> Vec<u8> {
            (0..6)
                .map(|j| u8::from(index.vector(attr, v).get(j)))
                .collect()
        };
        assert_eq!(row(0, 0), vec![1, 0, 1, 1, 1, 0]);
        assert_eq!(row(0, 1), vec![1, 1, 1, 0, 1, 1]);
        assert_eq!(row(1, 0), vec![1, 1, 1, 0, 1, 0]);
        assert_eq!(row(1, 1), vec![1, 1, 1, 0, 1, 1]);
        assert_eq!(row(1, 2), vec![1, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn validation_rules_are_enforced() {
        // Forbid A2 = 2 entirely: the solver must still hit P2 = 1X20X? No —
        // P2 requires A3 = 2 (allowed); forbid A3 = 2 instead and P2 becomes
        // unhittable.
        let targets = p1_to_p6();
        let oracle = ValidationOracle::new(vec![crate::validation::ValidationRule::forbid_values(
            2,
            vec![2],
        )]);
        let err = GreedyHittingSet.solve(&targets, &EX2_CARDS, &oracle);
        match err {
            Err(CoverageError::Unhittable { patterns }) => {
                assert_eq!(patterns, vec!["1X20X".to_string()]);
            }
            other => panic!("expected Unhittable, got {other:?}"),
        }
    }

    #[test]
    fn validation_steers_but_allows_when_hittable() {
        // Forbidding A1 = 0 leaves every pattern hittable (P4 = 02XXX becomes
        // unhittable — it needs A1 = 0). Use a rule on A5 instead: forbid
        // A5 = 0; all patterns remain hittable via A5 = 1.
        let targets = p1_to_p6();
        let oracle = ValidationOracle::new(vec![crate::validation::ValidationRule::forbid_values(
            4,
            vec![0],
        )]);
        let combos = GreedyHittingSet
            .solve(&targets, &EX2_CARDS, &oracle)
            .unwrap();
        for c in &combos {
            assert_ne!(c[4], 0, "validation violated by {c:?}");
        }
        for p in &targets {
            assert!(combos.iter().any(|c| p.matches(c)));
        }
    }

    #[test]
    fn empty_targets_need_nothing() {
        let combos = GreedyHittingSet
            .solve(&[], &EX2_CARDS, &ValidationOracle::accept_all())
            .unwrap();
        assert!(combos.is_empty());
    }

    #[test]
    fn single_full_pattern_selects_itself() {
        let target = vec![Pattern::parse("10201").unwrap()];
        let combos = GreedyHittingSet
            .solve(&target, &EX2_CARDS, &ValidationOracle::accept_all())
            .unwrap();
        assert_eq!(combos, vec![vec![1, 0, 2, 0, 1]]);
    }
}
