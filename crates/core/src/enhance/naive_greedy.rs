//! The direct ("naïve") greedy hitting-set implementation (§IV-A).
//!
//! Materializes the bipartite graph between the full universe of valid value
//! combinations and the target patterns, then repeatedly scans the whole
//! universe for the combination hitting the most un-hit patterns. Its cost
//! per iteration is `Θ(Π c_i × m)` — the paper reports it finishing within
//! the time limit in only one experimental setting (Fig 17).

use crate::enhance::HittingSetSolver;
use crate::error::{CoverageError, Result};
use crate::pattern::Pattern;
use crate::validation::ValidationOracle;

/// The baseline solver.
#[derive(Debug, Clone)]
pub struct NaiveHittingSet {
    /// Maximum universe size (`Π c_i`) it will enumerate.
    pub max_universe: u128,
}

impl Default for NaiveHittingSet {
    fn default() -> Self {
        Self {
            max_universe: 4_000_000,
        }
    }
}

impl HittingSetSolver for NaiveHittingSet {
    fn name(&self) -> &'static str {
        "NaiveHittingSet"
    }

    fn solve(
        &self,
        targets: &[Pattern],
        cardinalities: &[u8],
        validation: &ValidationOracle,
    ) -> Result<Vec<Vec<u8>>> {
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        let universe: u128 = cardinalities
            .iter()
            .fold(1u128, |a, &c| a.saturating_mul(c as u128));
        if universe > self.max_universe {
            return Err(CoverageError::SearchSpaceTooLarge {
                algorithm: "NaiveHittingSet",
                size: universe,
                limit: self.max_universe,
            });
        }
        // Materialize the valid universe.
        let d = cardinalities.len();
        let mut combos: Vec<Vec<u8>> = Vec::new();
        let mut odometer = vec![0u8; d];
        'outer: loop {
            if validation.is_valid(&Pattern::from_combination(&odometer)) {
                combos.push(odometer.clone());
            }
            for i in (0..d).rev() {
                odometer[i] += 1;
                if odometer[i] < cardinalities[i] {
                    continue 'outer;
                }
                odometer[i] = 0;
            }
            break;
        }

        let mut unhit: Vec<usize> = (0..targets.len()).collect();
        let mut selected: Vec<Vec<u8>> = Vec::new();
        while !unhit.is_empty() {
            // Full scan: the combination hitting the most un-hit patterns.
            let mut best_count = 0usize;
            let mut best: Option<&Vec<u8>> = None;
            for combo in &combos {
                let count = unhit.iter().filter(|&&j| targets[j].matches(combo)).count();
                if count > best_count {
                    best_count = count;
                    best = Some(combo);
                }
            }
            let Some(combo) = best else {
                return Err(CoverageError::Unhittable {
                    patterns: unhit.iter().map(|&j| targets[j].to_string()).collect(),
                });
            };
            let combo = combo.clone();
            unhit.retain(|&j| !targets[j].matches(&combo));
            selected.push(combo);
        }
        Ok(selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhance::GreedyHittingSet;

    fn p1_to_p6() -> Vec<Pattern> {
        ["XX01X", "1X20X", "XXXX1", "02XXX", "XX11X", "111XX"]
            .iter()
            .map(|s| Pattern::parse(s).unwrap())
            .collect()
    }

    const EX2_CARDS: [u8; 5] = [2, 3, 3, 2, 2];

    #[test]
    fn covers_example2_in_three_picks() {
        let targets = p1_to_p6();
        let combos = NaiveHittingSet::default()
            .solve(&targets, &EX2_CARDS, &ValidationOracle::accept_all())
            .unwrap();
        assert_eq!(combos.len(), 3);
        for p in &targets {
            assert!(combos.iter().any(|c| p.matches(c)));
        }
    }

    #[test]
    fn agrees_with_efficient_greedy_on_pick_counts() {
        // Both implement the same greedy strategy; pick counts must agree
        // (tie-breaking may differ, set size must not).
        let targets = p1_to_p6();
        let naive = NaiveHittingSet::default()
            .solve(&targets, &EX2_CARDS, &ValidationOracle::accept_all())
            .unwrap();
        let fast = GreedyHittingSet
            .solve(&targets, &EX2_CARDS, &ValidationOracle::accept_all())
            .unwrap();
        assert_eq!(naive.len(), fast.len());
        // And the best first-pick hit counts agree.
        let hits = |c: &[u8]| targets.iter().filter(|p| p.matches(c)).count();
        assert_eq!(hits(&naive[0]), hits(&fast[0]));
    }

    #[test]
    fn respects_validation_oracle() {
        let targets = p1_to_p6();
        let oracle = ValidationOracle::new(vec![crate::validation::ValidationRule::forbid_values(
            4,
            vec![0],
        )]);
        let combos = NaiveHittingSet::default()
            .solve(&targets, &EX2_CARDS, &oracle)
            .unwrap();
        assert!(combos.iter().all(|c| c[4] != 0));
    }

    #[test]
    fn unhittable_is_reported() {
        let targets = p1_to_p6();
        let oracle = ValidationOracle::new(vec![crate::validation::ValidationRule::forbid_values(
            2,
            vec![2],
        )]);
        assert!(matches!(
            NaiveHittingSet::default().solve(&targets, &EX2_CARDS, &oracle),
            Err(CoverageError::Unhittable { .. })
        ));
    }

    #[test]
    fn universe_guard_triggers() {
        let solver = NaiveHittingSet { max_universe: 10 };
        assert!(matches!(
            solver.solve(&p1_to_p6(), &EX2_CARDS, &ValidationOracle::accept_all()),
            Err(CoverageError::SearchSpaceTooLarge { .. })
        ));
    }
}
