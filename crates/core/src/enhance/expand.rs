//! Target-set construction for coverage enhancement.
//!
//! Appendix C shows that covering only the MUPs does **not** guarantee a
//! maximum covered level of λ: a MUP's deeper descendants may stay
//! uncovered. The correct target set `M_λ` is *every* uncovered pattern at
//! level λ — the union of the level-λ descendants of all MUPs with level
//! ≤ λ. The value-count variant (Definition 7) instead targets every
//! uncovered pattern whose value count meets a minimum.

use std::collections::HashSet;

use crate::pattern::Pattern;

/// All uncovered patterns at exactly `lambda` deterministic elements,
/// derived from the MUP set (Appendix C). Sorted for determinism.
///
/// MUPs deeper than `lambda` contribute nothing: any level-λ ancestor of a
/// deeper MUP is covered by Definition 5.
pub fn uncovered_patterns_at_level(
    mups: &[Pattern],
    cardinalities: &[u8],
    lambda: usize,
) -> Vec<Pattern> {
    let mut set: HashSet<Pattern> = HashSet::new();
    for mup in mups.iter().filter(|m| m.level() <= lambda) {
        set.extend(mup.descendants_at_level(cardinalities, lambda));
    }
    let mut out: Vec<Pattern> = set.into_iter().collect();
    out.sort();
    out
}

/// All uncovered patterns whose value count (Definition 7) is at least
/// `min_value_count` — the alternative enhancement objective of §II/§IV.
///
/// Value count is monotone decreasing down the pattern graph, so the
/// enumeration explores each MUP's descendant cone and prunes as soon as the
/// count drops below the bound.
pub fn uncovered_patterns_with_value_count(
    mups: &[Pattern],
    cardinalities: &[u8],
    min_value_count: u128,
) -> Vec<Pattern> {
    let mut set: HashSet<Pattern> = HashSet::new();
    let mut stack: Vec<Pattern> = Vec::new();
    for mup in mups {
        if mup.value_count(cardinalities) >= min_value_count && set.insert(mup.clone()) {
            stack.push(mup.clone());
        }
    }
    while let Some(p) = stack.pop() {
        for child in p.children(cardinalities) {
            if child.value_count(cardinalities) >= min_value_count && set.insert(child.clone()) {
                stack.push(child);
            }
        }
    }
    let mut out: Vec<Pattern> = set.into_iter().collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 2's MUP set (Fig 8) over cardinalities [2, 3, 3, 2, 2].
    fn example2_mups() -> Vec<Pattern> {
        [
            "XX01X", "1X20X", "XXXX1", "02XXX", "XX11X", "111XX", "X020X",
        ]
        .iter()
        .map(|s| Pattern::parse(s).unwrap())
        .collect()
    }

    const EX2_CARDS: [u8; 5] = [2, 3, 3, 2, 2];

    #[test]
    fn level2_targets_expand_example2() {
        // §IV names "P1 to P6" as the λ = 2 targets, but strictly by
        // Definition the level-2 target set is: the level-2 MUPs themselves
        // (P1 = XX01X, P4 = 02XXX, P5 = XX11X) plus the level-2 descendants
        // of the level-1 MUP P3 = XXXX1 (one per attribute value of the four
        // remaining attributes: 2+3+3+2 = 10). MUPs deeper than λ (P2, P6,
        // P7) contribute nothing.
        let targets = uncovered_patterns_at_level(&example2_mups(), &EX2_CARDS, 2);
        let strs: Vec<String> = targets.iter().map(|p| p.to_string()).collect();
        for expected in ["XX01X", "02XXX", "XX11X", "XXX01", "1XXX1", "X2XX1"] {
            assert!(strs.contains(&expected.to_string()), "missing {expected}");
        }
        for absent in ["1X20X", "111XX", "X020X", "XXXX1"] {
            assert!(!strs.contains(&absent.to_string()), "unexpected {absent}");
        }
        assert!(targets.iter().all(|p| p.level() == 2));
        assert_eq!(targets.len(), 13);
    }

    #[test]
    fn level3_expansion_contains_appendix_c_example() {
        // Appendix C: 1X11X (a child of the MUP XX11X) is uncovered at
        // level 3 and must be in M_3; the expansion of XX01X at level 3
        // contains the seven listed patterns.
        let targets = uncovered_patterns_at_level(&example2_mups(), &EX2_CARDS, 3);
        let strs: HashSet<String> = targets.iter().map(|p| p.to_string()).collect();
        assert!(strs.contains("1X11X"));
        for expected in [
            "0X01X", "1X01X", "X001X", "X101X", "X201X", "XX010", "XX011",
        ] {
            assert!(strs.contains(expected), "missing {expected}");
        }
        // P7 (level 3) is now included as its own descendant.
        assert!(strs.contains("X020X"));
        assert!(targets.iter().all(|p| p.level() == 3));
    }

    #[test]
    fn expansion_is_deduplicated() {
        // Overlapping MUPs share descendants; the result must be a set.
        let mups = vec![
            Pattern::parse("0XX").unwrap(),
            Pattern::parse("X0X").unwrap(),
        ];
        let targets = uncovered_patterns_at_level(&mups, &[2, 2, 2], 2);
        let unique: HashSet<&Pattern> = targets.iter().collect();
        assert_eq!(unique.len(), targets.len());
        // 00X is a descendant of both MUPs but appears once.
        assert!(targets.iter().any(|p| p.to_string() == "00X"));
    }

    #[test]
    fn value_count_targets_respect_bound() {
        // Over [2,3,3,2,2] the MUP 02XXX has value count 3·2·2 = 12; its
        // children drop to ≤ 6.
        let mups = vec![Pattern::parse("02XXX").unwrap()];
        let t12 = uncovered_patterns_with_value_count(&mups, &EX2_CARDS, 12);
        assert_eq!(t12.len(), 1);
        let t6 = uncovered_patterns_with_value_count(&mups, &EX2_CARDS, 6);
        assert!(t6.len() > 1);
        assert!(t6.iter().all(|p| p.value_count(&EX2_CARDS) >= 6));
        // Every target is dominated by the MUP.
        assert!(t6.iter().all(|p| mups[0].dominates(p)));
    }

    #[test]
    fn empty_mups_give_empty_targets() {
        assert!(uncovered_patterns_at_level(&[], &EX2_CARDS, 3).is_empty());
        assert!(uncovered_patterns_with_value_count(&[], &EX2_CARDS, 1).is_empty());
    }
}
