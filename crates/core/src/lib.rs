//! # coverage-core
//!
//! The primary contribution of *"Assessing and Remedying Coverage for a
//! Given Dataset"* (Asudeh, Jin, Jagadish; ICDE 2019), implemented from
//! scratch:
//!
//! * [`pattern::Pattern`] — patterns over categorical attributes
//!   (Definition 1) with the full traversal algebra (Rules 1 & 2, dominance,
//!   value counts);
//! * [`graph`] — pattern-graph combinatorics (Definition 8);
//! * [`mup`] — MUP identification (Problem 1) via PATTERN-BREAKER,
//!   PATTERN-COMBINER, DEEPDIVER, plus the naïve and APRIORI baselines;
//! * [`enhance`] — coverage enhancement (Problem 2) via the efficient greedy
//!   hitting set with target expansion (Appendix C) and a validation oracle;
//! * [`validation`] — semantic-validity rules (Definitions 10–11);
//! * [`CoverageReport`] — a one-call audit: MUPs, per-level histogram, and
//!   the maximum covered level (Definition 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enhance;
mod error;
pub mod fxhash;
pub mod graph;
pub mod mup;
pub mod pattern;
pub mod validation;

pub use error::{CoverageError, Result};

use coverage_data::Dataset;
use coverage_index::CoverageOracle;

use mup::{DeepDiver, MupAlgorithm};
use pattern::Pattern;

/// A coverage threshold: absolute, or a fraction of the dataset size (the
/// paper's "threshold rate").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// Absolute minimum number of matching tuples, `τ`.
    Count(u64),
    /// Fraction of the dataset size; resolved as `max(1, round(f·n))`,
    /// matching the paper's experimental settings (e.g. rate `0.001%` on the
    /// 116,300-row BlueNile resolves to `τ = 1`).
    Fraction(f64),
}

impl Threshold {
    /// Resolves against a dataset size.
    ///
    /// # Errors
    ///
    /// Returns an error for non-finite or negative fractions.
    pub fn resolve(self, n: u64) -> Result<u64> {
        match self {
            Threshold::Count(c) => Ok(c),
            Threshold::Fraction(f) => {
                if !f.is_finite() || f < 0.0 {
                    return Err(CoverageError::BadThreshold(format!(
                        "fraction must be finite and non-negative, got {f}"
                    )));
                }
                Ok(((f * n as f64).round() as u64).max(1))
            }
        }
    }
}

/// The result of a coverage audit: the paper's proposed "coverage widget"
/// for a dataset nutritional label.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// All maximal uncovered patterns, sorted.
    pub mups: Vec<Pattern>,
    /// The resolved absolute threshold.
    pub tau: u64,
    /// Dataset size the audit ran against.
    pub n: u64,
    /// Number of attributes.
    pub arity: usize,
    /// `histogram[l]` = number of MUPs at level `l` (Fig 6's distribution).
    pub level_histogram: Vec<usize>,
}

impl CoverageReport {
    /// Audits a dataset with [`DeepDiver`] (the paper's most robust
    /// identification algorithm).
    pub fn audit(dataset: &Dataset, threshold: Threshold) -> Result<Self> {
        Self::audit_with(&DeepDiver::default(), dataset, threshold)
    }

    /// Audits with a caller-chosen algorithm.
    pub fn audit_with(
        algorithm: &dyn MupAlgorithm,
        dataset: &Dataset,
        threshold: Threshold,
    ) -> Result<Self> {
        let mups = algorithm.find_mups(dataset, threshold)?;
        let tau = threshold.resolve(dataset.len() as u64)?;
        Ok(Self::from_mups(
            mups,
            tau,
            dataset.len() as u64,
            dataset.arity(),
        ))
    }

    /// Builds a report from an already-computed MUP set.
    pub fn from_mups(mut mups: Vec<Pattern>, tau: u64, n: u64, arity: usize) -> Self {
        mups.sort();
        let mut level_histogram = vec![0usize; arity + 1];
        for m in &mups {
            level_histogram[m.level()] += 1;
        }
        Self {
            mups,
            tau,
            n,
            arity,
            level_histogram,
        }
    }

    /// The maximum covered level λ (Definition 6): the largest λ such that
    /// every (material) MUP has level > λ. A fully covered dataset reports
    /// its arity.
    pub fn maximum_covered_level(&self) -> usize {
        self.mups
            .iter()
            .map(Pattern::level)
            .min()
            .map_or(self.arity, |l| l.saturating_sub(1))
    }

    /// Number of MUPs.
    pub fn mup_count(&self) -> usize {
        self.mups.len()
    }

    /// MUPs at a given level.
    pub fn mups_at_level(&self, level: usize) -> impl Iterator<Item = &Pattern> + '_ {
        self.mups.iter().filter(move |m| m.level() == level)
    }

    /// Retains only the MUPs a domain expert deems material (§II: "A domain
    /// expert can examine a list of MUPs and identify the ones that can
    /// safely be ignored"), recomputing the histogram.
    pub fn retain_material(&mut self, mut is_material: impl FnMut(&Pattern) -> bool) {
        self.mups.retain(|m| is_material(m));
        self.level_histogram = vec![0; self.arity + 1];
        for m in &self.mups {
            self.level_histogram[m.level()] += 1;
        }
    }

    /// Convenience: a coverage oracle over the same dataset, for deficit and
    /// follow-up queries.
    pub fn oracle_for(dataset: &Dataset) -> CoverageOracle {
        CoverageOracle::from_dataset(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::Schema;

    fn example1() -> Dataset {
        Dataset::from_rows(
            Schema::binary(3).unwrap(),
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap()
    }

    #[test]
    fn threshold_resolution() {
        assert_eq!(Threshold::Count(30).resolve(1_000).unwrap(), 30);
        // Paper settings: rate 0.001% of 116,300 → 1; 10⁻⁶ of 1M → 1;
        // 0.1% of 1M → 1000.
        assert_eq!(Threshold::Fraction(1e-5).resolve(116_300).unwrap(), 1);
        assert_eq!(Threshold::Fraction(1e-6).resolve(1_000_000).unwrap(), 1);
        assert_eq!(Threshold::Fraction(1e-3).resolve(1_000_000).unwrap(), 1000);
        assert!(Threshold::Fraction(-0.5).resolve(10).is_err());
        assert!(Threshold::Fraction(f64::NAN).resolve(10).is_err());
    }

    #[test]
    fn fraction_never_resolves_to_zero() {
        assert_eq!(Threshold::Fraction(1e-9).resolve(100).unwrap(), 1);
    }

    #[test]
    fn audit_example1() {
        let report = CoverageReport::audit(&example1(), Threshold::Count(1)).unwrap();
        assert_eq!(report.mup_count(), 1);
        assert_eq!(report.tau, 1);
        assert_eq!(report.level_histogram, vec![0, 1, 0, 0]);
        // One MUP at level 1 ⇒ maximum covered level 0.
        assert_eq!(report.maximum_covered_level(), 0);
    }

    #[test]
    fn fully_covered_reports_arity() {
        let ds = Dataset::from_rows(
            Schema::binary(2).unwrap(),
            &[vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]],
        )
        .unwrap();
        let report = CoverageReport::audit(&ds, Threshold::Count(1)).unwrap();
        assert_eq!(report.mup_count(), 0);
        assert_eq!(report.maximum_covered_level(), 2);
    }

    #[test]
    fn retain_material_recomputes_histogram() {
        let mut report = CoverageReport::audit(&example1(), Threshold::Count(3)).unwrap();
        let before = report.mup_count();
        assert!(before > 0);
        report.retain_material(|m| m.level() >= 2);
        assert!(report.mups.iter().all(|m| m.level() >= 2));
        assert_eq!(
            report.level_histogram.iter().sum::<usize>(),
            report.mup_count()
        );
    }

    #[test]
    fn mups_at_level_filters() {
        let report = CoverageReport::audit(&example1(), Threshold::Count(2)).unwrap();
        for l in 0..=3 {
            assert_eq!(report.mups_at_level(l).count(), report.level_histogram[l]);
        }
    }
}
