//! PATTERN-COMBINER (§III-D, Algorithm 2): bottom-up traversal of the
//! pattern graph, transformed into a forest by Rule 2.
//!
//! The coverage of a node is the sum of the coverages of the children that
//! partition it on its right-most non-deterministic attribute, so only the
//! bottom level ever touches the data. The algorithm carries the full set of
//! uncovered patterns per level upward; a node none of whose parents is
//! uncovered is a MUP.

use crate::fxhash::FxHashMap;

use coverage_index::CoverageProvider;

use crate::error::{CoverageError, Result};
use crate::mup::MupAlgorithm;
use crate::pattern::Pattern;

/// The bottom-up algorithm.
#[derive(Debug, Clone)]
pub struct PatternCombiner {
    /// Maximum number of full value combinations (`Π c_i`) it will enumerate
    /// at the bottom level.
    pub max_combinations: u128,
}

impl Default for PatternCombiner {
    fn default() -> Self {
        Self {
            max_combinations: 50_000_000,
        }
    }
}

impl MupAlgorithm for PatternCombiner {
    fn name(&self) -> &'static str {
        "PatternCombiner"
    }

    fn find_mups_with_oracle(
        &self,
        oracle: &dyn CoverageProvider,
        tau: u64,
    ) -> Result<Vec<Pattern>> {
        let cards = oracle.cardinalities().to_vec();
        let d = cards.len();
        let space: u128 = cards
            .iter()
            .fold(1u128, |a, &c| a.saturating_mul(c as u128));
        if space > self.max_combinations {
            return Err(CoverageError::SearchSpaceTooLarge {
                algorithm: "PatternCombiner",
                size: space,
                limit: self.max_combinations,
            });
        }
        if tau == 0 {
            return Ok(Vec::new());
        }

        // Bottom level: counts of every full value combination. Present
        // combinations come from the provider's aggregation (a sharded
        // backend may report one combination once per shard — summed here);
        // absent ones count 0. Patterns are keyed by their raw code slices
        // (X = 0xFF) so the hot loops can probe the maps without allocating.
        let mut present: FxHashMap<Box<[u8]>, u64> = FxHashMap::default();
        oracle.for_each_combination(&mut |combo, count| {
            *present
                .entry(combo.to_vec().into_boxed_slice())
                .or_insert(0) += count;
        });
        let mut count: FxHashMap<Box<[u8]>, u64> = FxHashMap::default();
        let mut odometer = vec![0u8; d];
        loop {
            let cnt = present.get(odometer.as_slice()).copied().unwrap_or(0);
            if cnt < tau {
                count.insert(odometer.clone().into_boxed_slice(), cnt);
            }
            // Advance the odometer; stop after the last combination.
            let mut i = d;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                odometer[i] += 1;
                if odometer[i] < cards[i] {
                    break;
                }
                odometer[i] = 0;
                if i == 0 {
                    i = usize::MAX;
                    break;
                }
            }
            if i == usize::MAX {
                break;
            }
        }
        if count.is_empty() {
            return Ok(Vec::new());
        }

        const X: u8 = crate::pattern::X;
        let mut mups: Vec<Pattern> = Vec::new();
        let mut scratch: Vec<u8> = Vec::with_capacity(d);
        // Walk levels d, d-1, …, 0. `count` always holds *all* uncovered
        // patterns of the current level (completeness of Rule 2, Theorem 4).
        loop {
            let mut next_count: FxHashMap<Box<[u8]>, u64> = FxHashMap::default();
            for p in count.keys() {
                // Rule 2 parents: deterministic 0-elements to the right of
                // the right-most X become X, one at a time.
                let start = p.iter().rposition(|&v| v == X).map_or(0, |i| i + 1);
                for j in start..d {
                    if p[j] != 0 {
                        continue;
                    }
                    scratch.clear();
                    scratch.extend_from_slice(p);
                    scratch[j] = X;
                    if next_count.contains_key(scratch.as_slice()) {
                        continue;
                    }
                    // Children partitioning the parent on its right-most X
                    // (which is j itself, as everything right of j is
                    // deterministic); covered children (absent from `count`)
                    // contribute ≥ τ each.
                    let mut cnt: u64 = 0;
                    for v in 0..cards[j] {
                        scratch[j] = v;
                        cnt = cnt
                            .saturating_add(count.get(scratch.as_slice()).copied().unwrap_or(tau));
                        if cnt >= tau {
                            break;
                        }
                    }
                    if cnt < tau {
                        scratch[j] = X;
                        next_count.insert(scratch.clone().into_boxed_slice(), cnt);
                    }
                }
            }
            for p in count.keys() {
                // MUP test: no parent is uncovered at the next level.
                scratch.clear();
                scratch.extend_from_slice(p);
                let mut is_mup = true;
                for j in 0..d {
                    let v = scratch[j];
                    if v == X {
                        continue;
                    }
                    scratch[j] = X;
                    let uncovered_parent = next_count.contains_key(scratch.as_slice());
                    scratch[j] = v;
                    if uncovered_parent {
                        is_mup = false;
                        break;
                    }
                }
                if is_mup {
                    mups.push(Pattern::from_codes(p.to_vec()));
                }
            }
            if next_count.is_empty() {
                break;
            }
            count = next_count;
        }
        Ok(mups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mup::test_support::{assert_example1, assert_matches_reference};
    use crate::Threshold;

    #[test]
    fn example1_single_mup() {
        assert_example1(&PatternCombiner::default());
    }

    #[test]
    fn matches_brute_force_reference() {
        for (seed, tau) in [(1, 3), (2, 10), (3, 40), (4, 100)] {
            assert_matches_reference(&PatternCombiner::default(), seed, tau);
        }
    }

    #[test]
    fn coverage_summation_identity() {
        // §III-D: cov(1XX) = cov(1X0) + cov(1X1).
        let ds = coverage_data::generators::airbnb_like(1_000, 3, 6).unwrap();
        let oracle = crate::mup::test_support::oracle_for(&ds);
        assert_eq!(
            oracle.coverage(&[1, coverage_index::X, coverage_index::X]),
            oracle.coverage(&[1, coverage_index::X, 0])
                + oracle.coverage(&[1, coverage_index::X, 1])
        );
    }

    #[test]
    fn refuses_huge_bottom_levels() {
        let guard = PatternCombiner {
            max_combinations: 4,
        };
        let ds = coverage_data::generators::airbnb_like(50, 4, 0).unwrap();
        assert!(matches!(
            guard.find_mups(&ds, Threshold::Count(1)),
            Err(CoverageError::SearchSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn empty_dataset_root_is_mup() {
        let ds = coverage_data::Dataset::new(coverage_data::Schema::binary(3).unwrap());
        let mups = PatternCombiner::default()
            .find_mups(&ds, Threshold::Count(2))
            .unwrap();
        assert_eq!(mups.len(), 1);
        assert_eq!(mups[0].to_string(), "XXX");
    }

    #[test]
    fn zero_threshold_yields_no_mups() {
        let ds = crate::mup::test_support::example1();
        let mups = PatternCombiner::default()
            .find_mups(&ds, Threshold::Count(0))
            .unwrap();
        assert!(mups.is_empty());
    }

    #[test]
    fn ternary_attributes_partition_correctly() {
        // Non-binary attributes exercise Rule 2's footnote (any attribute
        // value mapped to 0 works); compare against the naive reference.
        assert_matches_reference(&PatternCombiner::default(), 9, 25);
    }
}
