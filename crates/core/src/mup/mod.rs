//! MUP identification algorithms (§III).
//!
//! All algorithms implement [`MupAlgorithm`] and return the same set of
//! maximal uncovered patterns, sorted for deterministic comparison:
//!
//! * [`NaiveMup`] — full enumeration + pairwise dominance elimination (§III-A);
//! * [`PatternBreaker`] — top-down BFS with Rule 1 (§III-C, Algorithm 1);
//! * [`PatternCombiner`] — bottom-up combination with Rule 2 (§III-D, Algorithm 2);
//! * [`DeepDiver`] — DFS dive + walk-up with MUP-dominance pruning (§III-E, Algorithm 3);
//! * [`Apriori`] — the frequent-itemset adaptation used as a baseline (§V-C).

mod apriori;
mod breaker;
mod combiner;
mod deepdiver;
mod naive;

pub use apriori::Apriori;
pub use breaker::PatternBreaker;
pub use combiner::PatternCombiner;
pub use deepdiver::DeepDiver;
pub use naive::NaiveMup;

use coverage_data::Dataset;
use coverage_index::{CoverageOracle, CoverageProvider};

use crate::error::Result;
use crate::pattern::Pattern;
use crate::Threshold;

/// Common interface of the MUP identification algorithms.
///
/// Every algorithm probes the data exclusively through the
/// [`CoverageProvider`] trait, so any backend — the canonical single-shard
/// [`CoverageOracle`], a [`coverage_index::ShardedOracle`], or a future
/// compressed/columnar/remote index — plugs in without touching algorithm
/// code.
pub trait MupAlgorithm {
    /// Human-readable algorithm name (as used in the paper's figures).
    fn name(&self) -> &'static str;

    /// Finds all maximal uncovered patterns given a prebuilt coverage
    /// provider and an absolute threshold `tau`.
    fn find_mups_with_oracle(
        &self,
        oracle: &dyn CoverageProvider,
        tau: u64,
    ) -> Result<Vec<Pattern>>;

    /// Convenience entry point: builds the canonical single-shard oracle,
    /// resolves the threshold, and returns the MUPs sorted lexicographically.
    fn find_mups(&self, dataset: &Dataset, threshold: Threshold) -> Result<Vec<Pattern>> {
        let oracle = CoverageOracle::from_dataset(dataset);
        let tau = threshold.resolve(dataset.len() as u64)?;
        let mut mups = self.find_mups_with_oracle(&oracle, tau)?;
        mups.sort();
        Ok(mups)
    }
}

/// Checks the MUP definition (Definition 5) for a single pattern against a
/// coverage provider: uncovered itself, every parent covered. Shared by
/// tests and the property suite.
pub fn is_mup(oracle: &dyn CoverageProvider, pattern: &Pattern, tau: u64) -> bool {
    oracle.coverage(pattern.codes()) < tau
        && pattern.parents().all(|p| oracle.coverage(p.codes()) >= tau)
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use coverage_data::Schema;

    /// Example 1 of the paper.
    pub fn example1() -> Dataset {
        Dataset::from_rows(
            Schema::binary(3).unwrap(),
            &[
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![0, 0, 0],
                vec![0, 1, 1],
                vec![0, 0, 1],
            ],
        )
        .unwrap()
    }

    /// The canonical single-shard provider over a dataset — the one place
    /// the algorithm tests name a concrete backend.
    pub fn oracle_for(dataset: &Dataset) -> CoverageOracle {
        CoverageOracle::from_dataset(dataset)
    }

    /// Runs an algorithm on Example 1 and asserts the single MUP `1XX`.
    pub fn assert_example1(alg: &dyn MupAlgorithm) {
        let mups = alg.find_mups(&example1(), Threshold::Count(1)).unwrap();
        assert_eq!(mups.len(), 1, "{}: {mups:?}", alg.name());
        assert_eq!(mups[0].to_string(), "1XX");
    }

    /// Asserts the algorithm agrees with a brute-force reference on a
    /// randomized dataset.
    pub fn assert_matches_reference(alg: &dyn MupAlgorithm, seed: u64, tau: u64) {
        let ds = coverage_data::generators::bluenile_like(300, seed)
            .unwrap()
            .project(&[1, 4, 5, 6])
            .unwrap();
        let oracle = oracle_for(&ds);
        let mut got = alg.find_mups_with_oracle(&oracle, tau).unwrap();
        got.sort();
        let mut expected = brute_force_mups(&oracle, tau);
        expected.sort();
        assert_eq!(got, expected, "{} seed={seed} tau={tau}", alg.name());
    }

    /// Brute-force MUP enumeration straight from Definition 5.
    pub fn brute_force_mups(oracle: &dyn CoverageProvider, tau: u64) -> Vec<Pattern> {
        let cards = oracle.cardinalities().to_vec();
        let mut all = vec![Pattern::all_x(cards.len())];
        let mut cursor = 0;
        while cursor < all.len() {
            let p = all[cursor].clone();
            all.extend(p.rule1_children(&cards));
            cursor += 1;
        }
        all.into_iter().filter(|p| is_mup(oracle, p, tau)).collect()
    }
}
