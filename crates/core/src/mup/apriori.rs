//! The APRIORI baseline (§V-C): MUP discovery recast as frequent-itemset
//! mining over ⟨attribute, value⟩ items.
//!
//! Each ⟨attribute, value⟩ pair becomes an item; a pattern corresponds to an
//! itemset with at most one item per attribute. Frequent itemsets (support ≥
//! τ) are grown level-wise with the classic join + subset-pruning candidate
//! generation; an infrequent candidate all of whose sub-itemsets are frequent
//! is exactly a maximal uncovered pattern — *when it is valid*. The paper
//! uses this adaptation to show why itemset mining is the wrong tool: the
//! item lattice (`2^Σc_i`) dwarfs the pattern graph (`Π(c_i+1)`), and joins
//! produce invalid candidates carrying two values of one attribute, which
//! must be generated, counted (support 0), and filtered.

use crate::fxhash::FxHashSet;

use coverage_index::{CoverageProvider, X};

use crate::error::{CoverageError, Result};
use crate::mup::MupAlgorithm;
use crate::pattern::Pattern;

/// The frequent-itemset adaptation.
#[derive(Debug, Clone)]
pub struct Apriori {
    /// Upper bound on the number of candidates per level before aborting.
    pub max_candidates_per_level: usize,
}

impl Default for Apriori {
    fn default() -> Self {
        Self {
            max_candidates_per_level: 50_000_000,
        }
    }
}

/// An item id encodes (attribute, value) through the offset table.
type Item = u32;

fn itemset_to_codes(
    itemset: &[Item],
    item_attr: &[usize],
    item_value: &[u8],
    d: usize,
) -> Option<Vec<u8>> {
    let mut codes = vec![X; d];
    for &item in itemset {
        let a = item_attr[item as usize];
        if codes[a] != X {
            return None; // two values of the same attribute: invalid pattern
        }
        codes[a] = item_value[item as usize];
    }
    Some(codes)
}

impl MupAlgorithm for Apriori {
    fn name(&self) -> &'static str {
        "Apriori"
    }

    fn find_mups_with_oracle(
        &self,
        oracle: &dyn CoverageProvider,
        tau: u64,
    ) -> Result<Vec<Pattern>> {
        let cards = oracle.cardinalities().to_vec();
        let d = cards.len();
        if tau == 0 {
            return Ok(Vec::new());
        }
        if oracle.total() < tau {
            // The empty itemset (the root pattern) is already infrequent.
            return Ok(vec![Pattern::all_x(d)]);
        }

        // Item table: one item per (attribute, value).
        let mut item_attr: Vec<usize> = Vec::new();
        let mut item_value: Vec<u8> = Vec::new();
        for (a, &c) in cards.iter().enumerate() {
            for v in 0..c {
                item_attr.push(a);
                item_value.push(v);
            }
        }

        let frequent_check = |itemset: &[Item]| -> bool {
            match itemset_to_codes(itemset, &item_attr, &item_value, d) {
                Some(codes) => oracle.covered(&codes, tau),
                None => false,
            }
        };

        let mut mups: Vec<Pattern> = Vec::new();
        // Level 1: every single item is a candidate (the empty set is frequent).
        let mut frequent: Vec<Vec<Item>> = Vec::new();
        for item in 0..item_attr.len() as Item {
            if frequent_check(&[item]) {
                frequent.push(vec![item]);
            } else {
                mups.push(Pattern::from_codes(
                    itemset_to_codes(&[item], &item_attr, &item_value, d)
                        .expect("single items are always valid"),
                ));
            }
        }

        let mut k = 1usize;
        while !frequent.is_empty() && k < item_attr.len() {
            if frequent.len() > self.max_candidates_per_level {
                return Err(CoverageError::SearchSpaceTooLarge {
                    algorithm: "Apriori",
                    size: frequent.len() as u128,
                    limit: self.max_candidates_per_level as u128,
                });
            }
            // Join step: pairs of frequent k-itemsets sharing their first
            // k-1 items. Itemsets are sorted lexicographically, so itemsets
            // with a common prefix form contiguous blocks — the join is
            // quadratic only within a block, not across all of L_k.
            frequent.sort_unstable();
            let frequent_set: FxHashSet<&[Item]> = frequent.iter().map(Vec::as_slice).collect();
            let mut candidates: Vec<Vec<Item>> = Vec::new();
            let mut block_start = 0;
            while block_start < frequent.len() {
                let prefix = &frequent[block_start][..k - 1];
                let mut block_end = block_start + 1;
                while block_end < frequent.len() && &frequent[block_end][..k - 1] == prefix {
                    block_end += 1;
                }
                for i in block_start..block_end {
                    for j in (i + 1)..block_end {
                        let mut cand = frequent[i].clone();
                        cand.push(frequent[j][k - 1]);
                        // Blocks are sorted, so `cand` is already sorted.
                        // Prune step: all k-subsets must be frequent.
                        let mut sub = Vec::with_capacity(k);
                        let all_frequent = (0..=k).all(|skip| {
                            sub.clear();
                            sub.extend(
                                cand.iter()
                                    .enumerate()
                                    .filter(|&(idx, _)| idx != skip)
                                    .map(|(_, &it)| it),
                            );
                            frequent_set.contains(sub.as_slice())
                        });
                        if all_frequent {
                            candidates.push(cand);
                        }
                        if candidates.len() > self.max_candidates_per_level {
                            return Err(CoverageError::SearchSpaceTooLarge {
                                algorithm: "Apriori",
                                size: candidates.len() as u128,
                                limit: self.max_candidates_per_level as u128,
                            });
                        }
                    }
                }
                block_start = block_end;
            }

            // Count step: frequent candidates continue; infrequent candidates
            // with all-frequent subsets are MUPs when they map to a valid
            // pattern.
            let mut next_frequent: Vec<Vec<Item>> = Vec::new();
            for cand in candidates {
                if frequent_check(&cand) {
                    next_frequent.push(cand);
                } else if let Some(codes) = itemset_to_codes(&cand, &item_attr, &item_value, d) {
                    mups.push(Pattern::from_codes(codes));
                }
            }
            frequent = next_frequent;
            k += 1;
        }
        Ok(mups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mup::test_support::{assert_example1, assert_matches_reference};
    use crate::Threshold;

    #[test]
    fn example1_single_mup() {
        assert_example1(&Apriori::default());
    }

    #[test]
    fn matches_brute_force_reference() {
        for (seed, tau) in [(1, 3), (2, 10), (3, 40)] {
            assert_matches_reference(&Apriori::default(), seed, tau);
        }
    }

    #[test]
    fn root_mup_when_dataset_too_small() {
        let ds = coverage_data::generators::airbnb_like(5, 4, 0).unwrap();
        let mups = Apriori::default()
            .find_mups(&ds, Threshold::Count(10))
            .unwrap();
        assert_eq!(mups.len(), 1);
        assert_eq!(mups[0].level(), 0);
    }

    #[test]
    fn invalid_itemsets_are_filtered() {
        // A dataset where both values of A1 are frequent: the join produces
        // the invalid itemset {A1=0, A1=1}, which must not appear as a MUP.
        let ds = coverage_data::Dataset::from_rows(
            coverage_data::Schema::binary(2).unwrap(),
            &(0..20).map(|i| vec![(i % 2) as u8, 0]).collect::<Vec<_>>(),
        )
        .unwrap();
        let mups = Apriori::default()
            .find_mups(&ds, Threshold::Count(3))
            .unwrap();
        for m in &mups {
            // Every reported pattern has at most one value per attribute by
            // construction; verify it satisfies Definition 5 too.
            let oracle = crate::mup::test_support::oracle_for(&ds);
            assert!(crate::mup::is_mup(&oracle, m, 3), "{m}");
        }
        // XX1 (A2 = 1 never occurs) is the expected MUP.
        assert!(mups.iter().any(|m| m.to_string() == "X1"));
    }

    #[test]
    fn candidate_guard_triggers() {
        let guard = Apriori {
            max_candidates_per_level: 1,
        };
        let ds = coverage_data::generators::airbnb_like(500, 8, 1).unwrap();
        assert!(matches!(
            guard.find_mups(&ds, Threshold::Count(400)),
            Err(CoverageError::SearchSpaceTooLarge { .. })
        ));
    }
}
