//! DEEPDIVER (§III-E, Algorithm 3): depth-first dives that reach uncovered
//! territory quickly, walk up to the responsible MUP, and then prune both
//! the ancestors and the descendants of every discovered MUP through the
//! bit-parallel dominance index of Appendix B.
//!
//! * a node **dominated by** a discovered MUP lies in a pruned subtree —
//!   skipped entirely;
//! * a node that **dominates** a discovered MUP is a covered ancestor — its
//!   coverage query is skipped and its children are expanded directly;
//! * otherwise the coverage oracle decides: covered nodes expand their Rule-1
//!   children; uncovered nodes trigger a walk-up (moving to any uncovered
//!   parent until none exists) that lands exactly on a new MUP.

use coverage_index::{CoverageProvider, MupDominanceIndex};

use crate::error::Result;
use crate::mup::MupAlgorithm;
use crate::pattern::Pattern;

/// The dive-and-prune algorithm.
#[derive(Debug, Clone, Default)]
pub struct DeepDiver {
    /// When set, exploration stops below this level: the output is the set
    /// of MUPs with level ≤ `max_level` (Fig 16's bounded discovery).
    pub max_level: Option<usize>,
}

impl DeepDiver {
    /// Bounded-level variant (§V-C3).
    pub fn with_max_level(max_level: usize) -> Self {
        Self {
            max_level: Some(max_level),
        }
    }

    /// Walk-up phase: starting from an uncovered pattern, repeatedly move to
    /// an uncovered parent; the fixed point has all parents covered and is
    /// therefore a MUP.
    fn climb(oracle: &dyn CoverageProvider, tau: u64, start: Pattern) -> Pattern {
        let mut current = start;
        'climb: loop {
            let uncovered_parent = current
                .parents()
                .find(|parent| !oracle.covered(parent.codes(), tau));
            match uncovered_parent {
                Some(parent) => {
                    current = parent;
                    continue 'climb;
                }
                None => return current,
            }
        }
    }
}

impl MupAlgorithm for DeepDiver {
    fn name(&self) -> &'static str {
        "DeepDiver"
    }

    fn find_mups_with_oracle(
        &self,
        oracle: &dyn CoverageProvider,
        tau: u64,
    ) -> Result<Vec<Pattern>> {
        let cards = oracle.cardinalities().to_vec();
        let d = cards.len();
        let depth = self.max_level.map_or(d, |m| m.min(d));

        let mut mups: Vec<Pattern> = Vec::new();
        let mut index = MupDominanceIndex::new(&cards);
        let mut stack: Vec<Pattern> = vec![Pattern::all_x(d)];

        while let Some(p) = stack.pop() {
            if !index.is_empty() && index.dominates_any(p.codes()) {
                // Ancestor of a known MUP — covered by Definition 5, so the
                // oracle is skipped and the dive continues. (A node *equal*
                // to a MUP discovered earlier by a climb also lands here;
                // its children are then generated but immediately rejected
                // below as dominated, so the output is unaffected.)
                if p.level() < depth {
                    stack.extend(p.rule1_children(&cards));
                }
                continue;
            }
            if !oracle.covered(p.codes(), tau) {
                // Only uncovered nodes can be dominated by a MUP, so the
                // (full-scan) dominance check is deferred until here.
                if !index.dominated_by_any(p.codes()) {
                    let mup = Self::climb(oracle, tau, p);
                    index.add(mup.codes());
                    mups.push(mup);
                }
            } else if p.level() < depth {
                stack.extend(p.rule1_children(&cards));
            }
        }
        Ok(mups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mup::test_support::{
        assert_example1, assert_matches_reference, brute_force_mups, example1, oracle_for,
    };
    use crate::Threshold;

    #[test]
    fn example1_single_mup() {
        assert_example1(&DeepDiver::default());
    }

    #[test]
    fn matches_brute_force_reference() {
        for (seed, tau) in [(1, 3), (2, 10), (3, 40), (4, 100)] {
            assert_matches_reference(&DeepDiver::default(), seed, tau);
        }
    }

    #[test]
    fn climb_finds_mup_from_deep_uncovered_node() {
        // §III-E example: the dive XXX → X0X → 10X reaches the uncovered
        // non-MUP 10X whose walk-up must land on 1XX.
        let oracle = oracle_for(&example1());
        let mup = DeepDiver::climb(&oracle, 1, Pattern::parse("10X").unwrap());
        assert_eq!(mup.to_string(), "1XX");
    }

    #[test]
    fn climb_on_mup_is_identity() {
        let oracle = oracle_for(&example1());
        let mup = DeepDiver::climb(&oracle, 1, Pattern::parse("1XX").unwrap());
        assert_eq!(mup.to_string(), "1XX");
    }

    #[test]
    fn level_bound_truncates_output() {
        let ds = coverage_data::generators::bluenile_like(500, 5).unwrap();
        let oracle = oracle_for(&ds);
        let mut expected: Vec<Pattern> = brute_force_mups(&oracle, 20)
            .into_iter()
            .filter(|p| p.level() <= 2)
            .collect();
        expected.sort();
        let bounded = DeepDiver::with_max_level(2)
            .find_mups(&ds, Threshold::Count(20))
            .unwrap();
        assert_eq!(bounded, expected);
    }

    #[test]
    fn diagonal_dataset_matches_theorem1_closed_form() {
        // Theorem 1: n items over n binary attributes, τ = n/2 + 1 ⇒
        // |M| = n + C(n, n/2).
        let n = 8usize;
        let ds = coverage_data::generators::diagonal_dataset(n).unwrap();
        let tau = (n / 2 + 1) as u64;
        let mups = DeepDiver::default()
            .find_mups(&ds, Threshold::Count(tau))
            .unwrap();
        let choose = |n: u64, k: u64| -> u64 { (1..=k).fold(1u64, |acc, i| acc * (n - i + 1) / i) };
        let expected = n as u64 + choose(n as u64, n as u64 / 2);
        assert_eq!(mups.len() as u64, expected);
        // All single-1 level-1 patterns are MUPs.
        let ones = mups
            .iter()
            .filter(|p| p.level() == 1 && (0..n).any(|i| p.get(i) == Some(1)));
        assert_eq!(ones.count(), n);
    }

    #[test]
    fn empty_dataset_root_is_mup() {
        let ds = coverage_data::Dataset::new(coverage_data::Schema::binary(5).unwrap());
        let mups = DeepDiver::default()
            .find_mups(&ds, Threshold::Count(1))
            .unwrap();
        assert_eq!(mups.len(), 1);
        assert_eq!(mups[0].level(), 0);
    }

    #[test]
    fn output_is_an_antichain() {
        let ds = coverage_data::generators::airbnb_like(400, 8, 12).unwrap();
        let mups = DeepDiver::default()
            .find_mups(&ds, Threshold::Count(12))
            .unwrap();
        for a in &mups {
            for b in &mups {
                if a != b {
                    assert!(!a.dominates(b), "{a} dominates {b}");
                }
            }
        }
    }
}
