//! The naïve MUP algorithm (§III-A): enumerate every pattern, keep the
//! uncovered ones, and eliminate the dominated ones pairwise.
//!
//! Time is `O(n·c⁺_A + u²)` and space `O(c⁺_A)`, so the algorithm refuses
//! pattern spaces larger than a configurable guard (the paper reports it
//! "did not finish for any of the settings within the time limit").

use coverage_index::CoverageProvider;

use crate::error::{CoverageError, Result};
use crate::graph::pattern_graph_stats;
use crate::mup::MupAlgorithm;
use crate::pattern::Pattern;

/// Configuration for the naïve algorithm.
#[derive(Debug, Clone)]
pub struct NaiveMup {
    /// Maximum number of patterns (`Π (c_i + 1)`) it will enumerate.
    pub max_patterns: u128,
}

impl Default for NaiveMup {
    fn default() -> Self {
        Self {
            max_patterns: 20_000_000,
        }
    }
}

impl MupAlgorithm for NaiveMup {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn find_mups_with_oracle(
        &self,
        oracle: &dyn CoverageProvider,
        tau: u64,
    ) -> Result<Vec<Pattern>> {
        let cards = oracle.cardinalities().to_vec();
        let stats = pattern_graph_stats(&cards);
        if stats.total_nodes > self.max_patterns {
            return Err(CoverageError::SearchSpaceTooLarge {
                algorithm: "Naive",
                size: stats.total_nodes,
                limit: self.max_patterns,
            });
        }
        // Enumerate all patterns (Rule 1 from the root covers each once) and
        // keep the uncovered ones.
        let mut uncovered: Vec<Pattern> = Vec::new();
        let mut queue = vec![Pattern::all_x(cards.len())];
        let mut cursor = 0;
        while cursor < queue.len() {
            let p = queue[cursor].clone();
            queue.extend(p.rule1_children(&cards));
            if !oracle.covered(p.codes(), tau) {
                uncovered.push(p);
            }
            cursor += 1;
        }
        // Pairwise dominance elimination: sorting by level first means a
        // pattern can only be dominated by an earlier (more general) one.
        uncovered.sort_by_key(Pattern::level);
        let mut maximal: Vec<Pattern> = Vec::new();
        'outer: for p in uncovered {
            for m in &maximal {
                if m.dominates(&p) {
                    continue 'outer;
                }
            }
            maximal.push(p);
        }
        Ok(maximal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mup::test_support::{assert_example1, assert_matches_reference};
    use crate::Threshold;

    #[test]
    fn example1_single_mup() {
        assert_example1(&NaiveMup::default());
    }

    #[test]
    fn example1_uncovered_count_matches_text() {
        // The paper: besides the MUP 1XX there are 8 dominated uncovered
        // patterns (9 uncovered in total).
        let ds = crate::mup::test_support::example1();
        let oracle = crate::mup::test_support::oracle_for(&ds);
        let cards = oracle.cardinalities().to_vec();
        let mut uncovered = 0;
        let mut queue = vec![Pattern::all_x(3)];
        let mut cursor = 0;
        while cursor < queue.len() {
            let p = queue[cursor].clone();
            queue.extend(p.rule1_children(&cards));
            if oracle.coverage(p.codes()) < 1 {
                uncovered += 1;
            }
            cursor += 1;
        }
        assert_eq!(uncovered, 9);
    }

    #[test]
    fn matches_brute_force_reference() {
        for (seed, tau) in [(1, 3), (2, 10), (3, 40)] {
            assert_matches_reference(&NaiveMup::default(), seed, tau);
        }
    }

    #[test]
    fn refuses_huge_spaces() {
        let guard = NaiveMup { max_patterns: 10 };
        let ds = coverage_data::generators::airbnb_like(50, 8, 0).unwrap();
        assert!(matches!(
            guard.find_mups(&ds, Threshold::Count(1)),
            Err(CoverageError::SearchSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn zero_threshold_yields_no_mups() {
        let ds = crate::mup::test_support::example1();
        let mups = NaiveMup::default()
            .find_mups(&ds, Threshold::Count(0))
            .unwrap();
        assert!(mups.is_empty());
    }

    #[test]
    fn threshold_above_n_makes_root_the_only_mup() {
        let ds = crate::mup::test_support::example1();
        let mups = NaiveMup::default()
            .find_mups(&ds, Threshold::Count(6))
            .unwrap();
        assert_eq!(mups.len(), 1);
        assert_eq!(mups[0].to_string(), "XXX");
    }
}
