//! A minimal Fx-style hasher for the hot pattern maps.
//!
//! The traversal algorithms probe hash maps keyed by short `[u8]` code
//! slices millions of times; SipHash's HashDoS resistance buys nothing there
//! (keys are machine-generated patterns) and costs 3–5×. This is the
//! classic Firefox/rustc multiply-rotate-xor hash specialized for our use.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The streaming hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(word));
            self.add(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_slices_hash_differently() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..16u8 {
            for b in 0..16u8 {
                let mut h = FxHasher::default();
                h.write(&[a, b, 0xFF]);
                seen.insert(h.finish());
            }
        }
        assert_eq!(seen.len(), 256, "no collisions on tiny patterns");
    }

    #[test]
    fn equal_slices_hash_equal() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn length_is_part_of_the_hash() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(&[0, 0, 0]);
        h2.write(&[0, 0]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut m: FxHashMap<Box<[u8]>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3].into_boxed_slice(), 7);
        assert_eq!(m.get([1u8, 2, 3].as_slice()), Some(&7));
        assert_eq!(m.get([1u8, 2].as_slice()), None);
    }
}
