//! Error types for the coverage algorithms.

use std::fmt;

/// Errors raised by MUP identification and coverage enhancement.
#[derive(Debug)]
pub enum CoverageError {
    /// A pattern's arity does not match the schema's.
    ArityMismatch {
        /// Arity of the supplied pattern.
        pattern: usize,
        /// Arity expected by the schema/oracle.
        expected: usize,
    },
    /// The requested enumeration would exceed the configured size guard
    /// (e.g. the naïve algorithm over a huge pattern space).
    SearchSpaceTooLarge {
        /// Name of the algorithm that refused to run.
        algorithm: &'static str,
        /// Size of the space it would have to enumerate.
        size: u128,
        /// The configured limit.
        limit: u128,
    },
    /// A threshold could not be resolved (e.g. a non-finite fraction).
    BadThreshold(String),
    /// Coverage enhancement cannot make progress: the remaining patterns are
    /// only matched by combinations the validation oracle rules out.
    Unhittable {
        /// Display strings of the patterns that cannot be hit.
        patterns: Vec<String>,
    },
    /// Propagated dataset error.
    Data(coverage_data::DataError),
}

impl fmt::Display for CoverageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageError::ArityMismatch { pattern, expected } => {
                write!(
                    f,
                    "pattern arity {pattern} does not match schema arity {expected}"
                )
            }
            CoverageError::SearchSpaceTooLarge {
                algorithm,
                size,
                limit,
            } => write!(
                f,
                "{algorithm}: search space of {size} nodes exceeds the limit of {limit}"
            ),
            CoverageError::BadThreshold(msg) => write!(f, "bad threshold: {msg}"),
            CoverageError::Unhittable { patterns } => write!(
                f,
                "no valid value combination hits the remaining pattern(s): {}",
                patterns.join(", ")
            ),
            CoverageError::Data(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoverageError {}

impl From<coverage_data::DataError> for CoverageError {
    fn from(e: coverage_data::DataError) -> Self {
        CoverageError::Data(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, CoverageError>;
