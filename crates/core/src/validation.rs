//! Validation rules and the validation oracle (§IV, Definitions 10–11).
//!
//! A rule is a set of ⟨attribute, value-set⟩ pairs; a pattern *satisfies* a
//! rule when each listed attribute holds one of the listed values. The
//! oracle accepts a pattern iff it satisfies **none** of its rules — e.g. a
//! rule `{⟨gender, {Male}⟩, ⟨isPregnant, {True}⟩}` rejects every combination
//! of a pregnant male.

use crate::pattern::{Pattern, X};

/// One semantic-invalidity rule (Definition 10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationRule {
    /// ⟨attribute index, forbidden-in-conjunction values⟩ clauses.
    clauses: Vec<(usize, Vec<u8>)>,
}

impl ValidationRule {
    /// Builds a rule from ⟨attribute, values⟩ clauses.
    ///
    /// Empty rules are meaningless (they would match everything) and are
    /// normalized to a never-matching rule.
    pub fn new(clauses: Vec<(usize, Vec<u8>)>) -> Self {
        Self { clauses }
    }

    /// Convenience constructor for a single-attribute rule: combinations
    /// with `attribute ∈ values` are invalid.
    pub fn forbid_values(attribute: usize, values: impl Into<Vec<u8>>) -> Self {
        Self::new(vec![(attribute, values.into())])
    }

    /// Convenience constructor for a two-attribute conjunction.
    pub fn forbid_pair(a: (usize, u8), b: (usize, u8)) -> Self {
        Self::new(vec![(a.0, vec![a.1]), (b.0, vec![b.1])])
    }

    /// The rule's clauses.
    pub fn clauses(&self) -> &[(usize, Vec<u8>)] {
        &self.clauses
    }

    /// Definition 10: `P` satisfies the rule iff every clause's attribute is
    /// deterministic in `P` with a value in the clause's set.
    pub fn satisfied_by(&self, pattern: &Pattern) -> bool {
        !self.clauses.is_empty()
            && self
                .clauses
                .iter()
                .all(|(attr, values)| pattern.get(*attr).is_some_and(|v| values.contains(&v)))
    }

    /// Prefix variant used during the greedy tree descent: the first
    /// `prefix.len()` attributes are assigned, the rest unknown. Returns
    /// `true` only when the rule is *already certainly* satisfied.
    pub fn satisfied_by_prefix(&self, prefix: &[u8]) -> bool {
        !self.clauses.is_empty()
            && self.clauses.iter().all(|(attr, values)| {
                *attr < prefix.len() && prefix[*attr] != X && values.contains(&prefix[*attr])
            })
    }
}

/// The validation oracle (Definition 11): a rule collection; a pattern is
/// valid iff it satisfies none of the rules.
#[derive(Debug, Clone, Default)]
pub struct ValidationOracle {
    rules: Vec<ValidationRule>,
}

impl ValidationOracle {
    /// An oracle that accepts everything.
    pub fn accept_all() -> Self {
        Self::default()
    }

    /// Builds an oracle from rules.
    pub fn new(rules: Vec<ValidationRule>) -> Self {
        Self { rules }
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: ValidationRule) {
        self.rules.push(rule);
    }

    /// The rules.
    pub fn rules(&self) -> &[ValidationRule] {
        &self.rules
    }

    /// Definition 11: `true` iff the pattern satisfies none of the rules.
    pub fn is_valid(&self, pattern: &Pattern) -> bool {
        !self.rules.iter().any(|r| r.satisfied_by(pattern))
    }

    /// Whether a partial assignment of the first `prefix.len()` attributes
    /// can still extend to a valid combination, i.e. no rule is already
    /// certainly satisfied. Used to prune the greedy enumeration tree.
    pub fn allows_prefix(&self, prefix: &[u8]) -> bool {
        !self.rules.iter().any(|r| r.satisfied_by_prefix(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pregnant_male_rule() {
        // §IV's example: {gender=Male, isPregnant=True} is invalid.
        let rule = ValidationRule::forbid_pair((0, 0), (1, 1));
        assert!(rule.satisfied_by(&Pattern::from_codes(vec![0, 1, X])));
        assert!(!rule.satisfied_by(&Pattern::from_codes(vec![1, 1, X])));
        assert!(!rule.satisfied_by(&Pattern::from_codes(vec![0, 0, X])));
        // Non-deterministic elements do not satisfy clauses.
        assert!(!rule.satisfied_by(&Pattern::from_codes(vec![X, 1, X])));
    }

    #[test]
    fn oracle_accepts_iff_no_rule_satisfied() {
        let oracle = ValidationOracle::new(vec![
            ValidationRule::forbid_values(2, vec![6]),
            ValidationRule::forbid_pair((1, 0), (3, 1)),
        ]);
        assert!(oracle.is_valid(&Pattern::from_codes(vec![0, 1, 5, 0])));
        assert!(!oracle.is_valid(&Pattern::from_codes(vec![0, 1, 6, 0])));
        assert!(!oracle.is_valid(&Pattern::from_codes(vec![0, 0, 5, 1])));
    }

    #[test]
    fn prefix_checks_are_conservative() {
        let oracle = ValidationOracle::new(vec![ValidationRule::forbid_pair((0, 0), (2, 1))]);
        // Prefix [0] — rule mentions attribute 2 which is unassigned: allowed.
        assert!(oracle.allows_prefix(&[0]));
        assert!(oracle.allows_prefix(&[0, 5]));
        // Prefix [0, 5, 1] fully satisfies the rule: rejected.
        assert!(!oracle.allows_prefix(&[0, 5, 1]));
        assert!(oracle.allows_prefix(&[1, 5, 1]));
    }

    #[test]
    fn empty_rule_matches_nothing() {
        let rule = ValidationRule::new(vec![]);
        assert!(!rule.satisfied_by(&Pattern::all_x(3)));
        assert!(!rule.satisfied_by_prefix(&[0, 0, 0]));
    }

    #[test]
    fn accept_all_is_identity() {
        let oracle = ValidationOracle::accept_all();
        assert!(oracle.is_valid(&Pattern::all_x(4)));
        assert!(oracle.allows_prefix(&[0, 1, 2, 3]));
    }
}
