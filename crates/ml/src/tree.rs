//! A CART-style decision tree for categorical attributes.
//!
//! §V-B2 of the paper trains a scikit-learn decision tree on the COMPAS
//! demographics to show that a model with acceptable *overall* accuracy can
//! fail badly on under-covered subgroups. This is the same model family
//! rebuilt for encoded categorical data: greedy top-down induction, gini
//! impurity, multiway splits (one branch per attribute value), with depth
//! and minimum-split-size controls.

use coverage_data::Dataset;

/// Tree induction hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). `usize::MAX` grows until pure.
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: usize::MAX,
            min_samples_split: 2,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prediction: bool,
    },
    Split {
        attribute: usize,
        /// One child per attribute value.
        children: Vec<Node>,
    },
}

/// A trained binary classifier over encoded categorical rows.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    arity: usize,
}

/// Gini impurity of a (positives, total) split.
fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fits a tree on a labeled dataset.
    ///
    /// # Panics
    ///
    /// Panics when the dataset is unlabeled or empty.
    pub fn fit(dataset: &Dataset, config: &TreeConfig) -> Self {
        assert!(dataset.is_labeled(), "DecisionTree::fit needs labels");
        assert!(!dataset.is_empty(), "DecisionTree::fit needs rows");
        let cards = dataset.schema().cardinalities();
        let indices: Vec<u32> = (0..dataset.len() as u32).collect();
        let root = Self::grow(dataset, &cards, &indices, 0, config);
        Self {
            root,
            arity: dataset.arity(),
        }
    }

    fn majority(dataset: &Dataset, indices: &[u32]) -> bool {
        let pos = indices
            .iter()
            .filter(|&&i| dataset.label(i as usize) == Some(true))
            .count();
        2 * pos >= indices.len()
    }

    fn grow(
        dataset: &Dataset,
        cards: &[u8],
        indices: &[u32],
        depth: usize,
        config: &TreeConfig,
    ) -> Node {
        let pos = indices
            .iter()
            .filter(|&&i| dataset.label(i as usize) == Some(true))
            .count();
        let total = indices.len();
        let pure = pos == 0 || pos == total;
        if pure || depth >= config.max_depth || total < config.min_samples_split {
            return Node::Leaf {
                prediction: 2 * pos >= total,
            };
        }

        // Choose the attribute whose multiway split minimizes weighted gini.
        let parent_gini = gini(pos, total);
        let mut best: Option<(f64, usize)> = None;
        for (attr, &card) in cards.iter().enumerate() {
            let c = card as usize;
            let mut pos_by_value = vec![0usize; c];
            let mut total_by_value = vec![0usize; c];
            for &i in indices {
                let v = dataset.row(i as usize)[attr] as usize;
                total_by_value[v] += 1;
                if dataset.label(i as usize) == Some(true) {
                    pos_by_value[v] += 1;
                }
            }
            // A split that puts everything in one branch is useless.
            if total_by_value.iter().filter(|&&t| t > 0).count() < 2 {
                continue;
            }
            let weighted: f64 = (0..c)
                .map(|v| gini(pos_by_value[v], total_by_value[v]) * total_by_value[v] as f64)
                .sum::<f64>()
                / total as f64;
            // Zero-gain splits are allowed (as in scikit-learn's default
            // min_impurity_decrease = 0), which is what lets the tree fit
            // XOR-like interactions level by level.
            if weighted <= parent_gini + 1e-12 && best.is_none_or(|(bg, _)| weighted < bg) {
                best = Some((weighted, attr));
            }
        }
        let Some((_, attribute)) = best else {
            return Node::Leaf {
                prediction: 2 * pos >= total,
            };
        };

        let c = cards[attribute] as usize;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); c];
        for &i in indices {
            buckets[dataset.row(i as usize)[attribute] as usize].push(i);
        }
        let fallback = Self::majority(dataset, indices);
        let children = buckets
            .into_iter()
            .map(|bucket| {
                if bucket.is_empty() {
                    Node::Leaf {
                        prediction: fallback,
                    }
                } else {
                    Self::grow(dataset, cards, &bucket, depth + 1, config)
                }
            })
            .collect();
        Node::Split {
            attribute,
            children,
        }
    }

    /// Predicts the label of one row.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range values.
    pub fn predict(&self, row: &[u8]) -> bool {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { prediction } => return *prediction,
                Node::Split {
                    attribute,
                    children,
                } => node = &children[row[*attribute] as usize],
            }
        }
    }

    /// Predicts every row of a dataset.
    pub fn predict_all(&self, dataset: &Dataset) -> Vec<bool> {
        dataset.rows().map(|r| self.predict(r)).collect()
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { children, .. } => 1 + children.iter().map(count).sum::<usize>(),
            }
        }
        count(&self.root)
    }

    /// Depth of the tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { children, .. } => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        depth(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::Schema;

    fn xor_dataset() -> Dataset {
        // label = A1 XOR A2 — requires depth 2 to fit.
        let rows: Vec<Vec<u8>> = (0..40).map(|i| vec![(i / 2) % 2, i % 2]).collect();
        let labels: Vec<bool> = rows.iter().map(|r| (r[0] ^ r[1]) == 1).collect();
        Dataset::from_labeled_rows(Schema::binary(2).unwrap(), &rows, &labels).unwrap()
    }

    #[test]
    fn fits_xor_exactly() {
        let ds = xor_dataset();
        let tree = DecisionTree::fit(&ds, &TreeConfig::default());
        for i in 0..ds.len() {
            assert_eq!(tree.predict(ds.row(i)), ds.label(i).unwrap());
        }
        assert_eq!(tree.depth(), 2);
    }

    #[test]
    fn depth_limit_forces_underfit() {
        let ds = xor_dataset();
        let stump = DecisionTree::fit(
            &ds,
            &TreeConfig {
                max_depth: 0,
                ..Default::default()
            },
        );
        assert_eq!(stump.depth(), 0);
        // A stump on XOR gets exactly half right.
        let correct = (0..ds.len())
            .filter(|&i| stump.predict(ds.row(i)) == ds.label(i).unwrap())
            .count();
        assert_eq!(correct, ds.len() / 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let rows = vec![vec![0, 0], vec![1, 1], vec![0, 1]];
        let ds = Dataset::from_labeled_rows(Schema::binary(2).unwrap(), &rows, &[true, true, true])
            .unwrap();
        let tree = DecisionTree::fit(&ds, &TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert!(tree.predict(&[1, 0]));
    }

    #[test]
    fn multiway_split_on_high_cardinality() {
        // label = (A1 == 2), A1 ternary.
        let rows: Vec<Vec<u8>> = (0..30).map(|i| vec![(i % 3) as u8]).collect();
        let labels: Vec<bool> = rows.iter().map(|r| r[0] == 2).collect();
        let schema = Schema::with_cardinalities(&[3]).unwrap();
        let ds = Dataset::from_labeled_rows(schema, &rows, &labels).unwrap();
        let tree = DecisionTree::fit(&ds, &TreeConfig::default());
        assert!(tree.predict(&[2]));
        assert!(!tree.predict(&[0]));
        assert!(!tree.predict(&[1]));
    }

    #[test]
    fn min_samples_split_stops_growth() {
        let ds = xor_dataset();
        let tree = DecisionTree::fit(
            &ds,
            &TreeConfig {
                min_samples_split: 100,
                ..Default::default()
            },
        );
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "needs labels")]
    fn unlabeled_data_panics() {
        let ds = Dataset::from_rows(Schema::binary(1).unwrap(), &[vec![0]]).unwrap();
        DecisionTree::fit(&ds, &TreeConfig::default());
    }

    #[test]
    fn unseen_value_uses_majority_fallback() {
        // Train where A1=2 never occurs; prediction falls back to majority.
        let schema = Schema::with_cardinalities(&[3, 2]).unwrap();
        let rows = vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1], vec![0, 0]];
        let labels = vec![true, true, false, false, true];
        let ds = Dataset::from_labeled_rows(schema, &rows, &labels).unwrap();
        let tree = DecisionTree::fit(&ds, &TreeConfig::default());
        // Majority overall is `true` (3/5): the empty A1=2 branch predicts it.
        assert!(tree.predict(&[2, 0]));
    }
}
