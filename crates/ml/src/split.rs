//! Seeded train/test splitting and k-fold cross-validation over [`Dataset`]s.

use coverage_data::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Selects the rows at `indices` (with labels) into a new dataset.
///
/// # Panics
///
/// Panics when an index is out of range.
pub fn take_rows(dataset: &Dataset, indices: &[usize]) -> Dataset {
    let mut out = Dataset::new(dataset.schema().clone());
    for &i in indices {
        match dataset.label(i) {
            Some(label) => out
                .push_labeled_row(dataset.row(i), label)
                .expect("row was valid in the source dataset"),
            None => out
                .push_row(dataset.row(i))
                .expect("row was valid in the source dataset"),
        }
    }
    out
}

/// Splits into (train, test) with `test_fraction` of rows in the test set,
/// shuffled deterministically by `seed`.
pub fn train_test_split(dataset: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1]"
    );
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    let test_len = ((dataset.len() as f64) * test_fraction).round() as usize;
    let (test_idx, train_idx) = indices.split_at(test_len.min(dataset.len()));
    (take_rows(dataset, train_idx), take_rows(dataset, test_idx))
}

/// Yields `k` (train, test) folds for cross-validation, shuffled by `seed`.
///
/// # Panics
///
/// Panics when `k < 2` or `k > dataset.len()`.
pub fn k_folds(dataset: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(k <= dataset.len(), "k-fold needs k <= n");
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let test_idx: Vec<usize> = indices.iter().copied().skip(f).step_by(k).collect();
        let train_idx: Vec<usize> = indices
            .iter()
            .copied()
            .enumerate()
            .filter(|(pos, _)| pos % k != f)
            .map(|(_, i)| i)
            .collect();
        folds.push((
            take_rows(dataset, &train_idx),
            take_rows(dataset, &test_idx),
        ));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::Schema;

    fn labeled(n: usize) -> Dataset {
        let rows: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 2) as u8]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        Dataset::from_labeled_rows(Schema::binary(1).unwrap(), &rows, &labels).unwrap()
    }

    #[test]
    fn split_sizes_add_up() {
        let ds = labeled(100);
        let (train, test) = train_test_split(&ds, 0.2, 7);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
        assert!(train.is_labeled() && test.is_labeled());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let ds = labeled(50);
        let (a, _) = train_test_split(&ds, 0.3, 42);
        let (b, _) = train_test_split(&ds, 0.3, 42);
        let (c, _) = train_test_split(&ds, 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn folds_partition_the_data() {
        let ds = labeled(30);
        let folds = k_folds(&ds, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut test_total = 0;
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 30);
            test_total += test.len();
        }
        assert_eq!(test_total, 30);
    }

    #[test]
    fn take_rows_preserves_labels() {
        let ds = labeled(10);
        let sub = take_rows(&ds, &[0, 3, 6]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.label(0), ds.label(0));
        assert_eq!(sub.label(1), ds.label(3));
        assert_eq!(sub.row(2), ds.row(6));
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn one_fold_panics() {
        k_folds(&labeled(10), 1, 0);
    }
}
