//! # coverage-ml
//!
//! The machine-learning substrate behind the paper's coverage-impact
//! experiment (§V-B2, Fig 11): a CART-style decision tree over categorical
//! attributes, binary-classification metrics (accuracy / F1 / confusion
//! matrix), and seeded train-test / k-fold utilities.
//!
//! The paper used scikit-learn's `DecisionTreeClassifier`; this crate
//! rebuilds the same model family natively so the whole reproduction is
//! self-contained Rust.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod split;
mod tree;

pub use metrics::{accuracy, f1_score, ConfusionMatrix};
pub use split::{k_folds, take_rows, train_test_split};
pub use tree::{DecisionTree, TreeConfig};

use coverage_data::Dataset;

/// Trains on `train`, evaluates on `test`, and returns the confusion matrix
/// — the one-line harness used throughout the Fig 11 experiment.
pub fn train_and_evaluate(train: &Dataset, test: &Dataset, config: &TreeConfig) -> ConfusionMatrix {
    let tree = DecisionTree::fit(train, config);
    let predicted = tree.predict_all(test);
    ConfusionMatrix::from_predictions(&predicted, test.labels())
}

/// Mean cross-validated (accuracy, f1) over `k` folds.
pub fn cross_validate(dataset: &Dataset, k: usize, seed: u64, config: &TreeConfig) -> (f64, f64) {
    let folds = k_folds(dataset, k, seed);
    let mut acc = 0.0;
    let mut f1 = 0.0;
    let n = folds.len() as f64;
    for (train, test) in folds {
        let m = train_and_evaluate(&train, &test, config);
        acc += m.accuracy();
        f1 += m.f1();
    }
    (acc / n, f1 / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::generators::{compas_like, CompasConfig};

    #[test]
    fn compas_cross_validation_in_paper_range() {
        // §V-B2: "accuracy and f1 measures of 0.76 and 0.7 over a random
        // test set". The synthetic stand-in should land in the same band.
        let ds = compas_like(&CompasConfig::default()).unwrap();
        let (acc, f1) = cross_validate(&ds, 5, 11, &TreeConfig::default());
        assert!(acc > 0.65 && acc < 0.9, "accuracy {acc}");
        assert!(f1 > 0.55 && f1 < 0.9, "f1 {f1}");
    }

    #[test]
    fn train_and_evaluate_smoke() {
        let ds = compas_like(&CompasConfig {
            n: 1_000,
            ..Default::default()
        })
        .unwrap();
        let (train, test) = train_test_split(&ds, 0.2, 3);
        let m = train_and_evaluate(&train, &test, &TreeConfig::default());
        assert_eq!(m.total(), test.len());
        assert!(m.accuracy() > 0.5);
    }
}
