//! Binary-classification metrics: confusion matrix, accuracy, precision,
//! recall, and the F1 measure reported in Fig 11.

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// True negatives.
    pub tn: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Accumulates predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        let mut m = Self::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => m.tp += 1,
                (false, false) => m.tn += 1,
                (true, false) => m.fp += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Fraction of correct predictions (0 on empty input).
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }

    /// Positive-class precision (0 when nothing was predicted positive).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Positive-class recall (0 when there are no positives).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1: the harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Convenience accuracy over parallel slices.
pub fn accuracy(predicted: &[bool], actual: &[bool]) -> f64 {
    ConfusionMatrix::from_predictions(predicted, actual).accuracy()
}

/// Convenience F1 over parallel slices.
pub fn f1_score(predicted: &[bool], actual: &[bool]) -> f64 {
    ConfusionMatrix::from_predictions(predicted, actual).f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [true, false, true, true];
        let m = ConfusionMatrix::from_predictions(&y, &y);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn known_confusion_counts() {
        let predicted = [true, true, false, false, true];
        let actual = [true, false, false, true, true];
        let m = ConfusionMatrix::from_predictions(&predicted, &actual);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 1, 1, 1));
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
        // All-negative predictions on all-negative truth: accuracy 1, f1 0.
        let m = ConfusionMatrix::from_predictions(&[false; 4], &[false; 4]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        ConfusionMatrix::from_predictions(&[true], &[true, false]);
    }

    #[test]
    fn helpers_match_matrix() {
        let p = [true, false, true];
        let a = [false, false, true];
        let m = ConfusionMatrix::from_predictions(&p, &a);
        assert_eq!(accuracy(&p, &a), m.accuracy());
        assert_eq!(f1_score(&p, &a), m.f1());
    }
}
