//! Microbenchmarks for the pattern algebra: matching, Rule 1 / Rule 2
//! generation, dominance, and the Appendix C level expansion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coverage_core::pattern::Pattern;

fn bench_pattern_ops(c: &mut Criterion) {
    let cards = vec![2u8; 20];
    let p = Pattern::parse("1X0X1X0X1X0X1X0X1X0X").expect("pattern");
    let tuple: Vec<u8> = (0..20).map(|i| (i % 2) as u8).collect();

    c.bench_function("pattern_matches_d20", |b| {
        b.iter(|| black_box(p.matches(black_box(&tuple))));
    });

    c.bench_function("pattern_rule1_children_d20", |b| {
        b.iter(|| black_box(p.rule1_children(black_box(&cards))));
    });

    c.bench_function("pattern_rule2_parents_d20", |b| {
        b.iter(|| black_box(p.rule2_parents()));
    });

    let q = Pattern::parse("1X0X1X0X1X0X1X0X1X0X").expect("pattern");
    c.bench_function("pattern_dominates_d20", |b| {
        b.iter(|| black_box(p.dominates(black_box(&q))));
    });

    let mup = Pattern::parse("1XXXXXXXXXXXXXXXXXXX").expect("pattern");
    c.bench_function("descendants_at_level_4_d20", |b| {
        b.iter(|| black_box(mup.descendants_at_level(black_box(&cards), 4).len()));
    });
}

criterion_group!(benches, bench_pattern_ops);
criterion_main!(benches);
