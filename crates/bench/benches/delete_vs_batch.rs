//! MUP maintenance over a mixed 1k insert/delete stream: the incremental
//! [`CoverageEngine`] delete delta versus re-running full DEEPDIVER
//! discovery after every op. Both sides see the same stream and the
//! recompute baseline reuses the incrementally maintained oracle
//! (`add_row`/`remove_row`), so the measured gap is purely discovery work.
//!
//! Besides the Criterion timings, a one-shot summary reports the observed
//! per-op speedup, asserts both strategies land on the same MUP set, and
//! asserts the delete delta clears the 10× bar the serving layer is sized
//! around.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use coverage_core::mup::{DeepDiver, MupAlgorithm};
use coverage_core::Threshold;
use coverage_data::generators::airbnb_like;
use coverage_data::Dataset;
use coverage_index::CoverageOracle;
use coverage_service::CoverageEngine;

const TAU: u64 = 25;
const OPS: usize = 1_000;

/// One streamed mutation.
enum Op {
    Insert(Vec<u8>),
    Delete(Vec<u8>),
}

/// Base dataset plus a 1,000-op mixed stream: two inserts, then a delete of
/// the oldest still-present inserted row — every delete targets a row that
/// is guaranteed to exist, and the dataset drifts slowly upward (~+445
/// rows) so both delta paths stay busy around a moving frontier.
fn workload() -> (Dataset, Vec<Op>) {
    let base = airbnb_like(2_000, 6, 7).expect("generator");
    let pool = airbnb_like(700, 6, 99).expect("generator");
    let pool: Vec<Vec<u8>> = pool.rows().map(<[u8]>::to_vec).collect();
    let mut ops = Vec::with_capacity(OPS);
    let mut inserted = 0usize;
    let mut deleted = 0usize;
    for i in 0..OPS {
        if i % 3 == 2 {
            ops.push(Op::Delete(pool[deleted].clone()));
            deleted += 1;
        } else {
            ops.push(Op::Insert(pool[inserted].clone()));
            inserted += 1;
        }
    }
    assert!(deleted <= inserted, "deletes must lag inserts");
    (base, ops)
}

/// Incremental path: one engine, insert/delete deltas per op.
fn run_incremental(base: &Dataset, ops: &[Op]) -> usize {
    let mut engine = CoverageEngine::new(base.clone(), Threshold::Count(TAU)).expect("engine");
    for op in ops {
        match op {
            Op::Insert(row) => engine.insert(row).expect("insert"),
            Op::Delete(row) => engine.remove(row).expect("delete"),
        }
    }
    engine.mups().len()
}

/// Baseline: apply each op to the oracle, then re-run full DEEPDIVER
/// discovery from the root — all prior discovery work is thrown away.
fn run_full_recompute(base: &Dataset, ops: &[Op]) -> usize {
    let mut oracle = CoverageOracle::from_dataset(base);
    let mut mups = Vec::new();
    for op in ops {
        match op {
            Op::Insert(row) => {
                oracle.add_row(row);
            }
            Op::Delete(row) => {
                assert!(oracle.remove_row(row), "deleted row must be present");
            }
        }
        mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, TAU)
            .expect("mups");
    }
    mups.len()
}

fn bench_delete_vs_batch(c: &mut Criterion) {
    let (base, ops) = workload();

    // One-shot equivalence check + speedup summary outside the harness.
    let start = Instant::now();
    let incremental_mups = run_incremental(&base, &ops);
    let incremental_time = start.elapsed();
    let start = Instant::now();
    let recompute_mups = run_full_recompute(&base, &ops);
    let recompute_time = start.elapsed();
    assert_eq!(
        incremental_mups, recompute_mups,
        "incremental and batch MUP sets diverged"
    );
    let speedup = recompute_time.as_secs_f64() / incremental_time.as_secs_f64();
    println!(
        "delete_vs_batch summary: {OPS} mixed ops → \
         incremental {incremental_time:?} vs full recompute {recompute_time:?} \
         ({speedup:.1}x speedup, {incremental_mups} final MUPs)"
    );
    assert!(
        speedup >= 10.0,
        "delete delta must beat per-op DEEPDIVER recompute by ≥ 10× (got {speedup:.1}×)"
    );

    let mut group = c.benchmark_group("mup_maintenance_mixed_1k_stream");
    group.sample_size(10);
    group.bench_function("incremental_engine_per_op", |b| {
        b.iter(|| black_box(run_incremental(black_box(&base), black_box(&ops))));
    });
    group.bench_function("deepdiver_recompute_per_op", |b| {
        b.iter(|| black_box(run_full_recompute(black_box(&base), black_box(&ops))));
    });
    group.finish();
}

criterion_group!(benches, bench_delete_vs_batch);
criterion_main!(benches);
