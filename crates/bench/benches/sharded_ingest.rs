//! Multi-core ingest: the [`ShardedOracle`] (4 row shards, parallel
//! shard-local ingest and build) versus the single-shard oracle at n≈50k,
//! plus mixed insert/delete streams through the serving engine over both
//! layouts.
//!
//! Besides the Criterion timings, a one-shot summary reports the observed
//! batch-ingest and mixed-stream speedups and asserts:
//!
//! * **equivalence** — DEEPDIVER over the 4-shard oracle, the 1-shard
//!   oracle, and both engines lands on the identical MUP set (always);
//! * **throughput** — ≥ 2× batch-ingest speedup for 4 shards vs 1, and no
//!   mixed-stream regression (the mixed stream parallelizes its ingest and
//!   wide-probe portions, but the delta walks between batches are
//!   inherently sequential, so its ceiling is Amdahl-bound below the pure
//!   ingest number). Both checks run only on machines with ≥ 4 cores; on
//!   smaller hosts the summary prints the observed ratios and skips the
//!   assertions, since row-partitioned work cannot beat sequential work
//!   without cores to run it on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use coverage_core::mup::{DeepDiver, MupAlgorithm};
use coverage_core::pattern::Pattern;
use coverage_core::Threshold;
use coverage_data::generators::airbnb_like;
use coverage_data::Dataset;
use coverage_index::{CoverageOracle, CoverageProvider, ShardedOracle};
use coverage_service::ShardedCoverageEngine;

const N: usize = 50_000;
const D: usize = 6;
const TAU: u64 = 25;
const SHARDS: usize = 4;
const INGEST_BATCH: usize = 10_000;
const MIXED_OPS_BATCH: usize = 1_000;

/// The 50k-row ingest stream plus an insert-heavy mixed-op stream (10k
/// inserts interleaved with 500 deletes of already-ingested rows — the
/// write mix of a growing serving deployment).
fn workload() -> (Dataset, Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let base = airbnb_like(N, D, 7).expect("generator");
    let inserts: Vec<Vec<u8>> = airbnb_like(10_000, D, 99)
        .expect("generator")
        .rows()
        .map(<[u8]>::to_vec)
        .collect();
    let deletes: Vec<Vec<u8>> = base.rows().take(500).map(<[u8]>::to_vec).collect();
    (base, inserts, deletes)
}

/// Batch-ingests every row of `base` into an initially empty sharded oracle.
fn batch_ingest(base: &Dataset, shards: usize) -> ShardedOracle {
    let mut oracle =
        ShardedOracle::<CoverageOracle>::from_dataset(&Dataset::new(base.schema().clone()), shards);
    let rows: Vec<&[u8]> = base.rows().collect();
    for chunk in rows.chunks(INGEST_BATCH) {
        oracle.add_rows(chunk);
    }
    oracle
}

/// Runs the mixed stream through a pre-built engine: alternating insert and
/// delete batches, the steady-state write workload of `mithra serve`.
fn run_mixed_stream(engine: &mut ShardedCoverageEngine, inserts: &[Vec<u8>], deletes: &[Vec<u8>]) {
    let mut ins = inserts.chunks(MIXED_OPS_BATCH);
    let mut del = deletes.chunks(MIXED_OPS_BATCH / 2);
    loop {
        match (ins.next(), del.next()) {
            (None, None) => break,
            (i, d) => {
                if let Some(chunk) = i {
                    engine.insert_batch(chunk).expect("insert");
                }
                if let Some(chunk) = d {
                    engine.remove_batch(chunk).expect("delete");
                }
            }
        }
    }
}

/// Best-of-3 wall clock of `f`'s self-reported duration: one-shot timings
/// of millisecond-scale work are too noisy to gate an assertion on, and
/// the minimum is the standard scheduler-noise filter.
fn best_of_3(mut f: impl FnMut() -> Duration) -> Duration {
    (0..3).map(|_| f()).min().expect("ran at least once")
}

fn bench_sharded_ingest(c: &mut Criterion) {
    let (base, inserts, deletes) = workload();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // --- One-shot equivalence + throughput summary -----------------------
    let single = batch_ingest(&base, 1);
    let sharded = batch_ingest(&base, SHARDS);
    assert_eq!(single.total(), N as u64);
    assert_eq!(sharded.total(), N as u64);
    let mups = |oracle: &ShardedOracle| -> Vec<Pattern> {
        let mut m = DeepDiver::default()
            .find_mups_with_oracle(oracle, TAU)
            .expect("mups");
        m.sort();
        m
    };
    let mups_single = mups(&single);
    let mups_sharded = mups(&sharded);
    assert_eq!(
        mups_single, mups_sharded,
        "1-shard and 4-shard MUP sets diverged after batch ingest"
    );
    let t_ingest_1 = best_of_3(|| {
        let start = Instant::now();
        black_box(batch_ingest(&base, 1).total());
        start.elapsed()
    });
    let t_ingest_4 = best_of_3(|| {
        let start = Instant::now();
        black_box(batch_ingest(&base, SHARDS).total());
        start.elapsed()
    });

    // Mixed stream: each timed run starts from a pristine clone of the
    // audited engine (the stream is not idempotent — its deletes would be
    // absent on a second pass); only the stream itself is on the clock.
    let proto_1 =
        ShardedCoverageEngine::with_shards(base.clone(), Threshold::Count(TAU), 1).expect("engine");
    let proto_4 = ShardedCoverageEngine::with_shards(base.clone(), Threshold::Count(TAU), SHARDS)
        .expect("engine");
    let mut engine_1 = proto_1.clone();
    let mut engine_4 = proto_4.clone();
    run_mixed_stream(&mut engine_1, &inserts, &deletes);
    run_mixed_stream(&mut engine_4, &inserts, &deletes);
    assert_eq!(
        engine_1.mups(),
        engine_4.mups(),
        "1-shard and 4-shard engines diverged after the mixed stream"
    );
    let time_mixed = |proto: &ShardedCoverageEngine| {
        best_of_3(|| {
            let mut engine = proto.clone();
            let start = Instant::now();
            run_mixed_stream(&mut engine, &inserts, &deletes);
            start.elapsed()
        })
    };
    let t_mixed_1 = time_mixed(&proto_1);
    let t_mixed_4 = time_mixed(&proto_4);

    let ingest_speedup = t_ingest_1.as_secs_f64() / t_ingest_4.as_secs_f64();
    let mixed_speedup = t_mixed_1.as_secs_f64() / t_mixed_4.as_secs_f64();
    println!(
        "sharded_ingest summary: n={N}, {SHARDS} shards, {cores} core(s) — \
         batch ingest {t_ingest_1:?} → {t_ingest_4:?} ({ingest_speedup:.2}x), \
         mixed stream {t_mixed_1:?} → {t_mixed_4:?} ({mixed_speedup:.2}x), \
         {} final MUPs",
        mups_single.len(),
    );
    if cores >= 4 {
        assert!(
            ingest_speedup >= 2.0,
            "expected ≥2x batch-ingest speedup for {SHARDS} shards on {cores} cores, \
             got {ingest_speedup:.2}x"
        );
        // The mixed stream's delta walks are sequential between batches, so
        // its ceiling is Amdahl-bound below the pure ingest number — gate
        // on "sharding must not cost throughput" rather than a fixed
        // multiple.
        assert!(
            mixed_speedup >= 1.0,
            "sharding must not slow the mixed stream down on {cores} cores, \
             got {mixed_speedup:.2}x"
        );
    } else {
        println!(
            "sharded_ingest: < 4 cores available — speedup assertions skipped \
             (row-partitioned work cannot outrun sequential work without cores)"
        );
    }

    // --- Criterion timings ----------------------------------------------
    let mut group = c.benchmark_group("sharded_ingest_50k");
    group.sample_size(10);
    group.bench_function("batch_ingest_1_shard", |b| {
        b.iter(|| black_box(batch_ingest(black_box(&base), 1).total()));
    });
    group.bench_function("batch_ingest_4_shards", |b| {
        b.iter(|| black_box(batch_ingest(black_box(&base), SHARDS).total()));
    });
    group.bench_function("build_from_dataset_4_shards", |b| {
        b.iter(|| {
            black_box(
                ShardedOracle::<CoverageOracle>::from_dataset(black_box(&base), SHARDS).total(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_ingest);
criterion_main!(benches);
