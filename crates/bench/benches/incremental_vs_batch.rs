//! MUP maintenance over a 1k-insert stream: the incremental
//! [`CoverageEngine`] versus the pre-service-layer option of re-running full
//! DEEPDIVER discovery after every insert. Both sides see the same stream
//! and the recompute baseline already reuses the incrementally maintained
//! oracle, so the measured gap is purely discovery work, not index
//! rebuilding. Batched variants (50 inserts per round) are included as
//! secondary data points.
//!
//! Besides the Criterion timings, a one-shot summary line reports the
//! observed per-insert speedup and asserts every strategy lands on the same
//! MUP set.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use coverage_core::mup::{DeepDiver, MupAlgorithm};
use coverage_core::Threshold;
use coverage_data::generators::airbnb_like;
use coverage_data::Dataset;
use coverage_index::CoverageOracle;
use coverage_service::CoverageEngine;

const TAU: u64 = 25;
const BATCH: usize = 50;

/// Base dataset plus a 1,000-row insert stream over the same schema.
fn workload() -> (Dataset, Vec<Vec<u8>>) {
    let base = airbnb_like(2_000, 6, 7).expect("generator");
    let stream_src = airbnb_like(1_000, 6, 99).expect("generator");
    let stream: Vec<Vec<u8>> = stream_src.rows().map(<[u8]>::to_vec).collect();
    (base, stream)
}

/// Incremental path: one engine, delta maintenance per round of `batch`
/// inserts (1 = the streaming steady state).
fn run_incremental(base: &Dataset, stream: &[Vec<u8>], batch: usize) -> usize {
    let mut engine = CoverageEngine::new(base.clone(), Threshold::Count(TAU)).expect("engine");
    for chunk in stream.chunks(batch) {
        engine.insert_batch(chunk).expect("insert");
    }
    engine.mups().len()
}

/// Baseline: ingest each round into the oracle, then re-run full DEEPDIVER
/// discovery from the root — all prior discovery work is thrown away.
fn run_full_recompute(base: &Dataset, stream: &[Vec<u8>], batch: usize) -> usize {
    let mut oracle = CoverageOracle::from_dataset(base);
    let mut mups = Vec::new();
    for chunk in stream.chunks(batch) {
        for row in chunk {
            oracle.add_row(row);
        }
        mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, TAU)
            .expect("mups");
    }
    mups.len()
}

fn bench_incremental_vs_batch(c: &mut Criterion) {
    let (base, stream) = workload();

    // One-shot equivalence check + speedup summary outside the harness.
    let start = Instant::now();
    let incremental_mups = run_incremental(&base, &stream, 1);
    let incremental_time = start.elapsed();
    let start = Instant::now();
    let recompute_mups = run_full_recompute(&base, &stream, 1);
    let recompute_time = start.elapsed();
    assert_eq!(
        incremental_mups, recompute_mups,
        "incremental and batch MUP sets diverged"
    );
    assert_eq!(incremental_mups, run_incremental(&base, &stream, BATCH));
    assert_eq!(incremental_mups, run_full_recompute(&base, &stream, BATCH));
    println!(
        "incremental_vs_batch summary: {} per-insert updates → \
         incremental {incremental_time:?} vs full recompute {recompute_time:?} \
         ({:.1}x speedup, {} final MUPs)",
        stream.len(),
        recompute_time.as_secs_f64() / incremental_time.as_secs_f64(),
        incremental_mups,
    );

    let mut group = c.benchmark_group("mup_maintenance_1k_stream");
    group.sample_size(10);
    group.bench_function("incremental_engine_per_insert", |b| {
        b.iter(|| black_box(run_incremental(black_box(&base), black_box(&stream), 1)));
    });
    group.bench_function("deepdiver_recompute_per_insert", |b| {
        b.iter(|| black_box(run_full_recompute(black_box(&base), black_box(&stream), 1)));
    });
    group.bench_function("incremental_engine_batch50", |b| {
        b.iter(|| black_box(run_incremental(black_box(&base), black_box(&stream), BATCH)));
    });
    group.bench_function("deepdiver_recompute_batch50", |b| {
        b.iter(|| {
            black_box(run_full_recompute(
                black_box(&base),
                black_box(&stream),
                BATCH,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_batch);
criterion_main!(benches);
