//! Microbenchmarks for the synthetic workload generators and the
//! unique-combination aggregation they feed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coverage_data::generators::{airbnb_like, bluenile_like, compas_like};
use coverage_data::UniqueCombinations;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("airbnb_d15", n), &n, |b, &n| {
            b.iter(|| black_box(airbnb_like(n, 15, 1).expect("gen")));
        });
        group.bench_with_input(BenchmarkId::new("bluenile", n), &n, |b, &n| {
            b.iter(|| black_box(bluenile_like(n, 1).expect("gen")));
        });
    }
    group.bench_function("compas_default", |b| {
        b.iter(|| black_box(compas_like(&Default::default()).expect("gen")));
    });
    group.finish();

    let ds = airbnb_like(100_000, 15, 2).expect("gen");
    let mut agg = c.benchmark_group("aggregation");
    agg.sample_size(10);
    agg.bench_function("unique_100k_d15", |b| {
        b.iter(|| black_box(UniqueCombinations::from_dataset(black_box(&ds))));
    });
    agg.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
