//! Criterion comparison of the efficient GREEDY hitting set against the
//! naïve materialized baseline (Fig 17's contenders), on growing target
//! sets from a real MUP expansion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coverage_core::enhance::{
    uncovered_patterns_at_level, GreedyHittingSet, HittingSetSolver, NaiveHittingSet,
};
use coverage_core::mup::{DeepDiver, MupAlgorithm};
use coverage_core::validation::ValidationOracle;
use coverage_core::Threshold;
use coverage_data::generators::airbnb_like;

fn bench_hitting_set(c: &mut Criterion) {
    let ds = airbnb_like(20_000, 12, 3).expect("generator");
    let cards = ds.schema().cardinalities();
    let mups = DeepDiver::default()
        .find_mups(&ds, Threshold::Fraction(1e-3))
        .expect("mups");
    let oracle = ValidationOracle::accept_all();

    let mut group = c.benchmark_group("hitting_set");
    group.sample_size(10);
    for lambda in [2usize, 3, 4] {
        let targets = uncovered_patterns_at_level(&mups, &cards, lambda);
        group.bench_with_input(
            BenchmarkId::new(format!("greedy_m{}", targets.len()), lambda),
            &targets,
            |b, targets| {
                b.iter(|| {
                    black_box(
                        GreedyHittingSet
                            .solve(black_box(targets), &cards, &oracle)
                            .expect("solve"),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("naive_m{}", targets.len()), lambda),
            &targets,
            |b, targets| {
                b.iter(|| {
                    black_box(
                        NaiveHittingSet::default()
                            .solve(black_box(targets), &cards, &oracle)
                            .expect("solve"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hitting_set);
criterion_main!(benches);
