//! Criterion comparison of the three MUP identification algorithms on
//! scaled-down versions of the paper's two workload shapes (binary AirBnB,
//! high-cardinality BlueNile) at a covered-leaning and an uncovered-leaning
//! threshold. The figure-faithful sweeps live in the experiment binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coverage_core::mup::{DeepDiver, MupAlgorithm, PatternBreaker, PatternCombiner};
use coverage_data::generators::{airbnb_like, bluenile_like};
use coverage_index::CoverageOracle;

fn bench_algorithms(c: &mut Criterion) {
    let airbnb = CoverageOracle::from_dataset(&airbnb_like(20_000, 10, 7).expect("gen"));
    let bluenile = CoverageOracle::from_dataset(&bluenile_like(20_000, 7).expect("gen"));

    let breaker = PatternBreaker::default();
    let combiner = PatternCombiner::default();
    let deepdiver = DeepDiver::default();
    let algorithms: [&dyn MupAlgorithm; 3] = [&breaker, &combiner, &deepdiver];

    let mut group = c.benchmark_group("mup_identification");
    group.sample_size(10);
    for (oracle, name) in [(&airbnb, "airbnb10"), (&bluenile, "bluenile7")] {
        for tau in [2u64, 200] {
            for alg in algorithms {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}_{name}", alg.name()), tau),
                    &tau,
                    |b, &tau| {
                        b.iter(|| {
                            black_box(
                                alg.find_mups_with_oracle(black_box(oracle), tau)
                                    .expect("mups"),
                            )
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
