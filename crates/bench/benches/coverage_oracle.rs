//! Microbenchmarks for the Appendix A coverage oracle: exact coverage and
//! the early-exit `covered` predicate at several pattern levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coverage_data::generators::airbnb_like;
use coverage_index::{CoverageOracle, X};

fn bench_oracle(c: &mut Criterion) {
    let ds = airbnb_like(100_000, 15, 7).expect("generator");
    let oracle = CoverageOracle::from_dataset(&ds);
    let mut group = c.benchmark_group("coverage_oracle");
    for level in [1usize, 4, 8, 12] {
        let mut codes = vec![X; 15];
        for slot in codes.iter_mut().take(level) {
            *slot = 1;
        }
        group.bench_with_input(BenchmarkId::new("coverage", level), &codes, |b, codes| {
            b.iter(|| black_box(oracle.coverage(black_box(codes))));
        });
        group.bench_with_input(
            BenchmarkId::new("covered_tau100", level),
            &codes,
            |b, codes| {
                b.iter(|| black_box(oracle.covered(black_box(codes), 100)));
            },
        );
    }
    group.finish();

    let mut build = c.benchmark_group("oracle_build");
    build.sample_size(10);
    build.bench_function("100k_rows_d15", |b| {
        b.iter(|| black_box(CoverageOracle::from_dataset(black_box(&ds))));
    });
    build.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
