//! Dense vs compressed coverage backend on the skewed 500k-row dataset:
//! index footprint and probe latency through the [`CoverageProvider`]
//! seam both backends serve.
//!
//! Besides the Criterion timings, a one-shot summary reports the observed
//! footprint and latency ratios and asserts:
//!
//! * **equivalence** — both backends return identical `coverage` and
//!   `covered` answers on every probe in the set (always);
//! * **footprint** — the Roaring-style [`CompressedOracle`] stores the
//!   skewed dataset in ≤ 1/4 the bytes/row of the dense
//!   [`CoverageOracle`]: the long tail of rare values collapses to array
//!   containers (2 B/id) while the dense backend pays a full-width
//!   bitmap per dictionary value regardless of how few rows carry it;
//! * **latency** — on covered-region capped probes (wide patterns whose
//!   count sits far above τ, the `covered` hot path) the compressed
//!   backend is no slower than dense, since both early-out after ~τ hits
//!   but the compressed side touches containers instead of full-width
//!   vectors.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use coverage_bench::loadgen::skewed_dataset;
use coverage_index::{CompressedOracle, CoverageOracle, X};

const N: usize = 500_000;
const TAU: u64 = 25;
const SEED: u64 = 7;

/// Best-of-5 wall clock of `f`'s self-reported duration: sub-microsecond
/// per-probe latencies gate an assertion here, so take the minimum over
/// more repetitions than the throughput benches bother with.
fn best_of_5(mut f: impl FnMut() -> Duration) -> Duration {
    (0..5).map(|_| f()).min().expect("ran at least once")
}

/// Mean per-probe latency of `probe` over `patterns`, best of 5 passes.
fn per_probe_ns(patterns: &[Vec<u8>], mut probe: impl FnMut(&[u8]) -> u64) -> f64 {
    let best = best_of_5(|| {
        let start = Instant::now();
        let mut acc = 0u64;
        for p in patterns {
            acc = acc.wrapping_add(probe(p));
        }
        black_box(acc);
        start.elapsed()
    });
    best.as_nanos() as f64 / patterns.len().max(1) as f64
}

/// Wide single-attribute probes over the covered region: every pattern
/// fixes one attribute to a value that at least τ rows carry, so the
/// capped path's early-out fires on each of them — the steady-state
/// `covered` access pattern of `mithra serve`.
fn covered_wide_probes(dense: &CoverageOracle, arity: usize, cards: &[u8]) -> Vec<Vec<u8>> {
    let mut probes = Vec::new();
    for attr in 0..arity {
        for v in 0..usize::from(cards[attr]) {
            let mut p = vec![X; arity];
            p[attr] = v as u8;
            if dense.coverage(&p) >= TAU {
                probes.push(p);
            }
            if probes.len() >= 64 {
                return probes;
            }
        }
    }
    probes
}

fn bench_compressed_probe(c: &mut Criterion) {
    let ds = skewed_dataset(N, SEED).expect("skewed dataset");
    let dense = CoverageOracle::from_dataset(&ds);
    let compressed = CompressedOracle::from_dataset(&ds);
    let arity = ds.arity();
    let cards: Vec<u8> = ds.schema().cardinalities().to_vec();

    // --- One-shot equivalence + footprint + latency summary --------------
    let stride = (N / 64).max(1);
    let points: Vec<Vec<u8>> = ds
        .rows()
        .step_by(stride)
        .take(64)
        .map(<[u8]>::to_vec)
        .collect();
    let wides = covered_wide_probes(&dense, arity, &cards);
    assert!(
        wides.len() >= 32,
        "skewed dataset should yield a covered region ≥ 32 wide probes, got {}",
        wides.len()
    );
    for p in points.iter().chain(&wides) {
        assert_eq!(
            dense.coverage(p),
            compressed.coverage(p),
            "backends diverged on {p:?}"
        );
        assert_eq!(
            dense.covered(p, TAU),
            compressed.covered(p, TAU),
            "capped verdicts diverged on {p:?}"
        );
    }

    let dense_bpr = dense.memory_bytes() as f64 / N as f64;
    let stats = compressed.memory();
    let compressed_bpr = stats.bytes as f64 / N as f64;
    let ratio = dense_bpr / compressed_bpr;
    let dense_capped = per_probe_ns(&wides, |p| dense.coverage_capped(p, TAU));
    let compressed_capped = per_probe_ns(&wides, |p| compressed.coverage_capped(p, TAU));
    println!(
        "compressed_probe summary: n={N}, {} covered wide probes — \
         dense {dense_bpr:.2} B/row vs compressed {compressed_bpr:.2} B/row \
         ({ratio:.1}x smaller; {} array / {} bitmap / {} run containers), \
         capped probe {dense_capped:.0} ns vs {compressed_capped:.0} ns",
        wides.len(),
        stats.array_containers,
        stats.bitmap_containers,
        stats.run_containers,
    );
    assert!(
        ratio >= 4.0,
        "expected ≥4x bytes/row reduction on the skewed dataset, got {ratio:.2}x \
         ({dense_bpr:.2} vs {compressed_bpr:.2} B/row)"
    );
    assert!(
        compressed_capped <= dense_capped,
        "compressed covered-region capped probes must not be slower than dense: \
         {compressed_capped:.0} ns vs {dense_capped:.0} ns"
    );

    // --- Criterion timings ----------------------------------------------
    let mut group = c.benchmark_group("compressed_probe_500k");
    group.sample_size(10);
    group.bench_function("point_probe_dense", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &points {
                acc = acc.wrapping_add(dense.coverage(black_box(p)));
            }
            black_box(acc)
        });
    });
    group.bench_function("point_probe_compressed", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &points {
                acc = acc.wrapping_add(compressed.coverage(black_box(p)));
            }
            black_box(acc)
        });
    });
    group.bench_function("capped_wide_probe_dense", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &wides {
                acc = acc.wrapping_add(dense.coverage_capped(black_box(p), TAU));
            }
            black_box(acc)
        });
    });
    group.bench_function("capped_wide_probe_compressed", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &wides {
                acc = acc.wrapping_add(compressed.coverage_capped(black_box(p), TAU));
            }
            black_box(acc)
        });
    });
    group.bench_function("build_compressed_500k", |b| {
        b.iter(|| black_box(CompressedOracle::from_dataset(black_box(&ds)).total()));
    });
    group.finish();
}

criterion_group!(benches, bench_compressed_probe);
criterion_main!(benches);
