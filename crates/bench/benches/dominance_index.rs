//! Microbenchmarks for the Appendix B MUP dominance index: insertion and
//! both dominance checks at several index sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coverage_index::{MupDominanceIndex, X};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_pattern(rng: &mut ChaCha8Rng, cards: &[u8]) -> Vec<u8> {
    cards
        .iter()
        .map(|&c| {
            if rng.random::<f64>() < 0.5 {
                X
            } else {
                rng.random_range(0..c)
            }
        })
        .collect()
}

fn bench_dominance(c: &mut Criterion) {
    let cards = vec![2u8; 15];
    let mut group = c.benchmark_group("dominance_index");
    for size in [1_000usize, 10_000, 100_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut index = MupDominanceIndex::new(&cards);
        for _ in 0..size {
            index.add(&random_pattern(&mut rng, &cards));
        }
        let probes: Vec<Vec<u8>> = (0..64).map(|_| random_pattern(&mut rng, &cards)).collect();
        group.bench_with_input(
            BenchmarkId::new("dominated_by_any", size),
            &probes,
            |b, probes| {
                b.iter(|| {
                    for p in probes {
                        black_box(index.dominated_by_any(black_box(p)));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dominates_any", size),
            &probes,
            |b, probes| {
                b.iter(|| {
                    for p in probes {
                        black_box(index.dominates_any(black_box(p)));
                    }
                });
            },
        );
    }
    group.finish();

    c.bench_function("dominance_add_10k", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let patterns: Vec<Vec<u8>> = (0..10_000)
            .map(|_| random_pattern(&mut rng, &cards))
            .collect();
        b.iter(|| {
            let mut index = MupDominanceIndex::new(&cards);
            for p in &patterns {
                index.add(black_box(p));
            }
            black_box(index.len())
        });
    });
}

criterion_group!(benches, bench_dominance);
criterion_main!(benches);
