//! # coverage-bench
//!
//! Experiment harness reproducing every table and figure of the ICDE 2019
//! evaluation. Each figure has a dedicated binary (`cargo run --release -p
//! coverage-bench --bin <id>`); the shared plumbing — timed runs, table
//! printing, threshold sweeps — lives here. Criterion microbenches over the
//! hot kernels are under `benches/`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod loadgen;
