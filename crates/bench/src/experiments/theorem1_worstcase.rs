//! Theorem 1's worst-case construction: the diagonal dataset over n binary
//! attributes with τ = n/2 + 1 has exactly `n + C(n, n/2)` MUPs — more than
//! `2^n` — so no output-insensitive polynomial algorithm can exist.

use coverage_core::mup::{DeepDiver, MupAlgorithm, PatternBreaker, PatternCombiner};
use coverage_core::Threshold;
use coverage_data::generators::diagonal_dataset;

use crate::harness::{banner, secs, timed, Table};

fn choose(n: u64, k: u64) -> u64 {
    (1..=k).fold(1u64, |acc, i| acc * (n - i + 1) / i)
}

/// Runs the construction for several even n; returns (n, measured, expected).
pub fn run(quick: bool) -> Vec<(usize, usize, u64)> {
    banner(
        "Theorem 1",
        "Diagonal worst case: |MUPs| = n + C(n, n/2) > 2^n at tau = n/2 + 1",
    );
    let sizes: &[usize] = if quick { &[4, 8] } else { &[4, 8, 12, 16] };
    let mut table = Table::new(&[
        "n",
        "expected MUPs",
        "measured",
        "DeepDiver",
        "Breaker",
        "Combiner",
    ]);
    let mut out = Vec::new();
    for &n in sizes {
        let ds = diagonal_dataset(n).expect("diagonal");
        let tau = Threshold::Count((n / 2 + 1) as u64);
        let expected = n as u64 + choose(n as u64, n as u64 / 2);
        let (dd, dd_s) = timed(|| DeepDiver::default().find_mups(&ds, tau).expect("deepdiver"));
        let (pb, pb_s) = timed(|| {
            PatternBreaker::default()
                .find_mups(&ds, tau)
                .expect("breaker")
        });
        let (pc, pc_s) = timed(|| {
            PatternCombiner::default()
                .find_mups(&ds, tau)
                .expect("combiner")
        });
        assert_eq!(dd.len() as u64, expected, "DeepDiver disagrees at n={n}");
        assert_eq!(dd, pb, "Breaker disagrees at n={n}");
        assert_eq!(dd, pc, "Combiner disagrees at n={n}");
        table.row(&[
            n.to_string(),
            expected.to_string(),
            dd.len().to_string(),
            secs(dd_s),
            secs(pb_s),
            secs(pc_s),
        ]);
        out.push((n, dd.len(), expected));
    }
    out
}
