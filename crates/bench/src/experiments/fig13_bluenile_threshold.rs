//! Fig 13: MUP identification on BlueNile varying the threshold rate
//! (n = 116,300, d = 7, cardinalities 10,4,7,8,3,3,5).
//!
//! Expected shape: DEEPDIVER best at every rate; PATTERN-COMBINER always
//! worst because the bottom pattern-graph level has > 100K nodes (100,800
//! full combinations) versus 128 for seven binary attributes.

use coverage_core::mup::{DeepDiver, MupAlgorithm, PatternBreaker, PatternCombiner};
use coverage_data::generators::{bluenile_like, BLUENILE_ROWS};
use coverage_index::CoverageOracle;

use crate::experiments::fig12_airbnb_threshold::{measure, Point};
use crate::harness::{banner, secs, timed, Table, THRESHOLD_RATES_BLUENILE};

/// Runs the sweep; returns all points.
pub fn run(quick: bool) -> Vec<Point> {
    let n = if quick { 20_000 } else { BLUENILE_ROWS };
    banner(
        "Fig 13",
        &format!("BlueNile-like MUP identification vs threshold rate (n={n}, d=7)"),
    );
    let (ds, gen_s) = timed(|| bluenile_like(n, 2019).expect("generator"));
    let (oracle, idx_s) = timed(|| CoverageOracle::from_dataset(&ds));
    println!(
        "generated {n} rows in {}; {} unique combinations indexed in {}\n",
        secs(gen_s),
        oracle.combinations().len(),
        secs(idx_s)
    );

    let algorithms: Vec<&dyn MupAlgorithm> = vec![
        &PatternBreaker { max_level: None },
        &PatternCombiner {
            max_combinations: 200_000,
        },
        &DeepDiver { max_level: None },
    ];
    let mut table = Table::new(&["rate", "algorithm", "runtime", "# MUPs"]);
    let mut points = Vec::new();
    for &rate in &THRESHOLD_RATES_BLUENILE {
        for alg in &algorithms {
            let p = measure(*alg, &oracle, n as u64, rate);
            table.row(&[
                format!("{rate:.0e}"),
                p.algorithm.to_string(),
                p.seconds.map_or("DNF".into(), secs),
                p.mups.map_or("-".into(), |m| m.to_string()),
            ]);
            points.push(p);
        }
    }
    points
}
