//! Fig 16: level-bounded MUP discovery with DEEPDIVER for tens of
//! attributes (n = 1M, τ = 0.1%; d from 10 to 35, max level ∈ {2,4,6,8}).
//!
//! Expected shape: bounding the exploration level makes discovery of the
//! *risky* (low-level) MUPs tractable even at d = 35 — the paper reports
//! max ℓ = 2 at 35 attributes in about 10 seconds.

use coverage_core::mup::{DeepDiver, MupAlgorithm};
use coverage_core::Threshold;
use coverage_data::generators::airbnb_like;
use coverage_index::CoverageOracle;

use crate::harness::{banner, secs, timed, Table};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Number of attributes.
    pub d: usize,
    /// Exploration bound.
    pub max_level: usize,
    /// Runtime in seconds (`None` = skipped after budget blow-up).
    pub seconds: Option<f64>,
    /// MUPs with level ≤ bound.
    pub mups: Option<usize>,
}

/// Soft per-point budget: once a series exceeds this, higher dimensions of
/// the same series are skipped.
const POINT_BUDGET_SECS: f64 = 180.0;

/// Runs the sweep; returns all points.
pub fn run(quick: bool) -> Vec<Point> {
    let n = if quick { 100_000 } else { 1_000_000 };
    let rate = 1e-3;
    banner(
        "Fig 16",
        &format!("Level-bounded DeepDiver vs dimensions (n={n}, tau={rate})"),
    );
    let dims: &[usize] = if quick {
        &[10, 20]
    } else {
        &[10, 15, 20, 25, 30, 35]
    };
    let levels: &[usize] = if quick { &[2, 4] } else { &[2, 4, 6, 8] };
    let d_max = *dims.last().expect("non-empty");
    let (full, gen_s) = timed(|| airbnb_like(n, d_max, 2019).expect("generator"));
    println!("generated {n} rows x {d_max} attrs in {}\n", secs(gen_s));

    // Pre-build one oracle per dimension (shared across the level series).
    let mut table = Table::new(&["d", "max level", "runtime", "# MUPs (level <= bound)"]);
    let mut points = Vec::new();
    let mut blown: Vec<usize> = Vec::new(); // levels whose budget is exhausted
    for &d in dims {
        let keep: Vec<usize> = (0..d).collect();
        let ds = full.project(&keep).expect("projection");
        let oracle = CoverageOracle::from_dataset(&ds);
        let tau = Threshold::Fraction(rate)
            .resolve(n as u64)
            .expect("valid rate");
        for &ml in levels {
            if blown.contains(&ml) {
                table.row(&[d.to_string(), ml.to_string(), "skipped".into(), "-".into()]);
                points.push(Point {
                    d,
                    max_level: ml,
                    seconds: None,
                    mups: None,
                });
                continue;
            }
            let alg = DeepDiver::with_max_level(ml);
            let (result, s) = timed(|| alg.find_mups_with_oracle(&oracle, tau));
            let count = result.map(|m| m.len()).ok();
            table.row(&[
                d.to_string(),
                ml.to_string(),
                secs(s),
                count.map_or("-".into(), |c| c.to_string()),
            ]);
            points.push(Point {
                d,
                max_level: ml,
                seconds: Some(s),
                mups: count,
            });
            if s > POINT_BUDGET_SECS {
                blown.push(ml);
            }
        }
    }
    points
}
