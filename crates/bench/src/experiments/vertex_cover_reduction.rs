//! Theorem 2's reduction (Fig 1): the vertex-cover instance becomes a
//! coverage-enhancement instance with τ = 3 and λ = 1 whose MUPs are the
//! per-edge single-1 patterns.

use coverage_core::enhance::{CoverageEnhancer, GreedyHittingSet};
use coverage_core::mup::{DeepDiver, MupAlgorithm};
use coverage_core::validation::{ValidationOracle, ValidationRule};
use coverage_core::Threshold;
use coverage_data::generators::{vertex_cover_dataset, SampleGraph, VERTEX_COVER_TAU};

use crate::harness::banner;

/// Runs the reduction demo; returns (mups, free picks, vertex-restricted picks).
pub fn run(_quick: bool) -> (usize, usize, usize) {
    banner(
        "Theorem 2 / Fig 1",
        "Vertex cover -> coverage enhancement reduction",
    );
    let graph = SampleGraph::figure1();
    let ds = vertex_cover_dataset(&graph).expect("reduction dataset");
    let mups = DeepDiver::default()
        .find_mups(&ds, Threshold::Count(VERTEX_COVER_TAU))
        .expect("mups");
    println!(
        "dataset: {} rows x {} edge-attributes",
        ds.len(),
        ds.arity()
    );
    println!(
        "MUPs ({}): {}",
        mups.len(),
        mups.iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let free = CoverageEnhancer::default()
        .plan_for_level(&GreedyHittingSet, &mups, &[2; 5], 1)
        .expect("free plan");
    println!(
        "\nunrestricted enhancement: {} tuple(s) (the all-ones tuple hits every edge pattern)",
        free.output_size()
    );

    // Restrict collectible tuples to actual vertex incidence vectors.
    let allowed: Vec<Vec<u8>> = (0..graph.vertices).map(|i| ds.row(i).to_vec()).collect();
    let mut rules = Vec::new();
    for bits in 0..(1u32 << ds.arity()) {
        let combo: Vec<u8> = (0..ds.arity()).map(|i| ((bits >> i) & 1) as u8).collect();
        if !allowed.contains(&combo) {
            rules.push(ValidationRule::new(
                combo
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i, vec![v]))
                    .collect(),
            ));
        }
    }
    let restricted = CoverageEnhancer::with_validation(ValidationOracle::new(rules))
        .plan_for_level(&GreedyHittingSet, &mups, &[2; 5], 1)
        .expect("restricted plan");
    println!(
        "vertex-restricted enhancement: {} tuple(s) — a greedy vertex cover of Fig 1a",
        restricted.output_size()
    );
    for c in &restricted.combinations {
        let vertex = allowed.iter().position(|a| a == c).expect("vertex tuple");
        println!(
            "  collect incidence vector of vertex v{}: {:?}",
            vertex + 1,
            c
        );
    }
    (mups.len(), free.output_size(), restricted.output_size())
}
