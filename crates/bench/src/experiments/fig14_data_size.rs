//! Fig 14: MUP identification on AirBnB varying the dataset size
//! (τ = 0.1%, d = 15; n from 1K to 1M).
//!
//! Expected shape: all three algorithms are only mildly affected by dataset
//! size — the work is driven by the pattern space, and the inverted indices
//! operate over unique combinations rather than raw rows.

use coverage_core::mup::{DeepDiver, MupAlgorithm, PatternBreaker, PatternCombiner};
use coverage_data::generators::airbnb_like;
use coverage_index::CoverageOracle;

use crate::experiments::fig12_airbnb_threshold::{measure, Point};
use crate::harness::{banner, secs, timed, Table};

/// Runs the sweep; returns all points.
pub fn run(quick: bool) -> Vec<Point> {
    let d = 15;
    let rate = 1e-3;
    banner(
        "Fig 14",
        &format!("AirBnB-like MUP identification vs data size (tau={rate}, d={d})"),
    );
    let sizes: &[usize] = if quick {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let algorithms: Vec<&dyn MupAlgorithm> = vec![
        &PatternBreaker { max_level: None },
        &PatternCombiner {
            max_combinations: 50_000_000,
        },
        &DeepDiver { max_level: None },
    ];
    let mut table = Table::new(&["n", "algorithm", "runtime", "# MUPs"]);
    let mut points = Vec::new();
    for &n in sizes {
        let (ds, _) = timed(|| airbnb_like(n, d, 2019).expect("generator"));
        let (oracle, idx_s) = timed(|| CoverageOracle::from_dataset(&ds));
        table.row(&[
            n.to_string(),
            "(index build)".to_string(),
            secs(idx_s),
            "-".to_string(),
        ]);
        for alg in &algorithms {
            let p = measure(*alg, &oracle, n as u64, rate);
            table.row(&[
                n.to_string(),
                p.algorithm.to_string(),
                p.seconds.map_or("DNF".into(), secs),
                p.mups.map_or("-".into(), |m| m.to_string()),
            ]);
            points.push(p);
        }
    }
    points
}
