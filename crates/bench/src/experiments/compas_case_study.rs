//! §V-B1: lack of coverage in the COMPAS demographics at τ = 10.
//!
//! The paper reports 65 MUPs in total — 19 at level 2, 23 at level 3, 23 at
//! level 4 — with every single attribute value covered, and highlights the
//! pattern `XX23` (widowed Hispanics): only two matching individuals, both
//! repeat offenders.

use coverage_core::pattern::Pattern;
use coverage_core::{CoverageReport, Threshold};
use coverage_data::generators::{compas_like, CompasConfig, HISPANIC, WIDOWED};
use coverage_index::CoverageOracle;

use crate::harness::{banner, Table};

/// Runs the case study; returns the per-level MUP histogram.
pub fn run(_quick: bool) -> Vec<usize> {
    banner("§V-B1", "COMPAS coverage case study (tau = 10)");
    let ds = compas_like(&CompasConfig::default()).expect("generator");
    let report = CoverageReport::audit(&ds, Threshold::Count(10)).expect("audit");

    let mut table = Table::new(&["level", "# of MUPs", "paper"]);
    let paper = ["0", "0", "19", "23", "23"];
    for (level, &count) in report.level_histogram.iter().enumerate() {
        table.row(&[
            level.to_string(),
            count.to_string(),
            paper.get(level).unwrap_or(&"-").to_string(),
        ]);
    }
    println!("\ntotal MUPs: {} (paper: 65)", report.mup_count());

    // Single attribute values all covered (as in the paper).
    let covered_singletons = report.level_histogram[1] == 0;
    println!("all single attribute values covered: {covered_singletons}");

    // The XX23 story: widowed Hispanics.
    let oracle = CoverageOracle::from_dataset(&ds);
    let xx23 = Pattern::from_codes(vec![
        coverage_core::pattern::X,
        coverage_core::pattern::X,
        HISPANIC,
        WIDOWED,
    ]);
    let cov = oracle.coverage(xx23.codes());
    let reoffenders =
        ds.count_where(|r, label| r[2] == HISPANIC && r[3] == WIDOWED && label == Some(true));
    println!(
        "pattern XX23 (widowed Hispanic): coverage = {cov}, re-offenders among them = {reoffenders} (paper: 2 and 2)"
    );
    let is_mup = report.mups.contains(&xx23);
    println!("XX23 reported as a MUP: {is_mup}");
    report.level_histogram
}
