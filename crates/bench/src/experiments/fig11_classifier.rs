//! Fig 11: the effect of (lack of) coverage on classification.
//!
//! The paper trains a decision tree on COMPAS demographics, holds out 20
//! Hispanic-female (HF) individuals, and varies the number of HF rows in the
//! training data over {0, 20, 40, 60, 80}: subgroup accuracy starts below
//! 50% and climbs as coverage is remedied, while overall accuracy stays flat
//! at ~0.76 (f1 ~0.7). The FO / MO ablation (§V-B2's closing paragraph)
//! removes Female-Other / Male-Other rows entirely: accuracies 39% and 59%.
//!
//! The paper reports a single random split; with only 20 test rows that is
//! very noisy, so this harness averages each point over several seeded
//! splits (the paper's qualitative shape is asserted on the mean).

use coverage_data::generators::{compas_like, CompasConfig, FEMALE, HISPANIC, MALE, OTHER_RACE};
use coverage_data::Dataset;
use coverage_ml::{take_rows, train_and_evaluate, TreeConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::harness::{banner, f3, Table};

/// One averaged point of the HF sweep.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Number of Hispanic-female rows included in the training data.
    pub hf_in_training: usize,
    /// Mean accuracy on the held-out 20-HF test sets.
    pub subgroup_accuracy: f64,
    /// Mean F1 on the held-out 20-HF test sets.
    pub subgroup_f1: f64,
    /// Mean accuracy on the random global test sets.
    pub overall_accuracy: f64,
    /// Mean F1 on the random global test sets.
    pub overall_f1: f64,
}

fn indices_where(ds: &Dataset, pred: impl Fn(&[u8]) -> bool) -> Vec<usize> {
    (0..ds.len()).filter(|&i| pred(ds.row(i))).collect()
}

const HF_COUNTS: [usize; 5] = [0, 20, 40, 60, 80];

/// Runs the sweep; returns the averaged points.
pub fn run(quick: bool) -> Vec<Point> {
    banner(
        "Fig 11",
        "Effect of lack of coverage on classification (COMPAS-like)",
    );
    let reps = if quick { 2 } else { 7 };
    let ds = compas_like(&CompasConfig::default()).expect("generator");
    let config = TreeConfig::default();

    let mut sums = [[0.0f64; 4]; HF_COUNTS.len()];
    let mut fo_sum = 0.0;
    let mut mo_sum = 0.0;
    for rep in 0..reps {
        let mut rng = ChaCha8Rng::seed_from_u64(100 + rep as u64);
        let mut hf: Vec<usize> = indices_where(&ds, |r| r[2] == HISPANIC && r[0] == FEMALE);
        hf.shuffle(&mut rng);
        let (hf_test_idx, hf_pool) = hf.split_at(20);
        let mut rest: Vec<usize> = indices_where(&ds, |r| !(r[2] == HISPANIC && r[0] == FEMALE));
        rest.shuffle(&mut rng);
        let global_test_len = rest.len() / 5;
        let (global_test_idx, rest_train) = rest.split_at(global_test_len);
        let hf_test = take_rows(&ds, hf_test_idx);
        let global_test = take_rows(&ds, global_test_idx);

        for (slot, &k) in HF_COUNTS.iter().enumerate() {
            let mut train_idx: Vec<usize> = rest_train.to_vec();
            train_idx.extend_from_slice(&hf_pool[..k.min(hf_pool.len())]);
            let train = take_rows(&ds, &train_idx);
            let sub = train_and_evaluate(&train, &hf_test, &config);
            let all = train_and_evaluate(&train, &global_test, &config);
            sums[slot][0] += sub.accuracy();
            sums[slot][1] += sub.f1();
            sums[slot][2] += all.accuracy();
            sums[slot][3] += all.f1();
        }

        // FO / MO ablation: remove the whole group from training, test on a
        // random 20 of its rows.
        for (race, sex, sum) in [
            (OTHER_RACE, FEMALE, &mut fo_sum),
            (OTHER_RACE, MALE, &mut mo_sum),
        ] {
            let mut group: Vec<usize> = indices_where(&ds, |r| r[2] == race && r[0] == sex);
            group.shuffle(&mut rng);
            let test_idx = &group[..20.min(group.len())];
            let train_idx: Vec<usize> = indices_where(&ds, |r| !(r[2] == race && r[0] == sex));
            let m = train_and_evaluate(
                &take_rows(&ds, &train_idx),
                &take_rows(&ds, test_idx),
                &config,
            );
            *sum += m.accuracy();
        }
    }

    let mut table = Table::new(&[
        "HF in train",
        "subgrp acc",
        "subgrp f1",
        "overall acc",
        "overall f1",
    ]);
    let mut points = Vec::new();
    let r = reps as f64;
    for (slot, &k) in HF_COUNTS.iter().enumerate() {
        let point = Point {
            hf_in_training: k,
            subgroup_accuracy: sums[slot][0] / r,
            subgroup_f1: sums[slot][1] / r,
            overall_accuracy: sums[slot][2] / r,
            overall_f1: sums[slot][3] / r,
        };
        table.row(&[
            k.to_string(),
            f3(point.subgroup_accuracy),
            f3(point.subgroup_f1),
            f3(point.overall_accuracy),
            f3(point.overall_f1),
        ]);
        points.push(point);
    }
    println!("\npaper shape: subgroup accuracy < 0.5 at 0 HF, rising with coverage;");
    println!("overall accuracy flat (~0.76), overall f1 flat (~0.70)\n");

    let mut ablation = Table::new(&["group removed", "accuracy (mean)", "paper"]);
    ablation.row(&["Female-Other (FO)".into(), f3(fo_sum / r), "0.39".into()]);
    ablation.row(&["Male-Other (MO)".into(), f3(mo_sum / r), "0.59".into()]);
    points
}
