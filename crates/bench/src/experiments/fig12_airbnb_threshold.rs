//! Fig 12: MUP identification on AirBnB varying the threshold rate
//! (n = 1M, d = 15), for APRIORI / PATTERN-BREAKER / PATTERN-COMBINER /
//! DEEPDIVER.
//!
//! Expected shape: PATTERN-BREAKER's runtime falls as the rate grows (MUPs
//! move up the graph), PATTERN-COMBINER's rises, the two cross near rate
//! 10⁻⁴–10⁻³, DEEPDIVER is at-or-near best everywhere, and APRIORI is not
//! competitive (it finished a single setting under 100 s in the paper).

use coverage_core::mup::{Apriori, DeepDiver, MupAlgorithm, PatternBreaker, PatternCombiner};
use coverage_core::Threshold;
use coverage_data::generators::airbnb_like;
use coverage_index::CoverageOracle;

use crate::harness::{banner, secs, timed, Table, THRESHOLD_RATES_WIDE};

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Threshold rate (fraction of n).
    pub rate: f64,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Runtime in seconds (`None` = did not finish / guard tripped).
    pub seconds: Option<f64>,
    /// Number of MUPs found.
    pub mups: Option<usize>,
}

/// Runs one algorithm at one rate against a prebuilt oracle.
pub fn measure(alg: &dyn MupAlgorithm, oracle: &CoverageOracle, n: u64, rate: f64) -> Point {
    let tau = Threshold::Fraction(rate).resolve(n).expect("valid rate");
    let (result, seconds) = timed(|| alg.find_mups_with_oracle(oracle, tau));
    match result {
        Ok(mups) => Point {
            rate,
            algorithm: alg.name(),
            seconds: Some(seconds),
            mups: Some(mups.len()),
        },
        Err(_) => Point {
            rate,
            algorithm: alg.name(),
            seconds: None,
            mups: None,
        },
    }
}

/// Runs the sweep; returns all points.
pub fn run(quick: bool) -> Vec<Point> {
    let n = if quick { 100_000 } else { 1_000_000 };
    let d = 15;
    banner(
        "Fig 12",
        &format!("AirBnB-like MUP identification vs threshold rate (n={n}, d={d})"),
    );
    let (ds, gen_s) = timed(|| airbnb_like(n, d, 2019).expect("generator"));
    let (oracle, idx_s) = timed(|| CoverageOracle::from_dataset(&ds));
    println!(
        "generated {n} rows in {}; {} unique combinations indexed in {}\n",
        secs(gen_s),
        oracle.combinations().len(),
        secs(idx_s)
    );

    let apriori = Apriori {
        max_candidates_per_level: 3_000_000,
    };
    let breaker = PatternBreaker::default();
    let combiner = PatternCombiner::default();
    let deepdiver = DeepDiver::default();
    let algorithms: Vec<&dyn MupAlgorithm> = vec![&apriori, &breaker, &combiner, &deepdiver];
    let mut table = Table::new(&["rate", "algorithm", "runtime", "# MUPs"]);
    let mut points = Vec::new();
    for &rate in &THRESHOLD_RATES_WIDE {
        for alg in &algorithms {
            let p = measure(*alg, &oracle, n as u64, rate);
            table.row(&[
                format!("{rate:.0e}"),
                p.algorithm.to_string(),
                p.seconds.map_or("DNF".into(), secs),
                p.mups.map_or("-".into(), |m| m.to_string()),
            ]);
            points.push(p);
        }
    }
    points
}
