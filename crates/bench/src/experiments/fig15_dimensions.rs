//! Fig 15: MUP identification on AirBnB varying the number of attributes
//! (n = 1M, τ = 0.1%; d from 5 to 17).
//!
//! Expected shape: MUP counts and runtimes grow exponentially with d, but
//! every algorithm finishes in reasonable time up to d = 17.

use coverage_core::mup::{DeepDiver, MupAlgorithm, PatternBreaker, PatternCombiner};
use coverage_data::generators::airbnb_like;
use coverage_index::CoverageOracle;

use crate::experiments::fig12_airbnb_threshold::{measure, Point};
use crate::harness::{banner, secs, timed, Table};

/// Runs the sweep; returns all points.
pub fn run(quick: bool) -> Vec<Point> {
    let n = if quick { 100_000 } else { 1_000_000 };
    let rate = 1e-3;
    banner(
        "Fig 15",
        &format!("AirBnB-like MUP identification vs dimensions (n={n}, tau={rate})"),
    );
    let dims: &[usize] = if quick {
        &[5, 9, 13]
    } else {
        &[5, 7, 9, 11, 13, 15, 17]
    };
    // Generate once at the maximum dimensionality and project down, as the
    // paper does.
    let d_max = *dims.last().expect("non-empty dims");
    let (full, gen_s) = timed(|| airbnb_like(n, d_max, 2019).expect("generator"));
    println!("generated {n} rows x {d_max} attrs in {}\n", secs(gen_s));

    let algorithms: Vec<&dyn MupAlgorithm> = vec![
        &PatternBreaker { max_level: None },
        &PatternCombiner {
            max_combinations: 50_000_000,
        },
        &DeepDiver { max_level: None },
    ];
    let mut table = Table::new(&["d", "algorithm", "runtime", "# MUPs"]);
    let mut points = Vec::new();
    for &d in dims {
        let keep: Vec<usize> = (0..d).collect();
        let ds = full.project(&keep).expect("projection");
        let oracle = CoverageOracle::from_dataset(&ds);
        for alg in &algorithms {
            let p = measure(*alg, &oracle, n as u64, rate);
            table.row(&[
                d.to_string(),
                p.algorithm.to_string(),
                p.seconds.map_or("DNF".into(), secs),
                p.mups.map_or("-".into(), |m| m.to_string()),
            ]);
            points.push(p);
        }
    }
    points
}
