//! Figs 18 & 19: coverage enhancement varying dimensions (AirBnB, n = 1M,
//! τ = 0.1%; d from 5 to 35; λ ∈ {3..6}) — runtime (Fig 18) and
//! input/output sizes (Fig 19) from the same sweep.
//!
//! Expected shape: runtime and input size grow exponentially with d and
//! with λ; output sizes stay orders of magnitude below input sizes because
//! each collected combination hits many uncovered patterns.

use coverage_core::enhance::{CoverageEnhancer, GreedyHittingSet};
use coverage_core::mup::{DeepDiver, MupAlgorithm};
use coverage_core::Threshold;
use coverage_data::generators::airbnb_like;
use coverage_index::CoverageOracle;

use crate::harness::{banner, secs, timed, Table};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Number of attributes.
    pub d: usize,
    /// Target maximum covered level.
    pub lambda: usize,
    /// Runtime (expansion + greedy) in seconds.
    pub seconds: Option<f64>,
    /// Input size (uncovered patterns at λ).
    pub input: Option<usize>,
    /// Output size (combinations to collect).
    pub output: Option<usize>,
}

/// Soft per-point budget: a λ-series that exceeds it skips higher d.
const POINT_BUDGET_SECS: f64 = 180.0;

/// Runs the sweep; returns all points.
pub fn run(quick: bool) -> Vec<Point> {
    let n = if quick { 100_000 } else { 1_000_000 };
    let rate = 1e-3;
    banner(
        "Figs 18+19",
        &format!("Coverage enhancement vs dimensions (AirBnB-like, n={n}, tau={rate})"),
    );
    let dims: &[usize] = if quick {
        &[5, 10, 15]
    } else {
        &[5, 10, 15, 20, 25, 30, 35]
    };
    let lambdas: &[usize] = if quick { &[3, 4] } else { &[3, 4, 5, 6] };
    let d_max = *dims.last().expect("non-empty");
    let (full, _) = timed(|| airbnb_like(n, d_max, 2019).expect("generator"));
    let enhancer = CoverageEnhancer::default();

    let mut table = Table::new(&["d", "lambda", "runtime", "input", "output"]);
    let mut points = Vec::new();
    let mut blown: Vec<usize> = Vec::new();
    for &d in dims {
        let keep: Vec<usize> = (0..d).collect();
        let ds = full.project(&keep).expect("projection");
        let oracle = CoverageOracle::from_dataset(&ds);
        let cards = ds.schema().cardinalities();
        let tau = Threshold::Fraction(rate).resolve(n as u64).expect("rate");
        // Level-bounded discovery is enough: only MUPs with level ≤ λ feed
        // the λ-expansion.
        let max_lambda = *lambdas.last().expect("non-empty");
        let mups = DeepDiver::with_max_level(max_lambda)
            .find_mups_with_oracle(&oracle, tau)
            .expect("mups");
        for &lambda in lambdas {
            if lambda > d || blown.contains(&lambda) {
                table.row(&[
                    d.to_string(),
                    lambda.to_string(),
                    "skipped".into(),
                    "-".into(),
                    "-".into(),
                ]);
                points.push(Point {
                    d,
                    lambda,
                    seconds: None,
                    input: None,
                    output: None,
                });
                continue;
            }
            let (plan, s) =
                timed(|| enhancer.plan_for_level(&GreedyHittingSet, &mups, &cards, lambda));
            let p = match plan {
                Ok(plan) => Point {
                    d,
                    lambda,
                    seconds: Some(s),
                    input: Some(plan.input_size()),
                    output: Some(plan.output_size()),
                },
                Err(_) => Point {
                    d,
                    lambda,
                    seconds: None,
                    input: None,
                    output: None,
                },
            };
            table.row(&[
                d.to_string(),
                lambda.to_string(),
                p.seconds.map_or("DNF".into(), secs),
                p.input.map_or("-".into(), |v| v.to_string()),
                p.output.map_or("-".into(), |v| v.to_string()),
            ]);
            if s > POINT_BUDGET_SECS {
                blown.push(lambda);
            }
            points.push(p);
        }
    }
    println!("\nFig 18 reads the runtime column; Fig 19 reads the input/output columns.");
    points
}
