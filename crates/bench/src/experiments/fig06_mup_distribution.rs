//! Fig 6: distribution of MUP levels on AirBnB with n = 1,000, d = 13,
//! τ = 50. The paper reports a bell curve peaking at levels 5–6 (a few
//! thousand MUPs in total, 1 at level 1, < 40 at level 2).

use coverage_core::{CoverageReport, Threshold};
use coverage_data::generators::airbnb_like;

use crate::harness::{banner, Table};

/// Runs the experiment and returns the level histogram.
pub fn run(quick: bool) -> Vec<usize> {
    banner(
        "Fig 6",
        "Distribution of MUP levels (AirBnB-like, n=1000, d=13, tau=50)",
    );
    let n = 1_000;
    let d = if quick { 10 } else { 13 };
    let ds = airbnb_like(n, d, 2019).expect("generator parameters are valid");
    let report = CoverageReport::audit(&ds, Threshold::Count(50)).expect("audit");
    let mut table = Table::new(&["level", "# of MUPs"]);
    for (level, &count) in report.level_histogram.iter().enumerate() {
        table.row(&[level.to_string(), count.to_string()]);
    }
    println!(
        "\ntotal MUPs: {}   maximum covered level: {}",
        report.mup_count(),
        report.maximum_covered_level()
    );
    report.level_histogram
}
