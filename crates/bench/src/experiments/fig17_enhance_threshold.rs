//! Fig 17: coverage enhancement runtime varying the threshold rate
//! (AirBnB, n = 1M, d = 13; λ ∈ {3..6}; rates 10⁻⁶..10⁻²).
//!
//! Expected shape: GREEDY finishes in seconds everywhere and slows as λ or
//! the rate grows; the naïve hitting set finished only the single easiest
//! setting (λ = 3, smallest rate) within the paper's time limit.

use coverage_core::enhance::{CoverageEnhancer, GreedyHittingSet, NaiveHittingSet};
use coverage_core::mup::{DeepDiver, MupAlgorithm};
use coverage_core::Threshold;
use coverage_data::generators::airbnb_like;
use coverage_index::CoverageOracle;

use crate::harness::{banner, secs, timed, Table, THRESHOLD_RATES_WIDE};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Threshold rate.
    pub rate: f64,
    /// Target maximum covered level λ.
    pub lambda: usize,
    /// Solver name.
    pub solver: &'static str,
    /// Enhancement runtime (expansion + hitting set) in seconds.
    pub seconds: Option<f64>,
    /// Input size (uncovered patterns at λ).
    pub input: Option<usize>,
    /// Output size (combinations to collect).
    pub output: Option<usize>,
}

/// Per-point soft budget for the naïve solver.
const NAIVE_BUDGET_SECS: f64 = 120.0;

/// Runs the sweep; returns all points.
pub fn run(quick: bool) -> Vec<Point> {
    let n = if quick { 100_000 } else { 1_000_000 };
    let d = 13;
    banner(
        "Fig 17",
        &format!("Coverage enhancement vs threshold rate (AirBnB-like, n={n}, d={d})"),
    );
    let (ds, _) = timed(|| airbnb_like(n, d, 2019).expect("generator"));
    let oracle = CoverageOracle::from_dataset(&ds);
    let cards = ds.schema().cardinalities();
    let lambdas: &[usize] = if quick { &[3, 4] } else { &[3, 4, 5, 6] };
    let enhancer = CoverageEnhancer::default();

    let mut table = Table::new(&["rate", "lambda", "solver", "runtime", "input", "output"]);
    let mut points = Vec::new();
    let mut naive_blown = false;
    for &rate in &THRESHOLD_RATES_WIDE {
        let tau = Threshold::Fraction(rate).resolve(n as u64).expect("rate");
        let mups = DeepDiver::default()
            .find_mups_with_oracle(&oracle, tau)
            .expect("mups");
        for &lambda in lambdas {
            // GREEDY (the paper's efficient implementation).
            let (plan, s) =
                timed(|| enhancer.plan_for_level(&GreedyHittingSet, &mups, &cards, lambda));
            let p = match plan {
                Ok(plan) => Point {
                    rate,
                    lambda,
                    solver: "Greedy",
                    seconds: Some(s),
                    input: Some(plan.input_size()),
                    output: Some(plan.output_size()),
                },
                Err(_) => Point {
                    rate,
                    lambda,
                    solver: "Greedy",
                    seconds: None,
                    input: None,
                    output: None,
                },
            };
            table.row(&[
                format!("{rate:.0e}"),
                lambda.to_string(),
                p.solver.into(),
                p.seconds.map_or("DNF".into(), secs),
                p.input.map_or("-".into(), |v| v.to_string()),
                p.output.map_or("-".into(), |v| v.to_string()),
            ]);
            points.push(p);

            // Naïve baseline at λ = 3 only (as in the paper's figure, where
            // it appears once).
            if lambda == 3 && !naive_blown {
                let naive = NaiveHittingSet::default();
                let (plan, s) = timed(|| enhancer.plan_for_level(&naive, &mups, &cards, lambda));
                let p = match plan {
                    Ok(plan) => Point {
                        rate,
                        lambda,
                        solver: "Naive",
                        seconds: Some(s),
                        input: Some(plan.input_size()),
                        output: Some(plan.output_size()),
                    },
                    Err(_) => Point {
                        rate,
                        lambda,
                        solver: "Naive",
                        seconds: None,
                        input: None,
                        output: None,
                    },
                };
                table.row(&[
                    format!("{rate:.0e}"),
                    lambda.to_string(),
                    p.solver.into(),
                    p.seconds.map_or("DNF".into(), secs),
                    p.input.map_or("-".into(), |v| v.to_string()),
                    p.output.map_or("-".into(), |v| v.to_string()),
                ]);
                if s > NAIVE_BUDGET_SECS {
                    naive_blown = true;
                }
                points.push(p);
            }
        }
    }
    points
}
