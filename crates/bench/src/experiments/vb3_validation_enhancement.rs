//! §V-B3: coverage-enhancement quality with a human-in-the-loop validation
//! oracle on the COMPAS MUPs, targeting coverage level λ = 2.
//!
//! The paper's oracle rules out (a) combinations with marital status
//! `unknown` and (b) the under-20 age group with any non-single marital
//! status; the greedy algorithm then suggests a handful of demographic
//! profiles to collect (e.g. {over 60, other races, widowed}).

use coverage_core::enhance::{CoverageEnhancer, GreedyHittingSet};
use coverage_core::validation::{ValidationOracle, ValidationRule};
use coverage_core::{CoverageReport, Threshold};
use coverage_data::generators::{compas_like, compas_schema, CompasConfig};

use crate::harness::banner;

/// Runs the experiment; returns the suggested combinations (decoded).
pub fn run(_quick: bool) -> Vec<String> {
    banner(
        "§V-B3",
        "Coverage enhancement with a validation oracle (COMPAS-like, lambda = 2)",
    );
    let ds = compas_like(&CompasConfig::default()).expect("generator");
    let schema = compas_schema();
    let report = CoverageReport::audit(&ds, Threshold::Count(10)).expect("audit");

    // Rules: marital != unknown (code 6); age under_20 (code 0) must be
    // single (i.e. forbid age=0 together with marital in 1..=6).
    let oracle = ValidationOracle::new(vec![
        ValidationRule::forbid_values(3, vec![6]),
        ValidationRule::new(vec![(1, vec![0]), (3, vec![1, 2, 3, 4, 5, 6])]),
    ]);
    let enhancer = CoverageEnhancer::with_validation(oracle);
    let plan = enhancer
        .plan_for_level(
            &GreedyHittingSet,
            &report.mups,
            &ds.schema().cardinalities(),
            2,
        )
        .expect("enhancement plan");

    println!(
        "targets (uncovered patterns at level 2): {}   suggested combinations: {}\n",
        plan.input_size(),
        plan.output_size()
    );
    let mut decoded = Vec::new();
    for (combo, general) in plan.combinations.iter().zip(&plan.generalized) {
        let names: Vec<String> = combo
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                format!(
                    "{}={}",
                    schema.attribute(i).name(),
                    schema.attribute(i).value_name(v)
                )
            })
            .collect();
        let line = names.join(", ");
        println!("collect: {line}   (generalized: {general})");
        decoded.push(line);
    }
    println!("\nall suggested combinations satisfy the validation oracle by construction;");
    println!("paper suggests 5 profiles such as {{over 60, other races, widowed}}");
    decoded
}
