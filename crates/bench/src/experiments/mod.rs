//! One module per paper table/figure. Each exposes `run(quick: bool)`;
//! `quick` shrinks dataset sizes and sweep ranges so the full suite stays
//! CI-friendly, while the default parameters follow the paper.

pub mod compas_case_study;
pub mod fig06_mup_distribution;
pub mod fig11_classifier;
pub mod fig12_airbnb_threshold;
pub mod fig13_bluenile_threshold;
pub mod fig14_data_size;
pub mod fig15_dimensions;
pub mod fig16_level_limited;
pub mod fig17_enhance_threshold;
pub mod fig18_19_enhance_dimensions;
pub mod theorem1_worstcase;
pub mod vb3_validation_enhancement;
pub mod vertex_cover_reduction;

/// Parses the conventional `--quick` flag from the process arguments.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}
