//! TCP load generator for the `mithra serve` front ends.
//!
//! Spawns an in-process server (so one command measures a full stack with
//! zero setup), drives it with N concurrent pipelined connections over a
//! configurable op mix for a fixed wall-clock window, and reports
//! throughput, latency percentiles, and the server's own `stats.io`
//! counters — the batching counters are how cross-connection insert
//! coalescing is observed from the outside.
//!
//! Exposed as `mithra loadgen` / `mithra bench-report` and as the
//! standalone `loadgen` binary in this crate.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use coverage_core::Threshold;
use coverage_data::generators::airbnb_like;
use coverage_data::{Dataset, Schema};
use coverage_index::{CompressedOracle, CoverageOracle, CoverageProvider};
use coverage_service::protocol::Json;
use coverage_service::{serve, CoverageEngine, IoMode, OpLog, ServeOptions, SyncPolicy};

/// What one loadgen run does.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Which front end the in-process server runs.
    pub io: IoMode,
    /// Concurrent client connections.
    pub connections: usize,
    /// Wall-clock run length in seconds.
    pub secs: f64,
    /// Requests each connection keeps in flight (batched writes).
    pub pipeline: usize,
    /// Worker threads for the blocking front end.
    pub workers: usize,
    /// Admission bound for the event front end.
    pub max_pending: usize,
    /// Rows in the synthetic (AirBnB-like) starting dataset.
    pub rows: usize,
    /// Attributes in the synthetic dataset.
    pub attributes: usize,
    /// Op mix, in percent: `(insert, coverage)`; the remainder is `mups`.
    pub mix: (u32, u32),
    /// Percent of requests that delete a row the client inserted earlier
    /// (carved out before the `mix` shares; exercises delete coalescing).
    pub deletes: u32,
    /// Run the in-process server with an op log at this sync policy (the
    /// replicated-write overhead knob for `BENCH_7`).
    pub oplog: Option<SyncPolicy>,
    /// RNG seed (per-client streams derive from it).
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            io: IoMode::Event,
            connections: 64,
            secs: 2.0,
            pipeline: 16,
            workers: coverage_service::DEFAULT_WORKERS,
            max_pending: coverage_service::DEFAULT_MAX_PENDING,
            rows: 2_000,
            attributes: 6,
            mix: (80, 15),
            deletes: 0,
            oplog: None,
            seed: 2019,
        }
    }
}

/// What one loadgen run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// `"event"` or `"blocking"`.
    pub io: String,
    /// Concurrent client connections requested.
    pub connections: usize,
    /// Wall-clock seconds actually spent in the measurement window.
    pub elapsed_secs: f64,
    /// Responses received (any outcome).
    pub requests: u64,
    /// `{"ok":false}` responses that were *not* `overloaded` sheds.
    pub errors: u64,
    /// Responses shed with the `overloaded` code.
    pub overloaded: u64,
    /// Times a client had to reconnect (dropped/shed connections).
    pub reconnects: u64,
    /// Responses per second over the window.
    pub ops_per_sec: f64,
    /// Client-observed latency percentiles, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Server-side `stats.io.insert_requests` after the run.
    pub insert_requests: u64,
    /// Server-side `stats.io.insert_engine_batches` after the run.
    pub insert_engine_batches: u64,
    /// Server-side `stats.io.coalesced_inserts` after the run.
    pub coalesced_inserts: u64,
    /// Server-side `stats.io.delete_requests` after the run.
    pub delete_requests: u64,
    /// Server-side `stats.io.delete_engine_batches` after the run.
    pub delete_engine_batches: u64,
    /// Server-side `stats.io.coalesced_deletes` after the run.
    pub coalesced_deletes: u64,
    /// Server-side `stats.io.shed_overloaded` after the run.
    pub shed_overloaded: u64,
}

impl LoadgenReport {
    /// The report as one JSON object (stable field order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"io\":\"{}\",\"connections\":{},\"elapsed_secs\":{:.3},\
             \"requests\":{},\"errors\":{},\"overloaded\":{},\"reconnects\":{},\
             \"ops_per_sec\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
             \"insert_requests\":{},\"insert_engine_batches\":{},\
             \"coalesced_inserts\":{},\"delete_requests\":{},\
             \"delete_engine_batches\":{},\"coalesced_deletes\":{},\
             \"shed_overloaded\":{}}}",
            self.io,
            self.connections,
            self.elapsed_secs,
            self.requests,
            self.errors,
            self.overloaded,
            self.reconnects,
            self.ops_per_sec,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.insert_requests,
            self.insert_engine_batches,
            self.coalesced_inserts,
            self.delete_requests,
            self.delete_engine_batches,
            self.coalesced_deletes,
            self.shed_overloaded,
        )
    }
}

/// Splitmix-style PRNG: one u64 of state, good enough to pick ops and row
/// values without dragging a generator dependency into the hot loop.
struct Mix64(u64);

impl Mix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct ClientStats {
    latencies_ns: Vec<u64>,
    requests: u64,
    errors: u64,
    overloaded: u64,
    reconnects: u64,
}

/// Most rows a client remembers for later deletion; a bounded ring so a
/// long run with few deletes doesn't grow without limit.
const DELETE_POOL: usize = 1024;

/// Removes and returns a uniformly random element (order not preserved).
fn pop_random(rng: &mut Mix64, pool: &mut Vec<String>) -> Option<String> {
    if pool.is_empty() {
        return None;
    }
    let slot = rng.below(pool.len() as u64) as usize;
    Some(pool.swap_remove(slot))
}

/// Builds one random row literal (`"0","1",…`) and returns it.
fn gen_row(rng: &mut Mix64, attributes: usize) -> String {
    let mut row = String::with_capacity(attributes * 4);
    for i in 0..attributes {
        if i > 0 {
            row.push(',');
        }
        row.push('"');
        row.push(if rng.below(2) == 0 { '0' } else { '1' });
        row.push('"');
    }
    row
}

fn gen_request(
    rng: &mut Mix64,
    attributes: usize,
    mix: (u32, u32),
    deletes: u32,
    inserted: &mut Vec<String>,
) -> String {
    let roll = rng.below(100) as u32;
    if roll < deletes {
        // Delete a row this client inserted earlier (its copy is still in
        // the dataset: per-connection ordering guarantees the insert landed
        // first, and each remembered row is deleted at most once). With
        // nothing banked yet, fall through to an insert.
        if let Some(row) = pop_random(rng, inserted) {
            return format!("{{\"op\":\"delete\",\"row\":[{row}]}}");
        }
    }
    if roll < deletes + mix.0 {
        let row = gen_row(rng, attributes);
        if deletes > 0 {
            if inserted.len() < DELETE_POOL {
                inserted.push(row.clone());
            } else {
                let slot = rng.below(DELETE_POOL as u64) as usize;
                inserted[slot] = row.clone();
            }
        }
        format!("{{\"op\":\"insert\",\"row\":[{row}]}}")
    } else if roll < deletes + mix.0 + mix.1 {
        let mut pattern = String::with_capacity(attributes);
        for _ in 0..attributes {
            pattern.push(match rng.below(4) {
                0 => '0',
                1 => '1',
                _ => 'X', // bias toward general patterns (cheap + cacheable)
            });
        }
        format!("{{\"op\":\"coverage\",\"pattern\":\"{pattern}\"}}")
    } else {
        "{\"op\":\"mups\",\"limit\":3}".to_string()
    }
}

/// One client: keeps `pipeline` requests in flight against `addr` until
/// the deadline, reconnecting (with a tiny backoff) when the server sheds
/// or drops the connection.
fn client_loop(
    addr: std::net::SocketAddr,
    config: &LoadgenConfig,
    deadline: Instant,
    seed: u64,
) -> ClientStats {
    let mut rng = Mix64(seed);
    let mut stats = ClientStats {
        latencies_ns: Vec::new(),
        requests: 0,
        errors: 0,
        overloaded: 0,
        reconnects: 0,
    };
    let mut first_attempt = true;
    let mut inserted: Vec<String> = Vec::new();
    'reconnect: while Instant::now() < deadline {
        if !first_attempt {
            stats.reconnects += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
        first_attempt = false;
        let Ok(stream) = TcpStream::connect(addr) else {
            continue;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let mut reader = BufReader::new(read_half);
        let mut write_half = stream;
        let mut batch = String::new();
        let mut line = String::new();
        while Instant::now() < deadline {
            batch.clear();
            for _ in 0..config.pipeline {
                batch.push_str(&gen_request(
                    &mut rng,
                    config.attributes,
                    config.mix,
                    config.deletes,
                    &mut inserted,
                ));
                batch.push('\n');
            }
            let sent_at = Instant::now();
            if write_half.write_all(batch.as_bytes()).is_err() {
                continue 'reconnect;
            }
            for _ in 0..config.pipeline {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => continue 'reconnect,
                    Ok(_) => {}
                }
                stats.requests += 1;
                stats.latencies_ns.push(sent_at.elapsed().as_nanos() as u64);
                if line.starts_with("{\"ok\":false") {
                    if line.contains("\"code\":\"overloaded\"") {
                        stats.overloaded += 1;
                    } else {
                        stats.errors += 1;
                    }
                }
            }
        }
        break;
    }
    stats
}

fn scrape_io_counter(io: &Json, key: &str) -> u64 {
    io.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Asks the server for `stats` and returns the parsed `"io"` section.
/// Retries briefly: right after the measurement window the front end may
/// still be shedding the departing clients.
fn scrape_stats(addr: std::net::SocketAddr) -> Option<Json> {
    for _ in 0..50 {
        let attempt = (|| -> std::io::Result<String> {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(5)))?;
            let mut writer = stream.try_clone()?;
            writer.write_all(b"{\"op\":\"stats\"}\n")?;
            let mut line = String::new();
            BufReader::new(stream).read_line(&mut line)?;
            Ok(line)
        })();
        if let Ok(line) = attempt {
            if let Ok(doc) = Json::parse(line.trim()) {
                if doc.get("ok").and_then(Json::as_bool) == Some(true) {
                    return doc.get("io").cloned();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    None
}

/// Runs one loadgen measurement: in-process server, `config.connections`
/// pipelined clients, `config.secs` of wall clock.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let dataset = airbnb_like(config.rows, config.attributes, config.seed)
        .map_err(|e| format!("synthetic dataset: {e}"))?;
    let engine =
        CoverageEngine::new(dataset, Threshold::Count(5)).map_err(|e| format!("engine: {e}"))?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // With an op log requested, the server appends every mutation to a
    // scratch file for the duration of the run (the durability overhead is
    // the thing being measured; the contents are discarded afterwards).
    let oplog_path = config.oplog.map(|_| {
        std::env::temp_dir().join(format!(
            "mithra-loadgen-{}-{}.oplog",
            std::process::id(),
            addr.port()
        ))
    });
    let oplog = match (&oplog_path, config.oplog) {
        (Some(path), Some(sync)) => {
            let _ = std::fs::remove_file(path);
            Some(Arc::new(Mutex::new(
                OpLog::open(path, sync).map_err(|e| format!("op log {}: {e}", path.display()))?,
            )))
        }
        _ => None,
    };
    let options = ServeOptions::new()
        .with_io(config.io)
        .with_workers(config.workers)
        .with_max_pending(config.max_pending)
        .with_oplog(oplog);
    let shared = Arc::new(Mutex::new(engine));
    let server = Arc::clone(&shared);
    // The server thread runs until process exit (the listener has no
    // shutdown channel); a loadgen process is short-lived by design.
    std::thread::spawn(move || {
        let _ = serve(server, options, listener);
    });
    // Wait until the server answers before starting the clock.
    if scrape_stats(addr).is_none() {
        return Err("server did not come up".into());
    }

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(config.secs);
    let mut handles = Vec::with_capacity(config.connections);
    for i in 0..config.connections {
        let config = config.clone();
        let seed = config.seed ^ (0xC0FFEE + i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        handles.push(std::thread::spawn(move || {
            client_loop(addr, &config, deadline, seed)
        }));
    }
    let mut latencies: Vec<u64> = Vec::new();
    let (mut requests, mut errors, mut overloaded, mut reconnects) = (0u64, 0u64, 0u64, 0u64);
    for handle in handles {
        let stats = handle.join().map_err(|_| "client thread panicked")?;
        latencies.extend(stats.latencies_ns);
        requests += stats.requests;
        errors += stats.errors;
        overloaded += stats.overloaded;
        reconnects += stats.reconnects;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    let io_stats = scrape_stats(addr);
    let counter = |key: &str| io_stats.as_ref().map_or(0, |io| scrape_io_counter(io, key));
    if let Some(path) = &oplog_path {
        // The server thread keeps its handle; unlinking the scratch file is
        // safe (and reclaims the space on process exit at the latest).
        let _ = std::fs::remove_file(path);
    }
    Ok(LoadgenReport {
        io: match config.io {
            IoMode::Event => "event".into(),
            IoMode::Blocking => "blocking".into(),
        },
        connections: config.connections,
        elapsed_secs: elapsed,
        requests,
        errors,
        overloaded,
        reconnects,
        ops_per_sec: if elapsed > 0.0 {
            requests as f64 / elapsed
        } else {
            0.0
        },
        p50_ns: pct(0.50),
        p95_ns: pct(0.95),
        p99_ns: pct(0.99),
        insert_requests: counter("insert_requests"),
        insert_engine_batches: counter("insert_engine_batches"),
        coalesced_inserts: counter("coalesced_inserts"),
        delete_requests: counter("delete_requests"),
        delete_engine_batches: counter("delete_engine_batches"),
        coalesced_deletes: counter("coalesced_deletes"),
        shed_overloaded: counter("shed_overloaded"),
    })
}

/// Parses `mithra loadgen` / standalone `loadgen` flags into a config.
pub fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<LoadgenConfig, String> {
    const USAGE: &str = "usage: mithra loadgen [--io event|blocking] [--connections N] \
         [--secs S] [--pipeline N] [--workers N] [--max-pending N] [--rows N] \
         [--attrs-n N] [--mix INSERT,COVERAGE] [--deletes PCT] \
         [--oplog-sync always|batch|off] [--seed N]";
    let mut config = LoadgenConfig::default();
    while let Some(flag) = argv.next() {
        let mut value = || {
            argv.next()
                .ok_or_else(|| format!("{flag}: missing value\n{USAGE}"))
        };
        let parse_usize = |flag: &str, v: String| -> Result<usize, String> {
            let n: usize = v.parse().map_err(|e| format!("{flag}: {e}\n{USAGE}"))?;
            if n == 0 {
                return Err(format!("{flag}: must be at least 1\n{USAGE}"));
            }
            Ok(n)
        };
        match flag.as_str() {
            "--io" => {
                config.io = match value()?.as_str() {
                    "event" => IoMode::Event,
                    "blocking" => IoMode::Blocking,
                    other => return Err(format!("--io: unknown mode `{other}`\n{USAGE}")),
                }
            }
            "--connections" => config.connections = parse_usize(&flag, value()?)?,
            "--secs" => {
                let secs: f64 = value()?
                    .parse()
                    .map_err(|e| format!("--secs: {e}\n{USAGE}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--secs: must be a positive duration\n{USAGE}"));
                }
                config.secs = secs;
            }
            "--pipeline" => config.pipeline = parse_usize(&flag, value()?)?,
            "--workers" => config.workers = parse_usize(&flag, value()?)?,
            "--max-pending" => config.max_pending = parse_usize(&flag, value()?)?,
            "--rows" => config.rows = parse_usize(&flag, value()?)?,
            "--attrs-n" => config.attributes = parse_usize(&flag, value()?)?,
            "--mix" => {
                let v = value()?;
                let parts: Vec<u32> = v
                    .split(',')
                    .map(|p| p.trim().parse::<u32>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--mix: {e}\n{USAGE}"))?;
                if parts.len() != 2 || parts[0] + parts[1] > 100 {
                    return Err(format!(
                        "--mix: expected INSERT,COVERAGE percentages summing to ≤ 100\n{USAGE}"
                    ));
                }
                config.mix = (parts[0], parts[1]);
            }
            "--deletes" => {
                let pct: u32 = value()?
                    .parse()
                    .map_err(|e| format!("--deletes: {e}\n{USAGE}"))?;
                if pct > 100 {
                    return Err(format!("--deletes: must be a percentage ≤ 100\n{USAGE}"));
                }
                config.deletes = pct;
            }
            "--oplog-sync" => {
                let v = value()?;
                config.oplog = Some(SyncPolicy::parse(&v).ok_or_else(|| {
                    format!("--oplog-sync: unknown policy `{v}` (always, batch, or off)\n{USAGE}")
                })?);
            }
            "--seed" => {
                config.seed = value()?
                    .parse()
                    .map_err(|e| format!("--seed: {e}\n{USAGE}"))?
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if config.deletes + config.mix.0 + config.mix.1 > 100 {
        return Err(format!(
            "--deletes + --mix shares exceed 100 percent\n{USAGE}"
        ));
    }
    Ok(config)
}

/// Measures follower catch-up: write `entries` single-row insert entries
/// to a scratch op log, then time a cold engine reading and replaying the
/// whole tail — exactly what a follower (or a restarted leader) does.
/// Returns `(elapsed_secs, ops_per_sec)`.
fn follower_catchup(entries: usize, attributes: usize, seed: u64) -> Result<(f64, f64), String> {
    use coverage_service::LoggedOp;
    let path = std::env::temp_dir().join(format!(
        "mithra-catchup-{}-{seed}.oplog",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut log = OpLog::open(&path, SyncPolicy::Off)
        .map_err(|e| format!("op log {}: {e}", path.display()))?;
    let mut rng = Mix64(seed);
    for _ in 0..entries {
        let row: Vec<String> = (0..attributes)
            .map(|_| if rng.below(2) == 0 { "0" } else { "1" }.to_string())
            .collect();
        log.append(LoggedOp::Insert { rows: vec![row] })
            .map_err(|e| format!("append: {e}"))?;
    }
    drop(log);
    let dataset =
        airbnb_like(2_000, attributes, seed).map_err(|e| format!("synthetic dataset: {e}"))?;
    let mut engine =
        CoverageEngine::new(dataset, Threshold::Count(5)).map_err(|e| format!("engine: {e}"))?;
    let started = Instant::now();
    let tail = coverage_service::oplog::read_entries_from(&path, 1)
        .map_err(|e| format!("read op log: {e}"))?;
    let applied = coverage_service::replay_entries(&mut engine, &tail, 0)
        .map_err(|e| format!("replay: {e}"))?;
    let secs = started.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    if applied != entries as u64 {
        return Err(format!("replayed {applied} of {entries} entries"));
    }
    Ok((
        secs,
        if secs > 0.0 {
            entries as f64 / secs
        } else {
            0.0
        },
    ))
}

/// The skewed high-cardinality synthetic dataset the backend comparison
/// runs on: wide dictionaries (Σ cardinality = 368 over 5 attributes) with
/// a min-of-two-uniforms skew, so a few values carry most rows while the
/// long tail of rare values — where dense bitmaps waste a full-width
/// vector per value — dominates the dictionary.
pub fn skewed_dataset(rows: usize, seed: u64) -> Result<Dataset, String> {
    const CARDS: [usize; 5] = [128, 96, 64, 64, 16];
    let schema = Schema::with_cardinalities(&CARDS).map_err(|e| format!("schema: {e}"))?;
    let mut rng = Mix64(seed);
    let data: Vec<Vec<u8>> = (0..rows)
        .map(|_| {
            CARDS
                .iter()
                .map(|&c| rng.below(c as u64).min(rng.below(c as u64)) as u8)
                .collect()
        })
        .collect();
    Dataset::from_rows(schema, &data).map_err(|e| format!("dataset: {e}"))
}

/// One dense-vs-compressed measurement at a fixed row count: index bytes
/// plus best-of-3 per-probe latency for point (fully specified), wide
/// (single-attribute), and τ-capped wide probes.
struct ProbeComparison {
    rows: usize,
    unique: u64,
    dense_bytes: u64,
    compressed_bytes: u64,
    point_ns: (u64, u64),
    wide_ns: (u64, u64),
    capped_ns: (u64, u64),
    containers: (u64, u64, u64),
}

/// Best-of-3 mean per-probe latency of `probe` over `patterns`.
fn time_probes(patterns: &[Vec<u8>], mut probe: impl FnMut(&[u8]) -> u64) -> u64 {
    let best = (0..3)
        .map(|_| {
            let start = Instant::now();
            let mut acc = 0u64;
            for p in patterns {
                acc = acc.wrapping_add(probe(p));
            }
            std::hint::black_box(acc);
            start.elapsed()
        })
        .min()
        .unwrap_or_default();
    best.as_nanos() as u64 / patterns.len().max(1) as u64
}

fn probe_comparison(rows: usize, seed: u64) -> Result<ProbeComparison, String> {
    use coverage_index::X;
    const TAU: u64 = 25;
    let ds = skewed_dataset(rows, seed)?;
    let dense = CoverageOracle::from_dataset(&ds);
    let compressed = CompressedOracle::from_dataset(&ds);
    let mut unique = 0u64;
    dense.for_each_combination(&mut |_, _| unique += 1);

    // Point probes re-probe existing rows (the MUP-maintenance access
    // pattern); wide probes fix one attribute (the level-1 audit pattern);
    // capped probes are the wide set again but through the τ-early-out
    // path `covered` takes on the serving hot path.
    let arity = ds.arity();
    let stride = (rows / 64).max(1);
    let points: Vec<Vec<u8>> = ds
        .rows()
        .step_by(stride)
        .take(64)
        .map(<[u8]>::to_vec)
        .collect();
    let mut rng = Mix64(seed ^ 0xD15E);
    let cards = ds.schema().cardinalities();
    let wides: Vec<Vec<u8>> = (0..32)
        .map(|_| {
            let attr = rng.below(arity as u64) as usize;
            let c = cards[attr] as u64;
            let mut p = vec![X; arity];
            p[attr] = rng.below(c).min(rng.below(c)) as u8;
            p
        })
        .collect();

    Ok(ProbeComparison {
        rows,
        unique,
        dense_bytes: dense.memory_bytes(),
        compressed_bytes: compressed.memory().bytes,
        point_ns: (
            time_probes(&points, |p| dense.coverage(p)),
            time_probes(&points, |p| compressed.coverage(p)),
        ),
        wide_ns: (
            time_probes(&wides, |p| dense.coverage(p)),
            time_probes(&wides, |p| compressed.coverage(p)),
        ),
        capped_ns: (
            time_probes(&wides, |p| dense.coverage_capped(p, TAU)),
            time_probes(&wides, |p| compressed.coverage_capped(p, TAU)),
        ),
        containers: {
            let m = compressed.memory();
            (m.array_containers, m.bitmap_containers, m.run_containers)
        },
    })
}

impl ProbeComparison {
    fn to_json(&self) -> String {
        let per_row = |bytes: u64| bytes as f64 / self.rows.max(1) as f64;
        format!(
            "{{\"rows\": {}, \"unique_combinations\": {}, \
             \"dense\": {{\"bytes\": {}, \"bytes_per_row\": {:.2}, \
             \"point_probe_ns\": {}, \"wide_probe_ns\": {}, \"capped_probe_ns\": {}}}, \
             \"compressed\": {{\"bytes\": {}, \"bytes_per_row\": {:.2}, \
             \"point_probe_ns\": {}, \"wide_probe_ns\": {}, \"capped_probe_ns\": {}, \
             \"containers\": {{\"array\": {}, \"bitmap\": {}, \"runs\": {}}}}}, \
             \"compression_ratio\": {:.2}}}",
            self.rows,
            self.unique,
            self.dense_bytes,
            per_row(self.dense_bytes),
            self.point_ns.0,
            self.wide_ns.0,
            self.capped_ns.0,
            self.compressed_bytes,
            per_row(self.compressed_bytes),
            self.point_ns.1,
            self.wide_ns.1,
            self.capped_ns.1,
            self.containers.0,
            self.containers.1,
            self.containers.2,
            self.dense_bytes as f64 / self.compressed_bytes.max(1) as f64,
        )
    }
}

/// Runs the in-tree conformance linter over this workspace and renders
/// its per-rule summary as the report's `"lint"` section, so the
/// committed benchmark document records the lint trajectory (findings
/// and counted allows per rule) alongside the throughput figures.
///
/// The workspace root is the current directory when it looks like the
/// repo (CI and `cargo run` both start there); otherwise it is derived
/// from this crate's manifest path — a compile-time constant, valid only
/// while the binary still runs inside (a copy of) its build tree. When
/// neither location holds the source, the section degrades to `null`
/// instead of failing the whole report: an installed binary run outside
/// the repo can still measure throughput, which needs no source access.
fn lint_section() -> Result<String, String> {
    let cwd = std::path::PathBuf::from(".");
    let baked = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = if cwd.join("crates/lint").is_dir() {
        cwd
    } else if baked.join("crates/lint").is_dir() {
        baked
    } else {
        return Ok("null".to_string());
    };
    let report = mithra_lint::check_workspace(&root).map_err(|e| format!("lint: {e}"))?;
    let rules = report
        .rules
        .iter()
        .map(|r| {
            format!(
                "{{\"rule\": \"{}\", \"findings\": {}, \"allows\": {}}}",
                mithra_lint::json_escape(r.rule),
                r.findings,
                r.allows
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    Ok(format!(
        "{{\"files_scanned\": {}, \"total_findings\": {}, \"rules\": [\n    {}\n  ]}}",
        report.files_scanned,
        report.findings.len(),
        rules
    ))
}

/// `mithra bench-report`: measure the durability cost of the op log under
/// an identical mixed insert/delete workload (event front end, with and
/// without `--oplog`) plus follower catch-up replay throughput, the
/// dense-vs-compressed backend comparison, and the conformance-lint
/// summary, and emit the committed benchmark document (`BENCH_10.json`
/// shape).
pub fn bench_report(quick: bool) -> Result<String, String> {
    let base = LoadgenConfig {
        connections: if quick { 16 } else { 64 },
        secs: if quick { 1.0 } else { 3.0 },
        mix: (60, 15),
        deletes: 20,
        ..LoadgenConfig::default()
    };
    let no_oplog = run(&base)?;
    let with_oplog = run(&LoadgenConfig {
        oplog: Some(SyncPolicy::Batch),
        ..base.clone()
    })?;
    let catchup_entries = if quick { 10_000 } else { 50_000 };
    let (catchup_secs, catchup_ops) =
        follower_catchup(catchup_entries, base.attributes, base.seed)?;
    // The backend comparison: dense vs compressed index bytes and probe
    // latency on the skewed dataset, at a small and a large scale.
    let probe_scales: [usize; 2] = if quick {
        [5_000, 20_000]
    } else {
        [50_000, 500_000]
    };
    let probes = probe_scales
        .iter()
        .map(|&n| probe_comparison(n, base.seed).map(|c| format!("    {}", c.to_json())))
        .collect::<Result<Vec<_>, _>>()?
        .join(",\n");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let overhead_pct = if no_oplog.ops_per_sec > 0.0 {
        100.0 * (1.0 - with_oplog.ops_per_sec / no_oplog.ops_per_sec)
    } else {
        0.0
    };
    let lint = lint_section()?;
    Ok(format!(
        "{{\n  \"bench\": \"BENCH_10\",\n  \"description\": \"op-log durability overhead \
         (leader with vs without --oplog, batch fsync), follower catch-up replay, the \
         dense-vs-compressed coverage-backend comparison, and the conformance-lint \
         summary\",\n  \
         \"n\": {},\n  \"attributes\": {},\n  \"connections\": {},\n  \"secs\": {},\n  \
         \"mix_insert_coverage\": [{}, {}],\n  \"deletes_pct\": {},\n  \"host_cores\": {},\n  \
         \"no_oplog\": {},\n  \"oplog_batch\": {},\n  \"oplog_overhead_pct\": {:.1},\n  \
         \"catchup\": {{\"entries\": {}, \"secs\": {:.3}, \"ops_per_sec\": {:.1}}},\n  \
         \"speedups\": {{\"insert_delta_vs_recompute\": 40.0, \
         \"delete_delta_vs_recompute\": 25.0, \"sharded_ingest_4_shards\": 2.0, \
         \"note\": \"floors re-asserted by the incremental_vs_batch, delete_vs_batch, and \
         sharded_ingest benches when run\"}},\n  \
         \"lint\": {},\n  \
         \"probe\": [\n{}\n  ]\n}}",
        base.rows,
        base.attributes,
        base.connections,
        base.secs,
        base.mix.0,
        base.mix.1,
        base.deletes,
        cores,
        no_oplog.to_json(),
        with_oplog.to_json(),
        overhead_pct,
        catchup_entries,
        catchup_secs,
        catchup_ops,
        lint,
        probes,
    ))
}

/// The throughput fields `compare_reports` gates on, as
/// `(section, field)` paths into the report document.
const GATED_THROUGHPUT: [(&str, &str); 3] = [
    ("no_oplog", "ops_per_sec"),
    ("oplog_batch", "ops_per_sec"),
    ("catchup", "ops_per_sec"),
];

/// Compares a fresh bench-report document against a committed baseline:
/// every gated throughput figure must be at least `1 - tolerance` of the
/// committed number. Returns one human-readable line per comparison, or an
/// error naming the first regression. Probe latencies and memory figures
/// are deliberately not gated — quick runs are too noisy for them.
pub fn compare_reports(
    current: &str,
    committed: &str,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let current = Json::parse(current).map_err(|e| format!("current report: {e}"))?;
    let committed = Json::parse(committed).map_err(|e| format!("committed report: {e}"))?;
    let field = |doc: &Json, section: &str, key: &str, which: &str| -> Result<f64, String> {
        doc.get(section)
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{which} report has no {section}.{key}"))
    };
    let mut lines = Vec::new();
    for (section, key) in GATED_THROUGHPUT {
        let now = field(&current, section, key, "current")?;
        let then = field(&committed, section, key, "committed")?;
        let delta_pct = if then > 0.0 {
            100.0 * (now / then - 1.0)
        } else {
            0.0
        };
        lines.push(format!(
            "{section}.{key}: {now:.1} vs committed {then:.1} ({delta_pct:+.1}%)"
        ));
        if now < then * (1.0 - tolerance) {
            return Err(format!(
                "throughput regression: {section}.{key} fell from {then:.1} to {now:.1} \
                 ({delta_pct:.1}%, tolerance -{:.0}%)",
                tolerance * 100.0
            ));
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_into_a_config() {
        let config = parse_args(
            [
                "--io",
                "blocking",
                "--connections",
                "8",
                "--secs",
                "0.5",
                "--mix",
                "50,25",
                "--max-pending",
                "3",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(config.io, IoMode::Blocking);
        assert_eq!(config.connections, 8);
        assert!((config.secs - 0.5).abs() < 1e-9);
        assert_eq!(config.mix, (50, 25));
        assert_eq!(config.max_pending, 3);
    }

    #[test]
    fn bad_flags_are_rejected_with_usage() {
        for argv in [
            &["--io", "sync"][..],
            &["--connections", "0"][..],
            &["--secs", "-1"][..],
            &["--mix", "90,20"][..],
            &["--deletes", "101"][..],
            &["--deletes", "20", "--mix", "70,15"][..],
            &["--oplog-sync", "fsync"][..],
            &["--frobnicate"][..],
        ] {
            let err = parse_args(argv.iter().map(|s| s.to_string())).unwrap_err();
            assert!(err.contains("usage:"), "{err}");
        }
    }

    #[test]
    fn delete_and_oplog_flags_parse() {
        let config = parse_args(
            ["--deletes", "20", "--mix", "60,15", "--oplog-sync", "batch"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(config.deletes, 20);
        assert_eq!(config.oplog, Some(SyncPolicy::Batch));
    }

    #[test]
    fn delete_share_generates_deletes_of_previously_inserted_rows() {
        let mut rng = Mix64(7);
        let mut inserted = Vec::new();
        let mut saw_delete = false;
        let mut saw_insert = false;
        for _ in 0..200 {
            let line = gen_request(&mut rng, 4, (50, 10), 30, &mut inserted);
            if line.contains("\"op\":\"delete\"") {
                saw_delete = true;
            }
            if line.contains("\"op\":\"insert\"") {
                saw_insert = true;
            }
        }
        assert!(saw_insert && saw_delete, "mixed stream expected");
        // With no banked inserts yet, a delete roll falls back to insert.
        let mut empty = Vec::new();
        let line = gen_request(&mut Mix64(0), 4, (0, 0), 100, &mut empty);
        assert!(line.contains("\"op\":\"insert\""), "{line}");
    }

    #[test]
    fn a_short_run_with_deletes_and_oplog_reaches_the_engine() {
        let config = LoadgenConfig {
            connections: 4,
            secs: 0.4,
            pipeline: 8,
            rows: 200,
            mix: (60, 10),
            deletes: 25,
            oplog: Some(SyncPolicy::Off),
            ..LoadgenConfig::default()
        };
        let report = run(&config).expect("loadgen runs");
        assert!(report.requests > 0, "{report:?}");
        assert!(
            report.delete_requests > 0,
            "delete share must reach the engine: {report:?}"
        );
        let json = report.to_json();
        assert!(json.contains("\"delete_requests\""), "{json}");
        assert!(json.contains("\"coalesced_deletes\""), "{json}");
    }

    #[test]
    fn skewed_probe_comparison_measures_both_backends() {
        let c = probe_comparison(4_000, 7).expect("comparison runs");
        assert!(c.unique > 0 && c.unique <= 4_000);
        assert!(c.dense_bytes > 0 && c.compressed_bytes > 0);
        assert!(
            c.compressed_bytes < c.dense_bytes,
            "skewed wide-dictionary data must compress: dense {} vs compressed {}",
            c.dense_bytes,
            c.compressed_bytes
        );
        let json = c.to_json();
        for key in [
            "\"compression_ratio\"",
            "\"bytes_per_row\"",
            "\"capped_probe_ns\"",
            "\"containers\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn report_comparison_gates_on_throughput_only() {
        let report = |ops: f64| -> String {
            format!(
                "{{\"no_oplog\":{{\"ops_per_sec\":{ops}}},\
                 \"oplog_batch\":{{\"ops_per_sec\":{ops}}},\
                 \"catchup\":{{\"ops_per_sec\":{ops}}},\
                 \"probe\":[{{\"compressed\":{{\"point_probe_ns\":999999}}}}]}}"
            )
        };
        // Within tolerance (even slightly down) passes and reports deltas.
        let lines = compare_reports(&report(95.0), &report(100.0), 0.20).expect("within tolerance");
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("no_oplog.ops_per_sec"), "{lines:?}");
        // Past tolerance fails, naming the metric.
        let err = compare_reports(&report(70.0), &report(100.0), 0.20).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        assert!(err.contains("no_oplog.ops_per_sec"), "{err}");
        // A malformed or incomplete report is an error, not a silent pass.
        let err = compare_reports("{}", &report(100.0), 0.20).unwrap_err();
        assert!(err.contains("no no_oplog.ops_per_sec"), "{err}");
        assert!(compare_reports("nonsense", &report(1.0), 0.2).is_err());
    }

    #[test]
    fn a_short_run_measures_real_traffic() {
        let config = LoadgenConfig {
            connections: 4,
            secs: 0.4,
            pipeline: 4,
            rows: 200,
            ..LoadgenConfig::default()
        };
        let report = run(&config).expect("loadgen runs");
        assert!(report.requests > 0, "{report:?}");
        assert!(report.ops_per_sec > 0.0);
        assert!(report.p99_ns >= report.p50_ns);
        assert_eq!(report.io, "event");
        assert!(
            report.insert_requests > 0,
            "insert-heavy mix must reach the engine: {report:?}"
        );
        let json = report.to_json();
        assert!(json.contains("\"ops_per_sec\""), "{json}");
    }
}
