//! TCP load generator for the `mithra serve` front ends.
//!
//! Spawns an in-process server (so one command measures a full stack with
//! zero setup), drives it with N concurrent pipelined connections over a
//! configurable op mix for a fixed wall-clock window, and reports
//! throughput, latency percentiles, and the server's own `stats.io`
//! counters — the batching counters are how cross-connection insert
//! coalescing is observed from the outside.
//!
//! Exposed as `mithra loadgen` / `mithra bench-report` and as the
//! standalone `loadgen` binary in this crate.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use coverage_core::Threshold;
use coverage_data::generators::airbnb_like;
use coverage_service::protocol::Json;
use coverage_service::{serve, CoverageEngine, IoMode, ServeOptions};

/// What one loadgen run does.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Which front end the in-process server runs.
    pub io: IoMode,
    /// Concurrent client connections.
    pub connections: usize,
    /// Wall-clock run length in seconds.
    pub secs: f64,
    /// Requests each connection keeps in flight (batched writes).
    pub pipeline: usize,
    /// Worker threads for the blocking front end.
    pub workers: usize,
    /// Admission bound for the event front end.
    pub max_pending: usize,
    /// Rows in the synthetic (AirBnB-like) starting dataset.
    pub rows: usize,
    /// Attributes in the synthetic dataset.
    pub attributes: usize,
    /// Op mix, in percent: `(insert, coverage)`; the remainder is `mups`.
    pub mix: (u32, u32),
    /// RNG seed (per-client streams derive from it).
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            io: IoMode::Event,
            connections: 64,
            secs: 2.0,
            pipeline: 16,
            workers: coverage_service::DEFAULT_WORKERS,
            max_pending: coverage_service::DEFAULT_MAX_PENDING,
            rows: 2_000,
            attributes: 6,
            mix: (80, 15),
            seed: 2019,
        }
    }
}

/// What one loadgen run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// `"event"` or `"blocking"`.
    pub io: String,
    /// Concurrent client connections requested.
    pub connections: usize,
    /// Wall-clock seconds actually spent in the measurement window.
    pub elapsed_secs: f64,
    /// Responses received (any outcome).
    pub requests: u64,
    /// `{"ok":false}` responses that were *not* `overloaded` sheds.
    pub errors: u64,
    /// Responses shed with the `overloaded` code.
    pub overloaded: u64,
    /// Times a client had to reconnect (dropped/shed connections).
    pub reconnects: u64,
    /// Responses per second over the window.
    pub ops_per_sec: f64,
    /// Client-observed latency percentiles, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Server-side `stats.io.insert_requests` after the run.
    pub insert_requests: u64,
    /// Server-side `stats.io.insert_engine_batches` after the run.
    pub insert_engine_batches: u64,
    /// Server-side `stats.io.coalesced_inserts` after the run.
    pub coalesced_inserts: u64,
    /// Server-side `stats.io.shed_overloaded` after the run.
    pub shed_overloaded: u64,
}

impl LoadgenReport {
    /// The report as one JSON object (stable field order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"io\":\"{}\",\"connections\":{},\"elapsed_secs\":{:.3},\
             \"requests\":{},\"errors\":{},\"overloaded\":{},\"reconnects\":{},\
             \"ops_per_sec\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
             \"insert_requests\":{},\"insert_engine_batches\":{},\
             \"coalesced_inserts\":{},\"shed_overloaded\":{}}}",
            self.io,
            self.connections,
            self.elapsed_secs,
            self.requests,
            self.errors,
            self.overloaded,
            self.reconnects,
            self.ops_per_sec,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.insert_requests,
            self.insert_engine_batches,
            self.coalesced_inserts,
            self.shed_overloaded,
        )
    }
}

/// Splitmix-style PRNG: one u64 of state, good enough to pick ops and row
/// values without dragging a generator dependency into the hot loop.
struct Mix64(u64);

impl Mix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct ClientStats {
    latencies_ns: Vec<u64>,
    requests: u64,
    errors: u64,
    overloaded: u64,
    reconnects: u64,
}

fn gen_request(rng: &mut Mix64, attributes: usize, mix: (u32, u32)) -> String {
    let roll = rng.below(100) as u32;
    if roll < mix.0 {
        let mut line = String::from("{\"op\":\"insert\",\"row\":[");
        for i in 0..attributes {
            if i > 0 {
                line.push(',');
            }
            line.push('"');
            line.push(if rng.below(2) == 0 { '0' } else { '1' });
            line.push('"');
        }
        line.push_str("]}");
        line
    } else if roll < mix.0 + mix.1 {
        let mut pattern = String::with_capacity(attributes);
        for _ in 0..attributes {
            pattern.push(match rng.below(4) {
                0 => '0',
                1 => '1',
                _ => 'X', // bias toward general patterns (cheap + cacheable)
            });
        }
        format!("{{\"op\":\"coverage\",\"pattern\":\"{pattern}\"}}")
    } else {
        "{\"op\":\"mups\",\"limit\":3}".to_string()
    }
}

/// One client: keeps `pipeline` requests in flight against `addr` until
/// the deadline, reconnecting (with a tiny backoff) when the server sheds
/// or drops the connection.
fn client_loop(
    addr: std::net::SocketAddr,
    config: &LoadgenConfig,
    deadline: Instant,
    seed: u64,
) -> ClientStats {
    let mut rng = Mix64(seed);
    let mut stats = ClientStats {
        latencies_ns: Vec::new(),
        requests: 0,
        errors: 0,
        overloaded: 0,
        reconnects: 0,
    };
    let mut first_attempt = true;
    'reconnect: while Instant::now() < deadline {
        if !first_attempt {
            stats.reconnects += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
        first_attempt = false;
        let Ok(stream) = TcpStream::connect(addr) else {
            continue;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let mut reader = BufReader::new(read_half);
        let mut write_half = stream;
        let mut batch = String::new();
        let mut line = String::new();
        while Instant::now() < deadline {
            batch.clear();
            for _ in 0..config.pipeline {
                batch.push_str(&gen_request(&mut rng, config.attributes, config.mix));
                batch.push('\n');
            }
            let sent_at = Instant::now();
            if write_half.write_all(batch.as_bytes()).is_err() {
                continue 'reconnect;
            }
            for _ in 0..config.pipeline {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => continue 'reconnect,
                    Ok(_) => {}
                }
                stats.requests += 1;
                stats.latencies_ns.push(sent_at.elapsed().as_nanos() as u64);
                if line.starts_with("{\"ok\":false") {
                    if line.contains("\"code\":\"overloaded\"") {
                        stats.overloaded += 1;
                    } else {
                        stats.errors += 1;
                    }
                }
            }
        }
        break;
    }
    stats
}

fn scrape_io_counter(io: &Json, key: &str) -> u64 {
    io.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Asks the server for `stats` and returns the parsed `"io"` section.
/// Retries briefly: right after the measurement window the front end may
/// still be shedding the departing clients.
fn scrape_stats(addr: std::net::SocketAddr) -> Option<Json> {
    for _ in 0..50 {
        let attempt = (|| -> std::io::Result<String> {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(5)))?;
            let mut writer = stream.try_clone()?;
            writer.write_all(b"{\"op\":\"stats\"}\n")?;
            let mut line = String::new();
            BufReader::new(stream).read_line(&mut line)?;
            Ok(line)
        })();
        if let Ok(line) = attempt {
            if let Ok(doc) = Json::parse(line.trim()) {
                if doc.get("ok").and_then(Json::as_bool) == Some(true) {
                    return doc.get("io").cloned();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    None
}

/// Runs one loadgen measurement: in-process server, `config.connections`
/// pipelined clients, `config.secs` of wall clock.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let dataset = airbnb_like(config.rows, config.attributes, config.seed)
        .map_err(|e| format!("synthetic dataset: {e}"))?;
    let engine =
        CoverageEngine::new(dataset, Threshold::Count(5)).map_err(|e| format!("engine: {e}"))?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let options = ServeOptions::new()
        .with_io(config.io)
        .with_workers(config.workers)
        .with_max_pending(config.max_pending);
    let shared = Arc::new(Mutex::new(engine));
    let server = Arc::clone(&shared);
    // The server thread runs until process exit (the listener has no
    // shutdown channel); a loadgen process is short-lived by design.
    std::thread::spawn(move || {
        let _ = serve(server, options, listener);
    });
    // Wait until the server answers before starting the clock.
    if scrape_stats(addr).is_none() {
        return Err("server did not come up".into());
    }

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(config.secs);
    let mut handles = Vec::with_capacity(config.connections);
    for i in 0..config.connections {
        let config = config.clone();
        let seed = config.seed ^ (0xC0FFEE + i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        handles.push(std::thread::spawn(move || {
            client_loop(addr, &config, deadline, seed)
        }));
    }
    let mut latencies: Vec<u64> = Vec::new();
    let (mut requests, mut errors, mut overloaded, mut reconnects) = (0u64, 0u64, 0u64, 0u64);
    for handle in handles {
        let stats = handle.join().map_err(|_| "client thread panicked")?;
        latencies.extend(stats.latencies_ns);
        requests += stats.requests;
        errors += stats.errors;
        overloaded += stats.overloaded;
        reconnects += stats.reconnects;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    let io_stats = scrape_stats(addr);
    let counter = |key: &str| io_stats.as_ref().map_or(0, |io| scrape_io_counter(io, key));
    Ok(LoadgenReport {
        io: match config.io {
            IoMode::Event => "event".into(),
            IoMode::Blocking => "blocking".into(),
        },
        connections: config.connections,
        elapsed_secs: elapsed,
        requests,
        errors,
        overloaded,
        reconnects,
        ops_per_sec: if elapsed > 0.0 {
            requests as f64 / elapsed
        } else {
            0.0
        },
        p50_ns: pct(0.50),
        p95_ns: pct(0.95),
        p99_ns: pct(0.99),
        insert_requests: counter("insert_requests"),
        insert_engine_batches: counter("insert_engine_batches"),
        coalesced_inserts: counter("coalesced_inserts"),
        shed_overloaded: counter("shed_overloaded"),
    })
}

/// Parses `mithra loadgen` / standalone `loadgen` flags into a config.
pub fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<LoadgenConfig, String> {
    const USAGE: &str = "usage: mithra loadgen [--io event|blocking] [--connections N] \
         [--secs S] [--pipeline N] [--workers N] [--max-pending N] [--rows N] \
         [--attrs-n N] [--mix INSERT,COVERAGE] [--seed N]";
    let mut config = LoadgenConfig::default();
    while let Some(flag) = argv.next() {
        let mut value = || {
            argv.next()
                .ok_or_else(|| format!("{flag}: missing value\n{USAGE}"))
        };
        let parse_usize = |flag: &str, v: String| -> Result<usize, String> {
            let n: usize = v.parse().map_err(|e| format!("{flag}: {e}\n{USAGE}"))?;
            if n == 0 {
                return Err(format!("{flag}: must be at least 1\n{USAGE}"));
            }
            Ok(n)
        };
        match flag.as_str() {
            "--io" => {
                config.io = match value()?.as_str() {
                    "event" => IoMode::Event,
                    "blocking" => IoMode::Blocking,
                    other => return Err(format!("--io: unknown mode `{other}`\n{USAGE}")),
                }
            }
            "--connections" => config.connections = parse_usize(&flag, value()?)?,
            "--secs" => {
                let secs: f64 = value()?
                    .parse()
                    .map_err(|e| format!("--secs: {e}\n{USAGE}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--secs: must be a positive duration\n{USAGE}"));
                }
                config.secs = secs;
            }
            "--pipeline" => config.pipeline = parse_usize(&flag, value()?)?,
            "--workers" => config.workers = parse_usize(&flag, value()?)?,
            "--max-pending" => config.max_pending = parse_usize(&flag, value()?)?,
            "--rows" => config.rows = parse_usize(&flag, value()?)?,
            "--attrs-n" => config.attributes = parse_usize(&flag, value()?)?,
            "--mix" => {
                let v = value()?;
                let parts: Vec<u32> = v
                    .split(',')
                    .map(|p| p.trim().parse::<u32>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--mix: {e}\n{USAGE}"))?;
                if parts.len() != 2 || parts[0] + parts[1] > 100 {
                    return Err(format!(
                        "--mix: expected INSERT,COVERAGE percentages summing to ≤ 100\n{USAGE}"
                    ));
                }
                config.mix = (parts[0], parts[1]);
            }
            "--seed" => {
                config.seed = value()?
                    .parse()
                    .map_err(|e| format!("--seed: {e}\n{USAGE}"))?
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(config)
}

/// `mithra bench-report`: measure both front ends under one identical
/// insert-heavy workload and emit the committed benchmark document
/// (`BENCH_6.json` shape).
pub fn bench_report(quick: bool) -> Result<String, String> {
    let base = LoadgenConfig {
        connections: if quick { 16 } else { 64 },
        secs: if quick { 1.0 } else { 3.0 },
        ..LoadgenConfig::default()
    };
    let event = run(&LoadgenConfig {
        io: IoMode::Event,
        ..base.clone()
    })?;
    let blocking = run(&LoadgenConfig {
        io: IoMode::Blocking,
        ..base.clone()
    })?;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let speedup = if blocking.ops_per_sec > 0.0 {
        event.ops_per_sec / blocking.ops_per_sec
    } else {
        0.0
    };
    Ok(format!(
        "{{\n  \"bench\": \"BENCH_6\",\n  \"description\": \"event vs blocking serving front \
         end, insert-heavy pipelined load\",\n  \"n\": {},\n  \"attributes\": {},\n  \
         \"connections\": {},\n  \"secs\": {},\n  \"host_cores\": {},\n  \"event\": {},\n  \
         \"blocking\": {},\n  \"speedup_event_over_blocking\": {:.2}\n}}",
        base.rows,
        base.attributes,
        base.connections,
        base.secs,
        cores,
        event.to_json(),
        blocking.to_json(),
        speedup,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_into_a_config() {
        let config = parse_args(
            [
                "--io",
                "blocking",
                "--connections",
                "8",
                "--secs",
                "0.5",
                "--mix",
                "50,25",
                "--max-pending",
                "3",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(config.io, IoMode::Blocking);
        assert_eq!(config.connections, 8);
        assert!((config.secs - 0.5).abs() < 1e-9);
        assert_eq!(config.mix, (50, 25));
        assert_eq!(config.max_pending, 3);
    }

    #[test]
    fn bad_flags_are_rejected_with_usage() {
        for argv in [
            &["--io", "sync"][..],
            &["--connections", "0"][..],
            &["--secs", "-1"][..],
            &["--mix", "90,20"][..],
            &["--frobnicate"][..],
        ] {
            let err = parse_args(argv.iter().map(|s| s.to_string())).unwrap_err();
            assert!(err.contains("usage:"), "{err}");
        }
    }

    #[test]
    fn a_short_run_measures_real_traffic() {
        let config = LoadgenConfig {
            connections: 4,
            secs: 0.4,
            pipeline: 4,
            rows: 200,
            ..LoadgenConfig::default()
        };
        let report = run(&config).expect("loadgen runs");
        assert!(report.requests > 0, "{report:?}");
        assert!(report.ops_per_sec > 0.0);
        assert!(report.p99_ns >= report.p50_ns);
        assert_eq!(report.io, "event");
        assert!(
            report.insert_requests > 0,
            "insert-heavy mix must reach the engine: {report:?}"
        );
        let json = report.to_json();
        assert!(json.contains("\"ops_per_sec\""), "{json}");
    }
}
