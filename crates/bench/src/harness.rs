//! Shared plumbing for the experiment binaries: wall-clock timing, aligned
//! table printing, and the paper's standard threshold sweeps.

use std::time::Instant;

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// A simple aligned text table that prints as it grows — experiment binaries
/// stream rows so progress is visible during long sweeps.
pub struct Table {
    columns: Vec<String>,
    widths: Vec<usize>,
    printed_header: bool,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(columns: &[&str]) -> Self {
        let columns: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
        let widths = columns.iter().map(|c| c.len().max(12)).collect();
        Self {
            columns,
            widths,
            printed_header: false,
        }
    }

    fn print_header(&mut self) {
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&self.widths)
            .map(|(c, &w)| format!("{c:>w$}"))
            .collect();
        println!("{}", header.join("  "));
        println!("{}", "-".repeat(header.join("  ").len()));
        self.printed_header = true;
    }

    /// Prints one row (stringify cells first).
    pub fn row(&mut self, cells: &[String]) {
        if !self.printed_header {
            self.print_header();
        }
        let line: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, &w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a runtime in seconds with adaptive precision.
pub fn secs(x: f64) -> String {
    if x < 0.01 {
        format!("{:.2}ms", x * 1e3)
    } else {
        format!("{x:.2}s")
    }
}

/// The threshold-rate sweep of Figs 12/17: `10^-6 … 10^-2`.
pub const THRESHOLD_RATES_WIDE: [f64; 5] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2];

/// The BlueNile sweep of Fig 13: `10^-5 … 10^-2`.
pub const THRESHOLD_RATES_BLUENILE: [f64; 4] = [1e-5, 1e-4, 1e-3, 1e-2];

/// Prints a figure banner.
pub fn banner(id: &str, caption: &str) {
    println!("\n=== {id} — {caption} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_duration() {
        let (v, s) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(secs(0.005), "5.00ms");
        assert_eq!(secs(2.5), "2.50s");
    }
}
