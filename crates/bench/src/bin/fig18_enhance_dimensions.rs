//! Runs the Fig 18 sweep (runtime view of the shared Fig 18+19 experiment).
fn main() {
    coverage_bench::experiments::fig18_19_enhance_dimensions::run(
        coverage_bench::experiments::quick_flag(),
    );
}
