//! Runs the `fig14_data_size` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::fig14_data_size::run(coverage_bench::experiments::quick_flag());
}
