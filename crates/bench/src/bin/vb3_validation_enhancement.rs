//! Runs the `vb3_validation_enhancement` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::vb3_validation_enhancement::run(
        coverage_bench::experiments::quick_flag(),
    );
}
