//! Runs the `theorem1_worstcase` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::theorem1_worstcase::run(coverage_bench::experiments::quick_flag());
}
