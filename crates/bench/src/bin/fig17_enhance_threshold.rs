//! Runs the `fig17_enhance_threshold` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::fig17_enhance_threshold::run(
        coverage_bench::experiments::quick_flag(),
    );
}
