//! Runs the `fig06_mup_distribution` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::fig06_mup_distribution::run(
        coverage_bench::experiments::quick_flag(),
    );
}
