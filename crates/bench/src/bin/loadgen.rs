//! Standalone load generator for the `mithra serve` TCP front ends: spawns
//! an in-process server and hammers it with pipelined connections. Same
//! flags as `mithra loadgen`; see `coverage_bench::loadgen`.

use std::process::ExitCode;

fn main() -> ExitCode {
    match coverage_bench::loadgen::parse_args(std::env::args().skip(1))
        .and_then(|config| coverage_bench::loadgen::run(&config))
    {
        Ok(report) => {
            println!("{}", report.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
