//! Runs the `vertex_cover_reduction` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::vertex_cover_reduction::run(
        coverage_bench::experiments::quick_flag(),
    );
}
