//! Runs the `fig11_classifier` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::fig11_classifier::run(coverage_bench::experiments::quick_flag());
}
