//! Runs the `fig16_level_limited` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::fig16_level_limited::run(coverage_bench::experiments::quick_flag());
}
