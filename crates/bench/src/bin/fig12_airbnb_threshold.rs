//! Runs the `fig12_airbnb_threshold` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::fig12_airbnb_threshold::run(
        coverage_bench::experiments::quick_flag(),
    );
}
