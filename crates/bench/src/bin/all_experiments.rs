//! Runs the complete experiment suite in paper order (`--quick` shrinks it).
use coverage_bench::experiments as e;

fn main() {
    let quick = e::quick_flag();
    e::fig06_mup_distribution::run(quick);
    e::compas_case_study::run(quick);
    e::fig11_classifier::run(quick);
    e::vb3_validation_enhancement::run(quick);
    e::theorem1_worstcase::run(quick);
    e::vertex_cover_reduction::run(quick);
    e::fig12_airbnb_threshold::run(quick);
    e::fig13_bluenile_threshold::run(quick);
    e::fig14_data_size::run(quick);
    e::fig15_dimensions::run(quick);
    e::fig16_level_limited::run(quick);
    e::fig17_enhance_threshold::run(quick);
    e::fig18_19_enhance_dimensions::run(quick);
}
