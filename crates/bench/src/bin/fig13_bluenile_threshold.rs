//! Runs the `fig13_bluenile_threshold` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::fig13_bluenile_threshold::run(
        coverage_bench::experiments::quick_flag(),
    );
}
