//! Runs the `compas_case_study` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::compas_case_study::run(coverage_bench::experiments::quick_flag());
}
