//! Runs the `fig15_dimensions` experiment (see crate docs; `--quick` shrinks it).
fn main() {
    coverage_bench::experiments::fig15_dimensions::run(coverage_bench::experiments::quick_flag());
}
