//! Rule `unsafe-audit`: every `unsafe` must carry a `// SAFETY:` comment.
//!
//! Applies to the whole workspace (first-party crates), test code
//! included — an unsound test is still unsound. The comment must be
//! *adjacent*: the last comment block ending on the line directly above
//! the `unsafe` keyword (or trailing on the same line) must contain
//! `SAFETY:`. A doc comment three items up does not count.

use crate::analysis::SourceFile;
use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::Workspace;

/// This rule's name.
pub const RULE: &str = "unsafe-audit";

/// Runs the rule over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        check_file(file, &mut findings);
    }
    findings
}

fn check_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    for i in file.significant() {
        if !file.is_ident(i, "unsafe") {
            continue;
        }
        // `unsafe` in a doc/string context never reaches here (the lexer
        // already classified those); every Ident occurrence is real code:
        // an unsafe block, fn, trait, or impl.
        let line = file.tokens[i].line;
        if !has_adjacent_safety_comment(file, i) {
            findings.push(Finding {
                rule: RULE,
                file: file.rel_path.clone(),
                line,
                message: "`unsafe` without an adjacent `// SAFETY:` comment".into(),
            });
        }
    }
}

/// Looks for a `SAFETY:` comment attached to the `unsafe` token at index
/// `i`: either a comment on the line(s) immediately above the *statement*
/// the `unsafe` starts on, or a comment earlier on the same line.
fn has_adjacent_safety_comment(file: &SourceFile, i: usize) -> bool {
    // The statement may start before `unsafe` on the same line
    // (`let x = unsafe { … }`, `pub unsafe fn …`), so the comment
    // requirement anchors on the first line of that statement: a comment
    // counts when it ends on the `unsafe` line itself or forms a
    // contiguous run of comment lines reaching the line directly above.
    // `anchor` walks upward as adjacent comments are accepted, so the
    // `SAFETY:` marker may sit on any line of a multi-line comment run.
    let mut anchor = file.tokens[i].line;
    for tok in file.tokens.iter().rev() {
        if tok.start >= file.tokens[i].start {
            continue;
        }
        let is_comment = matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment);
        let end_line = tok.end_line(&file.text);
        if is_comment {
            if end_line + 1 >= anchor {
                if tok.text(&file.text).contains("SAFETY:") {
                    return true;
                }
                anchor = anchor.min(tok.line);
                continue;
            }
            return false; // nearest comment is not adjacent
        }
        // A significant token between the candidate comments and the
        // `unsafe` line: only blocking if it ends on a line *above* the
        // current anchor (i.e. a real previous statement separating them).
        if end_line < anchor {
            return false;
        }
    }
    false
}
