//! Shared guard-scope analysis for the two concurrency rules.
//!
//! Walks every serving hot-path file, finds each `Mutex` guard's live
//! range — from the `.lock()` call to the end of the binding's block (or
//! an early `drop(guard)`), to the end of the statement for guards that
//! never escape into a binding, or the span of an `if let`/`while let`
//! body — and scans the range for two hazard classes:
//!
//! * **blocking calls** while the guard is live (directly via a
//!   [`crate::symbols::BLOCKING_PRIMITIVES`] method, or transitively via
//!   a uniquely-named workspace fn the symbol table knows to block);
//! * **nested lock acquisitions**, which become edges of the
//!   lock-ordering graph consumed by the `lock-order` rule.
//!
//! `with_engine_contained(…)` is special-cased: the engine mutex is
//! acquired inside that helper and held for the whole closure argument,
//! so the call's argument span is treated as a live `engine`-lock scope —
//! without this the engine lock would be invisible to both rules.

use crate::analysis::SourceFile;
use crate::lexer::TokenKind;
use crate::parser::{statement_end, FileAst};
use crate::rules::{panic_free, Finding};
use crate::symbols::{is_blocking_primitive, lock_receiver, SymbolTable};
use crate::Workspace;

/// The helper whose argument span implies a live `engine` lock.
pub const ENGINE_WRAPPER: &str = "with_engine_contained";

/// One "lock B acquired while lock A is held" observation.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The lock already held.
    pub from: String,
    /// The lock being acquired.
    pub to: String,
    /// File of the acquisition site.
    pub file: String,
    /// 1-based line of the acquisition site.
    pub line: u32,
    /// Call chain from the scope to the acquisition (empty for a direct
    /// `.lock()` in the scope).
    pub via: Vec<String>,
}

/// Everything the scan produced.
pub struct LockScan {
    /// Guard-held-across-blocking-call findings (rule
    /// `lock-across-blocking`).
    pub blocking: Vec<Finding>,
    /// Acquisition-order edges (consumed by rule `lock-order`).
    pub edges: Vec<LockEdge>,
}

/// How a guard scope came to be, for messages.
enum ScopeOrigin {
    /// `let g = x.lock()…;` — guard named `g` over lock `x`.
    Binding(Option<String>),
    /// The guard is a temporary inside one statement.
    Temporary,
    /// The argument span of [`ENGINE_WRAPPER`].
    Wrapper,
}

/// One live-guard region to scan: significant positions `(start, end)`
/// exclusive of both endpoints' own tokens.
struct GuardScope {
    lock: String,
    origin: ScopeOrigin,
    start: usize,
    end: usize,
}

/// Runs the scan over every hot-path file.
pub fn scan(ws: &Workspace) -> LockScan {
    let st = SymbolTable::build(ws);
    let mut out = LockScan {
        blocking: Vec::new(),
        edges: Vec::new(),
    };
    for file in &ws.files {
        if !panic_free::is_hot_path(&file.rel_path) {
            continue;
        }
        scan_file(file, &st, &mut out);
    }
    // A finding per (file, line, message) is enough even when scopes
    // overlap; edges dedupe per (from, to) keeping the first site.
    out.blocking.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.message.as_str(),
        ))
    });
    out.blocking
        .dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    let mut seen: Vec<(String, String)> = Vec::new();
    out.edges.retain(|e| {
        let key = (e.from.clone(), e.to.clone());
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
    out
}

fn scan_file(file: &SourceFile, st: &SymbolTable, out: &mut LockScan) {
    let sig: Vec<usize> = file.significant().collect();
    let ast = FileAst::build(file);
    let text_at = |p: usize| file.text_of(&file.tokens[sig[p]]);
    let is_ident_at = |p: usize| file.tokens[sig[p]].kind == TokenKind::Ident;

    let mut scopes: Vec<GuardScope> = Vec::new();
    for p in 0..sig.len() {
        if file.test_mask[sig[p]] || !is_ident_at(p) {
            continue;
        }
        let next_is_paren = p + 1 < sig.len() && text_at(p + 1) == "(";
        if !next_is_paren {
            continue;
        }
        let name = text_at(p);
        if name == "lock" && p > 0 && text_at(p - 1) == "." {
            if let Some(scope) = guard_scope(file, &sig, &ast, p) {
                scopes.push(scope);
            }
        } else if name == ENGINE_WRAPPER {
            if let Some(close) = matching_paren(file, &sig, p + 1) {
                scopes.push(GuardScope {
                    lock: "engine".into(),
                    origin: ScopeOrigin::Wrapper,
                    start: p + 1,
                    end: close,
                });
            }
        }
    }

    for scope in &scopes {
        scan_scope(file, &sig, st, scope, out);
    }
}

/// Positions of the `)` matching the `(` at significant position `open`.
fn matching_paren(file: &SourceFile, sig: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (p, &i) in sig.iter().enumerate().skip(open) {
        match file.text_of(&file.tokens[i]) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(p);
                }
            }
            _ => {}
        }
    }
    None
}

/// Builds the guard scope for the `.lock()` whose `lock` ident sits at
/// significant position `p`.
fn guard_scope(file: &SourceFile, sig: &[usize], ast: &FileAst, p: usize) -> Option<GuardScope> {
    let lock = lock_receiver(file, sig, p).unwrap_or_else(|| "<expr>".into());
    let text_at = |q: usize| file.text_of(&file.tokens[sig[q]]);

    // Walk back to the start of the statement, looking for `let`.
    let mut parens = 0i32;
    let mut brackets = 0i32;
    let mut braces = 0i32;
    let mut let_pos: Option<usize> = None;
    let mut q = p;
    while q > 0 {
        q -= 1;
        match text_at(q) {
            ")" => parens += 1,
            "(" => {
                parens -= 1;
                if parens < 0 {
                    break;
                }
            }
            "]" => brackets += 1,
            "[" => {
                brackets -= 1;
                if brackets < 0 {
                    break;
                }
            }
            "}" => braces += 1,
            "{" => {
                braces -= 1;
                if braces < 0 {
                    break;
                }
            }
            ";" | "," if parens == 0 && brackets == 0 && braces == 0 => break,
            ">" if q > 0 && text_at(q - 1) == "=" => break, // match arm `=>`
            "let" if parens == 0 && brackets == 0 && braces == 0 => {
                let_pos = Some(q);
                break;
            }
            _ => {}
        }
    }

    let Some(let_pos) = let_pos else {
        // No binding: the guard is a temporary living to the end of the
        // statement it appears in.
        return Some(GuardScope {
            lock,
            origin: ScopeOrigin::Temporary,
            start: p,
            end: statement_end(file, sig, p),
        });
    };

    // `if let` / `while let`: the guard lives for the condition's block.
    let cond_form = let_pos > 0 && matches!(text_at(let_pos - 1), "if" | "while");
    if cond_form {
        // First `{` at paren depth 0 after the lock call opens the body.
        let mut depth = 0i32;
        let mut r = p;
        while r < sig.len() {
            match text_at(r) {
                "(" => depth += 1,
                ")" => depth -= 1,
                "{" if depth <= 0 => {
                    let open_tok = sig[r];
                    let close_tok = ast
                        .blocks
                        .iter()
                        .find(|b| b.open == open_tok)
                        .map(|b| b.close)?;
                    let close_pos = sig.iter().position(|&i| i == close_tok)?;
                    return Some(GuardScope {
                        lock,
                        origin: ScopeOrigin::Binding(binding_name(file, sig, let_pos)),
                        start: r,
                        end: close_pos,
                    });
                }
                _ => {}
            }
            r += 1;
        }
        return None;
    }

    // Does the guard escape into the binding? Yes when bound through a
    // `match` (the poison-recovery idiom) or when the post-`.lock()`
    // chain consists only of guard-preserving adapters.
    let through_match = (let_pos..p).any(|r| text_at(r) == "match");
    let escaping = through_match || chain_preserves_guard(file, sig, p);

    if escaping {
        let stmt = statement_end(file, sig, let_pos);
        let block = ast.innermost_block(sig[let_pos])?;
        let close_tok = ast.blocks[block].close;
        let close_pos = sig.iter().position(|&i| i == close_tok)?;
        Some(GuardScope {
            lock,
            origin: ScopeOrigin::Binding(binding_name(file, sig, let_pos)),
            start: stmt,
            end: close_pos,
        })
    } else {
        Some(GuardScope {
            lock,
            origin: ScopeOrigin::Temporary,
            start: p,
            end: statement_end(file, sig, p),
        })
    }
}

/// The name bound by the `let` at significant position `let_pos`, when
/// the pattern is an identifier or a one-armed constructor like `Ok(g)`.
fn binding_name(file: &SourceFile, sig: &[usize], let_pos: usize) -> Option<String> {
    let mut q = let_pos + 1;
    let text_at = |q: usize| -> Option<&str> { Some(file.text_of(&file.tokens[*sig.get(q)?])) };
    if text_at(q) == Some("mut") {
        q += 1;
    }
    let first = sig.get(q).copied()?;
    if file.tokens[first].kind != TokenKind::Ident {
        return None;
    }
    if text_at(q + 1) == Some("(") {
        let inner = sig.get(q + 2).copied()?;
        if file.tokens[inner].kind == TokenKind::Ident {
            return Some(file.text_of(&file.tokens[inner]).to_string());
        }
        return None;
    }
    Some(file.text_of(&file.tokens[first]).to_string())
}

/// True when every method chained after `.lock()` is a guard-preserving
/// adapter (`unwrap`, `expect`, `unwrap_or_else`), so the binding holds
/// the guard itself.
fn chain_preserves_guard(file: &SourceFile, sig: &[usize], lock_pos: usize) -> bool {
    let text_at = |q: usize| file.text_of(&file.tokens[sig[q]]);
    // Skip the `( )` of `.lock()`.
    let Some(mut q) = matching_paren(file, sig, lock_pos + 1) else {
        return false;
    };
    q += 1;
    while q + 1 < sig.len() && text_at(q) == "." {
        let m = q + 1;
        if !matches!(text_at(m), "unwrap" | "expect" | "unwrap_or_else") {
            return false;
        }
        let Some(close) = matching_paren(file, sig, m + 1) else {
            return false;
        };
        q = close + 1;
    }
    true
}

/// Scans one guard scope for blocking calls and nested acquisitions.
fn scan_scope(
    file: &SourceFile,
    sig: &[usize],
    st: &SymbolTable,
    scope: &GuardScope,
    out: &mut LockScan,
) {
    let text_at = |p: usize| file.text_of(&file.tokens[sig[p]]);
    let held = match &scope.origin {
        ScopeOrigin::Binding(Some(name)) => {
            format!("guard `{name}` of lock `{}`", scope.lock)
        }
        ScopeOrigin::Binding(None) => format!("a guard of lock `{}`", scope.lock),
        ScopeOrigin::Temporary => format!("a temporary guard of lock `{}`", scope.lock),
        ScopeOrigin::Wrapper => format!("the `{}` lock (via {ENGINE_WRAPPER})", scope.lock),
    };
    let mut p = scope.start + 1;
    while p < scope.end {
        let i = sig[p];
        if file.test_mask[i] || file.tokens[i].kind != TokenKind::Ident {
            p += 1;
            continue;
        }
        let name = text_at(p);
        let line = file.tokens[i].line;
        // `drop(guard)` ends the scope early.
        if name == "drop" && p + 2 < sig.len() && text_at(p + 1) == "(" {
            if let ScopeOrigin::Binding(Some(bound)) = &scope.origin {
                if text_at(p + 2) == bound.as_str() {
                    break;
                }
            }
        }
        let calls = p + 1 < sig.len() && text_at(p + 1) == "(";
        if !calls {
            p += 1;
            continue;
        }
        let prev_is_dot = p > 0 && text_at(p - 1) == ".";
        if name == "lock" && prev_is_dot {
            if let Some(to) = lock_receiver(file, sig, p) {
                out.edges.push(LockEdge {
                    from: scope.lock.clone(),
                    to,
                    file: file.rel_path.clone(),
                    line,
                    via: Vec::new(),
                });
            }
        } else if is_blocking_primitive(name) && (prev_is_dot || name == "sleep") {
            out.blocking.push(Finding {
                rule: super::lock_blocking::RULE,
                file: file.rel_path.clone(),
                line,
                message: format!("{held} is held across blocking `.{name}()`"),
            });
        } else {
            // A method or bare call: consult the symbol table.
            if let Some(chain) = st.blocking_chain(name) {
                out.blocking.push(Finding {
                    rule: super::lock_blocking::RULE,
                    file: file.rel_path.clone(),
                    line,
                    message: format!(
                        "{held} is held across `{name}()`, which blocks via {}",
                        chain.join(" → ")
                    ),
                });
            }
            for acq in st.acquired_locks(name) {
                let mut via = vec![name.to_string()];
                via.extend(acq.via.iter().cloned());
                out.edges.push(LockEdge {
                    from: scope.lock.clone(),
                    to: acq.lock.clone(),
                    file: file.rel_path.clone(),
                    line,
                    via,
                });
            }
        }
        p += 1;
    }
}
