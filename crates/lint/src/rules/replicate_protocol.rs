//! Rule `replicate-protocol`: the leader's `replicate` answer, the
//! follower's reader, the README, and the tests must all agree.
//!
//! Source of truth is the `Request::Replicate { … } =>` dispatch arm in
//! `server.rs` (the response fields come out of its string literals) plus
//! `REPLICATE_BATCH_LIMIT` in `oplog.rs`. Checks:
//!
//! 1. the arm references `REPLICATE_BATCH_LIMIT` (no re-hardcoded cap),
//!    clamps the cursor (`from_seq.max(1)` — `from:0` means "from the
//!    beginning"), and answers a truncated-history cursor with
//!    `BadRequest`;
//! 2. every field the follower (`fetch_tcp` in `replica.rs`) reads —
//!    beyond the `ok`/`error`/`id`/`code` envelope — is one the arm
//!    emits, and the follower still sends `{"op":"replicate","from":…}`;
//! 3. the README replicate row documents the batch cap (`≤N`) and the
//!    cursor origin (`0 = beginning`), and the
//!    `| Replicate field | Meaning |` table lists exactly the arm's
//!    response fields;
//! 4. at least one test sends or asserts a `"op":"replicate"` exchange,
//!    and the batch-cap paging is test-exercised (`entries_from`).

use crate::lexer::TokenKind;
use crate::rules::error_codes::readme_table_entries;
use crate::rules::{embedded_keys, extract_const, Finding};
use crate::Workspace;

/// This rule's name.
pub const RULE: &str = "replicate-protocol";

/// Where the serving arm lives.
pub const SERVER_FILE: &str = "crates/service/src/server.rs";
/// Where the follower lives.
pub const REPLICA_FILE: &str = "crates/service/src/replica.rs";
/// README table header for the response fields.
pub const README_HEADER: &str = "| Replicate field | Meaning |";
/// Envelope fields shared by every response, not owned by this arm.
const ENVELOPE: [&str; 4] = ["ok", "error", "id", "code"];

/// Extracts the response field set from the `Request::Replicate` arm's
/// string literals. `None` when `server.rs`, the arm, or the fields are
/// missing. Shared with the `fix` mode's table regeneration.
pub fn arm_fields(ws: &Workspace) -> Option<Vec<String>> {
    let server = ws.file(SERVER_FILE)?;
    let (arm_start, arm_end) = replicate_arm_span(server)?;
    let mut fields: Vec<String> = Vec::new();
    for i in server.significant() {
        let tok = &server.tokens[i];
        if tok.kind != TokenKind::Str || tok.start < arm_start || tok.end > arm_end {
            continue;
        }
        for key in embedded_keys(server.text_of(tok)) {
            if !fields.contains(&key) {
                fields.push(key);
            }
        }
    }
    if fields.is_empty() {
        return None;
    }
    Some(fields)
}

/// Runs the rule over the workspace. Quiet when `server.rs` is absent —
/// fixture workspaces without the server have no protocol to drift.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(server) = ws.file(SERVER_FILE) else {
        return Vec::new();
    };
    let limit = ws
        .file(crate::rules::oplog_format::OPLOG_FILE)
        .and_then(|f| extract_const(f, "REPLICATE_BATCH_LIMIT"));
    let Some(limit) = limit else {
        return vec![Finding {
            rule: RULE,
            file: crate::rules::oplog_format::OPLOG_FILE.into(),
            line: 0,
            message: "REPLICATE_BATCH_LIMIT constant not found in oplog.rs".into(),
        }];
    };

    // Locate the `Request::Replicate { … } => { … }` arm.
    let Some((arm_start, arm_end)) = replicate_arm_span(server) else {
        return vec![Finding {
            rule: RULE,
            file: SERVER_FILE.into(),
            line: 0,
            message: "no `Request::Replicate { … } => { … }` dispatch arm found in server.rs"
                .into(),
        }];
    };

    // Arm facts.
    let mut has_limit = false;
    let mut has_clamp = false;
    let mut has_bad_request = false;
    let sig: Vec<usize> = server.significant().collect();
    for (p, &i) in sig.iter().enumerate() {
        let tok = &server.tokens[i];
        if tok.start < arm_start || tok.end > arm_end {
            continue;
        }
        if server.is_ident(i, "REPLICATE_BATCH_LIMIT") {
            has_limit = true;
        }
        if server.is_ident(i, "BadRequest") {
            has_bad_request = true;
        }
        if server.is_ident(i, "max")
            && p + 2 < sig.len()
            && server.text_of(&server.tokens[sig[p + 1]]) == "("
            && server.tokens[sig[p + 2]].integer_value(&server.text) == Some(1)
        {
            has_clamp = true;
        }
    }
    let Some(arm_fields) = arm_fields(ws) else {
        return vec![Finding {
            rule: RULE,
            file: SERVER_FILE.into(),
            line: 0,
            message: "could not extract response fields from the Replicate arm".into(),
        }];
    };
    if !has_limit {
        findings.push(Finding {
            rule: RULE,
            file: SERVER_FILE.into(),
            line: 0,
            message:
                "the Replicate arm does not reference REPLICATE_BATCH_LIMIT (cap re-hardcoded \
                      or dropped)"
                    .into(),
        });
    }
    if !has_clamp {
        findings.push(Finding {
            rule: RULE,
            file: SERVER_FILE.into(),
            line: 0,
            message: "the Replicate arm lost the `from_seq.max(1)` cursor clamp (`from:0` must \
                      mean the beginning)"
                .into(),
        });
    }
    if !has_bad_request {
        findings.push(Finding {
            rule: RULE,
            file: SERVER_FILE.into(),
            line: 0,
            message: "the Replicate arm no longer answers a stale cursor with `BadRequest`".into(),
        });
    }

    // Follower agreement.
    if let Some(replica) = ws.file(REPLICA_FILE) {
        let mut sends_request = false;
        let mut reads: Vec<String> = Vec::new();
        let rsig: Vec<usize> = replica.significant().collect();
        for (p, &i) in rsig.iter().enumerate() {
            if replica.test_mask[i] {
                continue;
            }
            let tok = &replica.tokens[i];
            if tok.kind == TokenKind::Str {
                let cleaned = replica.text_of(tok).replace("\\\"", "\"");
                if cleaned.contains("\"op\":\"replicate\"") && cleaned.contains("\"from\":") {
                    sends_request = true;
                }
            }
            if replica.is_ident(i, "get")
                && p + 2 < rsig.len()
                && replica.text_of(&replica.tokens[rsig[p + 1]]) == "("
                && replica.tokens[rsig[p + 2]].kind == TokenKind::Str
            {
                let key = replica
                    .text_of(&replica.tokens[rsig[p + 2]])
                    .trim_matches('"')
                    .to_string();
                if !reads.contains(&key) {
                    reads.push(key);
                }
            }
        }
        if !sends_request {
            findings.push(Finding {
                rule: RULE,
                file: REPLICA_FILE.into(),
                line: 0,
                message: "the follower no longer sends `{\"op\":\"replicate\",\"from\":…}`".into(),
            });
        }
        for key in &reads {
            if !ENVELOPE.contains(&key.as_str()) && !arm_fields.contains(key) {
                findings.push(Finding {
                    rule: RULE,
                    file: REPLICA_FILE.into(),
                    line: 0,
                    message: format!(
                        "the follower reads response field `{key}` the leader never sends"
                    ),
                });
            }
        }
    } else {
        findings.push(Finding {
            rule: RULE,
            file: REPLICA_FILE.into(),
            line: 0,
            message: "replica.rs not found".into(),
        });
    }

    // README agreement.
    let ops_rows = readme_table_entries(&ws.readme, crate::rules::protocol_ops::README_HEADER);
    if let Some((_, line)) = ops_rows.iter().find(|(op, _)| op == "replicate") {
        let row = ws.readme.lines().nth(*line as usize - 1).unwrap_or("");
        if !row.contains(&format!("≤{limit}")) {
            findings.push(Finding {
                rule: RULE,
                file: "README.md".into(),
                line: *line,
                message: format!(
                    "README replicate row does not state the batch cap `≤{limit}` \
                     (REPLICATE_BATCH_LIMIT)"
                ),
            });
        }
        if !row.contains("0 = beginning") {
            findings.push(Finding {
                rule: RULE,
                file: "README.md".into(),
                line: *line,
                message: "README replicate row does not document the cursor origin \
                          (`0 = beginning`)"
                    .into(),
            });
        }
    }
    let rows = readme_table_entries(&ws.readme, README_HEADER);
    if rows.is_empty() {
        findings.push(Finding {
            rule: RULE,
            file: "README.md".into(),
            line: 0,
            message: format!("no replicate response field table under `{README_HEADER}` in README"),
        });
    } else {
        for f in &arm_fields {
            if !rows.iter().any(|(k, _)| k == f) {
                findings.push(Finding {
                    rule: RULE,
                    file: "README.md".into(),
                    line: 0,
                    message: format!(
                        "replicate response field `{f}` has no row in the README replicate table"
                    ),
                });
            }
        }
        for (k, line) in &rows {
            if !arm_fields.contains(k) {
                findings.push(Finding {
                    rule: RULE,
                    file: "README.md".into(),
                    line: *line,
                    message: format!(
                        "README replicate table lists `{k}`, which the arm does not send"
                    ),
                });
            }
        }
    }

    // Test anchors.
    let mut exchange_tested = false;
    let mut paging_tested = false;
    for f in &ws.files {
        for i in f.significant() {
            if !f.test_mask[i] {
                continue;
            }
            let tok = &f.tokens[i];
            match tok.kind {
                TokenKind::Str => {
                    let cleaned = f.text_of(tok).replace("\\\"", "\"");
                    if cleaned.contains("\"op\":\"replicate\"") {
                        exchange_tested = true;
                    }
                }
                TokenKind::Ident
                    if f.text_of(tok) == "entries_from"
                        || f.text_of(tok) == "REPLICATE_BATCH_LIMIT" =>
                {
                    paging_tested = true;
                }
                _ => {}
            }
        }
    }
    if !exchange_tested {
        findings.push(Finding {
            rule: RULE,
            file: SERVER_FILE.into(),
            line: 0,
            message: "no test sends or asserts a `\"op\":\"replicate\"` exchange".into(),
        });
    }
    if !paging_tested {
        findings.push(Finding {
            rule: RULE,
            file: crate::rules::oplog_format::OPLOG_FILE.into(),
            line: 0,
            message: "no test exercises batch-cap paging (`entries_from`)".into(),
        });
    }
    findings
}

/// Byte span of the `Request::Replicate { … } => { … }` arm body in
/// production code: from the body's `{` to its `}`.
fn replicate_arm_span(file: &crate::analysis::SourceFile) -> Option<(usize, usize)> {
    let sig: Vec<usize> = file.significant().collect();
    let text_at = |p: usize| file.text_of(&file.tokens[sig[p]]);
    for p in 0..sig.len() {
        if file.test_mask[sig[p]]
            || !file.is_ident(sig[p], "Request")
            || p + 3 >= sig.len()
            || text_at(p + 1) != ":"
            || text_at(p + 2) != ":"
            || !file.is_ident(sig[p + 3], "Replicate")
        {
            continue;
        }
        // Pattern braces `{ from_seq }`, then `=>`, then the body block.
        let mut q = p + 4;
        if q < sig.len() && text_at(q) == "{" {
            let mut depth = 0usize;
            while q < sig.len() {
                match text_at(q) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            q += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                q += 1;
            }
        }
        if q + 2 >= sig.len() || text_at(q) != "=" || text_at(q + 1) != ">" {
            continue; // a construction site, not a match arm
        }
        let body_open = q + 2;
        if text_at(body_open) != "{" {
            continue;
        }
        let mut depth = 0usize;
        for r in body_open..sig.len() {
            match text_at(r) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((file.tokens[sig[body_open]].start, file.tokens[sig[r]].end));
                    }
                }
                _ => {}
            }
        }
    }
    None
}
