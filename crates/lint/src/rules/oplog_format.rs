//! Rule `oplog-format`: the op-log entry wire format is declared once
//! (by the writer, `LogEntry::to_line`) and every consumer agrees.
//!
//! Source of truth extracted from `oplog.rs`:
//!
//! * the field set the writer emits (`v`, `seq`, `op`, `rows`, `attr`,
//!   `value` — read out of the string literals in `to_line`);
//! * the op names (`insert`/`delete`/`grow`);
//! * `OPLOG_VERSION`.
//!
//! Checks, in the established error-codes/protocol-ops pattern:
//!
//! 1. the reader (`from_json`) `get`s exactly the writer's fields and
//!    matches every writer op name — a one-sided rename rots on disk;
//! 2. `from_json` keeps the `version > OPLOG_VERSION` refusal gate;
//! 3. the README entry-field table (`| Entry field | Meaning |`) lists
//!    exactly the writer's fields, states the version as
//!    `entry-format version (currently N)`, documents the torn-tail
//!    policy, and every fenced `{"v":…}` example line uses the real flat
//!    `"op":"<name>"` encoding with the current version;
//! 4. at least one test asserts a literal entry line (the `v`/`seq` key
//!    text) and at least one test exercises the torn-tail policy.

use crate::lexer::TokenKind;
use crate::rules::error_codes::readme_table_entries;
use crate::rules::{embedded_keys, embedded_op_names, extract_const, Finding};
use crate::Workspace;

/// This rule's name.
pub const RULE: &str = "oplog-format";

/// Where the format lives.
pub const OPLOG_FILE: &str = "crates/service/src/oplog.rs";
/// README table header for the entry fields.
pub const README_HEADER: &str = "| Entry field | Meaning |";

/// Extracts the writer's `(fields, op names)` from the string literals
/// in `to_line`. `None` when `oplog.rs` or the fn is missing. Shared
/// with the `fix` mode's table regeneration.
pub fn writer_facts(ws: &Workspace) -> Option<(Vec<String>, Vec<String>)> {
    let file = ws.file(OPLOG_FILE)?;
    let mut fields: Vec<String> = Vec::new();
    let mut ops: Vec<String> = Vec::new();
    for span in crate::fn_body_spans(file, "to_line") {
        for i in file.significant() {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Str || tok.start < span.0 || tok.end > span.1 {
                continue;
            }
            for key in embedded_keys(file.text_of(tok)) {
                if !fields.contains(&key) {
                    fields.push(key);
                }
            }
            for op in embedded_op_names(file.text_of(tok)) {
                if !ops.contains(&op) {
                    ops.push(op);
                }
            }
        }
    }
    if fields.is_empty() || ops.is_empty() {
        return None;
    }
    Some((fields, ops))
}

/// Runs the rule over the workspace. Quiet when `oplog.rs` is absent —
/// fixture workspaces without the op log have no format to drift.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let Some(file) = ws.file(OPLOG_FILE) else {
        return Vec::new();
    };
    let mut findings = Vec::new();

    let Some(version) = extract_const(file, "OPLOG_VERSION") else {
        return vec![Finding {
            rule: RULE,
            file: OPLOG_FILE.into(),
            line: 0,
            message: "OPLOG_VERSION constant not found in oplog.rs".into(),
        }];
    };

    let Some((writer_fields, writer_ops)) = writer_facts(ws) else {
        return vec![Finding {
            rule: RULE,
            file: OPLOG_FILE.into(),
            line: 0,
            message: "could not extract the entry field set from `to_line` in oplog.rs".into(),
        }];
    };

    // Reader facts: `get("…")` keys and matched op strings in `from_json`.
    let mut reader_fields: Vec<String> = Vec::new();
    let mut reader_strings: Vec<String> = Vec::new();
    let mut has_version_gate = false;
    let sig: Vec<usize> = file.significant().collect();
    for span in crate::fn_body_spans(file, "from_json") {
        for (p, &i) in sig.iter().enumerate() {
            let tok = &file.tokens[i];
            if tok.start < span.0 || tok.end > span.1 {
                continue;
            }
            if file.is_ident(i, "get")
                && p + 2 < sig.len()
                && file.text_of(&file.tokens[sig[p + 1]]) == "("
                && file.tokens[sig[p + 2]].kind == TokenKind::Str
            {
                let key = file
                    .text_of(&file.tokens[sig[p + 2]])
                    .trim_matches('"')
                    .to_string();
                if !reader_fields.contains(&key) {
                    reader_fields.push(key);
                }
            }
            if tok.kind == TokenKind::Str {
                reader_strings.push(file.text_of(tok).trim_matches('"').to_string());
            }
            if file.is_ident(i, "OPLOG_VERSION")
                && p > 0
                && file.text_of(&file.tokens[sig[p - 1]]) == ">"
            {
                has_version_gate = true;
            }
        }
    }

    // 1. Writer/reader field symmetry.
    for f in &writer_fields {
        if !reader_fields.contains(f) {
            findings.push(Finding {
                rule: RULE,
                file: OPLOG_FILE.into(),
                line: 0,
                message: format!("writer emits entry field `{f}` but `from_json` never reads it"),
            });
        }
    }
    for f in &reader_fields {
        if !writer_fields.contains(f) {
            findings.push(Finding {
                rule: RULE,
                file: OPLOG_FILE.into(),
                line: 0,
                message: format!("`from_json` reads entry field `{f}` the writer never emits"),
            });
        }
    }
    for op in &writer_ops {
        if !reader_strings.iter().any(|s| s == op) {
            findings.push(Finding {
                rule: RULE,
                file: OPLOG_FILE.into(),
                line: 0,
                message: format!("writer emits op `{op}` but `from_json` has no match arm for it"),
            });
        }
    }

    // 2. Version gate.
    if !has_version_gate {
        findings.push(Finding {
            rule: RULE,
            file: OPLOG_FILE.into(),
            line: 0,
            message: "`from_json` lost the `version > OPLOG_VERSION` refusal gate".into(),
        });
    }

    // 3. README: field table, version marker, torn-tail policy, examples.
    let rows = readme_table_entries(&ws.readme, README_HEADER);
    if rows.is_empty() {
        findings.push(Finding {
            rule: RULE,
            file: "README.md".into(),
            line: 0,
            message: format!("no op-log entry field table under `{README_HEADER}` in README"),
        });
    } else {
        for f in &writer_fields {
            if !rows.iter().any(|(k, _)| k == f) {
                findings.push(Finding {
                    rule: RULE,
                    file: "README.md".into(),
                    line: 0,
                    message: format!(
                        "entry field `{f}` has no row in the README entry-field table"
                    ),
                });
            }
        }
        for (k, line) in &rows {
            if !writer_fields.contains(k) {
                findings.push(Finding {
                    rule: RULE,
                    file: "README.md".into(),
                    line: *line,
                    message: format!(
                        "README entry-field table lists `{k}`, which the writer does not emit"
                    ),
                });
            }
        }
    }
    let marker = format!("entry-format version (currently {version})");
    if !ws.readme.contains(&marker) {
        findings.push(Finding {
            rule: RULE,
            file: "README.md".into(),
            line: 0,
            message: format!("README does not state the op-log `{marker}`"),
        });
    }
    if !ws.readme.contains("torn") {
        findings.push(Finding {
            rule: RULE,
            file: "README.md".into(),
            line: 0,
            message: "README does not document the torn-tail recovery policy".into(),
        });
    }
    for (idx, line) in ws.readme.lines().enumerate() {
        let trimmed = line.trim();
        if !trimmed.starts_with("{\"v\"") {
            continue;
        }
        let lineno = idx as u32 + 1;
        if !writer_ops
            .iter()
            .any(|op| trimmed.contains(&format!("\"op\":\"{op}\"")))
        {
            findings.push(Finding {
                rule: RULE,
                file: "README.md".into(),
                line: lineno,
                message:
                    "README op-log example does not use the writer's flat `\"op\":\"<name>\"` \
                          encoding"
                        .into(),
            });
        }
        if !trimmed.starts_with(&format!("{{\"v\":{version},")) {
            findings.push(Finding {
                rule: RULE,
                file: "README.md".into(),
                line: lineno,
                message: format!("README op-log example does not carry `\"v\":{version}`"),
            });
        }
    }

    // 4. Test anchors: a literal entry line and a torn-tail test.
    let mut literal_asserted = false;
    let mut torn_tested = false;
    for f in &ws.files {
        for i in f.significant() {
            if !f.test_mask[i] {
                continue;
            }
            let tok = &f.tokens[i];
            match tok.kind {
                TokenKind::Str => {
                    let cleaned = f.text_of(tok).replace("\\\"", "\"");
                    if cleaned.contains("\"v\":") && cleaned.contains("\"seq\":") {
                        literal_asserted = true;
                    }
                }
                TokenKind::Ident if f.text_of(tok).contains("torn") => {
                    torn_tested = true;
                }
                _ => {}
            }
        }
    }
    if !literal_asserted {
        findings.push(Finding {
            rule: RULE,
            file: OPLOG_FILE.into(),
            line: 0,
            message: "no test asserts a literal entry line (`\"v\":…,\"seq\":…`)".into(),
        });
    }
    if !torn_tested {
        findings.push(Finding {
            rule: RULE,
            file: OPLOG_FILE.into(),
            line: 0,
            message: "no test exercises the torn-tail recovery policy".into(),
        });
    }
    findings
}
