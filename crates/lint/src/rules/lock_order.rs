//! Rule `lock-order`: the lock-acquisition graph must stay acyclic.
//!
//! Every "lock B acquired while lock A is held" observation from the
//! shared guard-scope scan ([`crate::rules::locks`]) becomes an edge
//! A → B; locks are named by the receiver of `.lock()` (`engine`,
//! `oplog`, …) plus the implicit `engine` scope of
//! `with_engine_contained`. Two findings can come out:
//!
//! * a **self edge** (A acquired while A is held) — a guaranteed
//!   deadlock with `std::sync::Mutex`;
//! * a **cycle** (A → B → … → A) — a deadlock waiting for the right
//!   thread interleaving.
//!
//! The expected graph for this codebase is `engine → oplog` only; any
//! new edge closing a cycle fails CI before it can ship.

use crate::rules::{locks, Finding};
use crate::Workspace;

/// This rule's name.
pub const RULE: &str = "lock-order";

/// Runs the rule over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let scan = locks::scan(ws);
    let mut findings = Vec::new();

    for e in &scan.edges {
        if e.from == e.to {
            let via = if e.via.is_empty() {
                String::new()
            } else {
                format!(" (via {})", e.via.join(" → "))
            };
            findings.push(Finding {
                rule: RULE,
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "lock `{}` re-acquired while already held{via} — self-deadlock",
                    e.from
                ),
            });
        }
    }

    // Cycle detection over the distinct-node edges.
    let mut nodes: Vec<&str> = Vec::new();
    for e in &scan.edges {
        for n in [e.from.as_str(), e.to.as_str()] {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }
    let index = |n: &str| nodes.iter().position(|&m| m == n).unwrap_or(usize::MAX);
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&n| {
            scan.edges
                .iter()
                .filter(|e| e.from == n && e.to != e.from)
                .map(|e| index(&e.to))
                .collect()
        })
        .collect();

    let mut reported: Vec<Vec<usize>> = Vec::new();
    for start in 0..nodes.len() {
        let mut path = vec![start];
        dfs_cycles(start, &adj, &mut path, &mut reported);
    }
    for cycle in reported {
        let names: Vec<&str> = cycle.iter().map(|&i| nodes[i]).collect();
        // Point at the edge that closes the cycle.
        let closing = scan
            .edges
            .iter()
            .find(|e| e.from == names[names.len() - 1] && e.to == names[0]);
        let (file, line) = closing
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_else(|| ("README.md".into(), 0));
        findings.push(Finding {
            rule: RULE,
            file,
            line,
            message: format!(
                "lock acquisition cycle: {} → {} — ordering deadlock",
                names.join(" → "),
                names[0]
            ),
        });
    }
    findings
}

/// Depth-first search for simple cycles back to `path[0]`, reporting
/// each node set once (the canonical rotation starting at the smallest
/// index).
fn dfs_cycles(start: usize, adj: &[Vec<usize>], path: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    let current = *path.last().expect("path never empty");
    for &next in &adj[current] {
        if next == start {
            let min = path.iter().copied().min().expect("non-empty");
            if path[0] == min && !out.contains(path) {
                out.push(path.clone());
            }
        } else if !path.contains(&next) {
            path.push(next);
            dfs_cycles(start, adj, path, out);
            path.pop();
        }
    }
}
