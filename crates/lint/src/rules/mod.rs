//! The conformance rules.
//!
//! Each rule is a function from the loaded [`crate::Workspace`] to a list
//! of raw [`Finding`]s. Rules do not know about `LINT-ALLOW` — the check
//! driver in [`crate::check_workspace`] applies suppression centrally so
//! every rule gets the escape hatch (and its accounting) for free.

use crate::analysis::SourceFile;
use crate::lexer::TokenKind;

pub mod error_codes;
pub mod lock_blocking;
pub mod lock_order;
pub mod locks;
pub mod oplog_format;
pub mod panic_free;
pub mod protocol_ops;
pub mod replicate_protocol;
pub mod snapshot_version;
pub mod unsafe_audit;

/// One rule violation, pointing at a file and line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule produced it (kebab-case, e.g. `panic-freedom`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 when the finding is about a whole file or a
    /// missing artifact rather than a specific line).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Rule names, in reporting order. `lint-allow` is the internal rule that
/// covers the escape-hatch mechanism itself (malformed or unused allows)
/// and must stay last.
pub const RULE_NAMES: [&str; 10] = [
    panic_free::RULE,
    unsafe_audit::RULE,
    error_codes::RULE,
    protocol_ops::RULE,
    snapshot_version::RULE,
    lock_blocking::RULE,
    lock_order::RULE,
    oplog_format::RULE,
    replicate_protocol::RULE,
    "lint-allow",
];

/// Finds `const <name> … = <integer>` in the file's production code.
/// Shared by the version/cap drift rules.
pub fn extract_const(file: &SourceFile, name: &str) -> Option<u64> {
    let sig: Vec<usize> = file.significant().collect();
    for (p, &i) in sig.iter().enumerate() {
        if !file.is_ident(i, name) {
            continue;
        }
        // Accept `NAME = <num>` or `NAME : <type> = <num>`.
        let mut q = p + 1;
        if sig
            .get(q)
            .is_some_and(|&j| file.text_of(&file.tokens[j]) == ":")
        {
            q += 1; // `:`
            while sig
                .get(q)
                .is_some_and(|&j| file.tokens[j].kind == TokenKind::Ident)
            {
                q += 1; // type path segment(s) — a plain `u64` in practice
            }
        }
        if sig
            .get(q)
            .is_none_or(|&j| file.text_of(&file.tokens[j]) != "=")
        {
            continue;
        }
        q += 1;
        if let Some(&j) = sig.get(q) {
            if let Some(v) = file.tokens[j].integer_value(&file.text) {
                return Some(v);
            }
        }
    }
    None
}

/// JSON object keys embedded in a string literal's source text: every
/// `"name":` occurrence, with `\"` escapes normalized first so both
/// ordinary and raw string literals yield their keys.
pub fn embedded_keys(literal: &str) -> Vec<String> {
    let cleaned = literal.replace("\\\"", "\"");
    let mut keys = Vec::new();
    let bytes = cleaned.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            if j > start && j + 1 < bytes.len() && bytes[j] == b'"' && bytes[j + 1] == b':' {
                keys.push(cleaned[start..j].to_string());
                i = j + 2;
                continue;
            }
        }
        i += 1;
    }
    keys
}

/// Op names embedded as `"op":"<name>"` in a string literal's source
/// text (escapes normalized as in [`embedded_keys`]).
pub fn embedded_op_names(literal: &str) -> Vec<String> {
    let cleaned = literal.replace("\\\"", "\"");
    let mut ops = Vec::new();
    let mut rest = cleaned.as_str();
    while let Some(at) = rest.find("\"op\":\"") {
        let tail = &rest[at + "\"op\":\"".len()..];
        if let Some(end) = tail.find('"') {
            let op = &tail[..end];
            if !op.is_empty() && op.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                ops.push(op.to_string());
            }
            rest = &tail[end + 1..];
        } else {
            break;
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_keys_handle_escaped_and_raw_forms() {
        assert_eq!(
            embedded_keys(r#""{{\"v\":{OPLOG_VERSION},\"seq\":{}""#),
            vec!["v".to_string(), "seq".to_string()]
        );
        assert_eq!(
            embedded_keys(r##"r#"{"last_seq":4,"entries":[]}"#"##),
            vec!["last_seq".to_string(), "entries".to_string()]
        );
        assert!(embedded_keys("\"no keys here\"").is_empty());
    }

    #[test]
    fn embedded_op_names_extract() {
        assert_eq!(
            embedded_op_names(r#"",\"op\":\"insert\",\"rows\":""#),
            vec!["insert".to_string()]
        );
        assert!(embedded_op_names(r#""\"op\":{\"insert\":1}""#).is_empty());
    }
}
