//! The conformance rules.
//!
//! Each rule is a function from the loaded [`crate::Workspace`] to a list
//! of raw [`Finding`]s. Rules do not know about `LINT-ALLOW` — the check
//! driver in [`crate::check_workspace`] applies suppression centrally so
//! every rule gets the escape hatch (and its accounting) for free.

pub mod error_codes;
pub mod panic_free;
pub mod protocol_ops;
pub mod snapshot_version;
pub mod unsafe_audit;

/// One rule violation, pointing at a file and line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule produced it (kebab-case, e.g. `panic-freedom`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 when the finding is about a whole file or a
    /// missing artifact rather than a specific line).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Rule names, in reporting order. `lint-allow` is the internal rule that
/// covers the escape-hatch mechanism itself (malformed or unused allows).
pub const RULE_NAMES: [&str; 6] = [
    panic_free::RULE,
    unsafe_audit::RULE,
    error_codes::RULE,
    protocol_ops::RULE,
    snapshot_version::RULE,
    "lint-allow",
];
