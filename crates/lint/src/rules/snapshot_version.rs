//! Rule `snapshot-version`: the snapshot format version is declared once
//! and every consumer agrees with it.
//!
//! `SNAPSHOT_VERSION` (current) and `SNAPSHOT_MIN_VERSION` (oldest
//! restorable) are extracted from `snapshot.rs`. The rule then checks:
//!
//! 1. the pair is sane (`1 <= min <= current`);
//! 2. the restore path's feature gates (`version >= N` comparisons) cover
//!    exactly the versions between `min` and `current` — bumping the
//!    constant without teaching restore about the new format, or leaving
//!    a gate behind after retiring one, both fail;
//! 3. the README states the current version as `(currently N)`;
//! 4. no production string literal in `snapshot.rs` hardcodes a
//!    `"version":<digit>` — the writer must interpolate the constant.

use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::Workspace;

/// This rule's name.
pub const RULE: &str = "snapshot-version";

/// Where the format lives.
pub const SNAPSHOT_FILE: &str = "crates/service/src/snapshot.rs";

/// Runs the rule over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(file) = ws.file(SNAPSHOT_FILE) else {
        return vec![Finding {
            rule: RULE,
            file: SNAPSHOT_FILE.into(),
            line: 0,
            message: "snapshot.rs not found".into(),
        }];
    };
    let current = crate::rules::extract_const(file, "SNAPSHOT_VERSION");
    let min = crate::rules::extract_const(file, "SNAPSHOT_MIN_VERSION");
    let (Some(current), Some(min)) = (current, min) else {
        return vec![Finding {
            rule: RULE,
            file: SNAPSHOT_FILE.into(),
            line: 0,
            message: "SNAPSHOT_VERSION / SNAPSHOT_MIN_VERSION constants not found".into(),
        }];
    };
    if !(1 <= min && min <= current) {
        findings.push(Finding {
            rule: RULE,
            file: SNAPSHOT_FILE.into(),
            line: 0,
            message: format!("version pair out of order: min={min}, current={current}"),
        });
        return findings;
    }

    // Restore-path gates: `version >= N` comparisons in production code.
    // Formats min..current-1 are upgraded in steps, so the gate set must
    // be exactly {min+1, …, current}: each newer format adds one gate, and
    // retiring an old format removes one.
    let mut gates: Vec<u64> = Vec::new();
    let sig: Vec<usize> = file.significant().collect();
    for w in sig.windows(4) {
        let toks = &file.tokens;
        if file.test_mask[w[0]] {
            continue;
        }
        if file.is_ident(w[0], "version")
            && file.text_of(&toks[w[1]]) == ">"
            && file.text_of(&toks[w[2]]) == "="
        {
            if let Some(v) = toks[w[3]].integer_value(&file.text) {
                if !gates.contains(&v) {
                    gates.push(v);
                }
            }
        }
    }
    gates.sort_unstable();
    let expected: Vec<u64> = (min + 1..=current).collect();
    if gates != expected {
        findings.push(Finding {
            rule: RULE,
            file: SNAPSHOT_FILE.into(),
            line: 0,
            message: format!(
                "restore gates {gates:?} do not match expected {expected:?} (min={min}, current={current})"
            ),
        });
    }

    // README must state the current version.
    let marker = format!("(currently {current})");
    if !ws.readme.contains(&marker) {
        findings.push(Finding {
            rule: RULE,
            file: "README.md".into(),
            line: 0,
            message: format!("README does not state the snapshot version as `{marker}`"),
        });
    }

    // The writer must interpolate the constant, never hardcode a digit.
    for i in file.significant() {
        let tok = &file.tokens[i];
        if file.test_mask[i] || tok.kind != TokenKind::Str {
            continue;
        }
        let txt = file.text_of(tok);
        for key in ["\\\"version\\\":", "\"version\":"] {
            if let Some(at) = txt.find(key) {
                let after = txt[at + key.len()..].chars().next();
                if after.is_some_and(|c| c.is_ascii_digit()) {
                    findings.push(Finding {
                        rule: RULE,
                        file: file.rel_path.clone(),
                        line: tok.line,
                        message: "string literal hardcodes a snapshot version digit (use SNAPSHOT_VERSION)"
                            .into(),
                    });
                }
            }
        }
    }
    findings
}
