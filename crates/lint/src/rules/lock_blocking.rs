//! Rule `lock-across-blocking`: no mutex guard may be held across a
//! blocking call in a serving hot path.
//!
//! The engine mutex serializes every mutation; the op-log mutex orders
//! the durable record. A blocking syscall (file write, fsync, socket
//! accept/connect, sleep) made while either is held turns one slow disk
//! or peer into a whole-service stall. The shared scan in
//! [`crate::rules::locks`] computes guard live ranges (let-bound guards,
//! single-statement temporaries, `if let` bodies, and the closure span of
//! `with_engine_contained`) and flags blocking calls inside them — both
//! direct `.write_all()`-style primitives and calls into uniquely-named
//! workspace fns the symbol table knows to block transitively.
//!
//! Sites where holding the lock *is* the design (the op-log mutex exists
//! to order appends to its own file) carry a `LINT-ALLOW` with the
//! reason, so every exception is counted and justified.

use crate::rules::{locks, Finding};
use crate::Workspace;

/// This rule's name.
pub const RULE: &str = "lock-across-blocking";

/// Runs the rule over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    locks::scan(ws).blocking
}
