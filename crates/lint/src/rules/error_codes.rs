//! Rule `error-codes`: the `ErrorCode` table in `protocol.rs` is the
//! single source of truth, and everything else must agree with it.
//!
//! For every code extracted from `ErrorCode::as_str`, the rule checks:
//!
//! 1. the README error-code table has a row for its wire string;
//! 2. the variant is constructed somewhere in service-crate production
//!    code (a code nothing can produce is dead protocol surface);
//! 3. at least one test asserts the wire string (or matches the variant),
//!    so a renamed code breaks a test and not a client.
//!
//! It also runs the reverse direction: README rows that name codes the
//! enum no longer has are flagged as stale.

use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::Workspace;

/// This rule's name.
pub const RULE: &str = "error-codes";

/// Where the enum lives.
pub const PROTOCOL_FILE: &str = "crates/service/src/protocol.rs";
/// README table header the codes must appear under.
pub const README_HEADER: &str = "| Code | Meaning |";

/// One extracted `(Variant, "wire-string")` pair plus the byte span of the
/// `as_str` body it came from (needed to exclude that span from the
/// construction check).
pub struct CodeTable {
    /// `(variant name, wire string)` in declaration order.
    pub codes: Vec<(String, String)>,
    /// Byte span of the `fn as_str` body in `protocol.rs`.
    pub as_str_span: (usize, usize),
}

/// Extracts the code table from `protocol.rs`, or explains why it can't.
pub fn extract_table(ws: &Workspace) -> Result<CodeTable, Finding> {
    let Some(file) = ws.file(PROTOCOL_FILE) else {
        return Err(Finding {
            rule: RULE,
            file: PROTOCOL_FILE.into(),
            line: 0,
            message: "protocol.rs not found; cannot extract error-code table".into(),
        });
    };
    // `as_str` may be defined on several types; the right body is the one
    // containing `ErrorCode::Variant => "wire"` match arms.
    let sig: Vec<usize> = file.significant().collect();
    for span in crate::fn_body_spans(file, "as_str") {
        let mut codes = Vec::new();
        for w in sig.windows(7) {
            let toks = &file.tokens;
            if toks[w[0]].start < span.0 || toks[w[6]].end > span.1 {
                continue;
            }
            if file.is_ident(w[0], "ErrorCode")
                && file.text_of(&toks[w[1]]) == ":"
                && file.text_of(&toks[w[2]]) == ":"
                && toks[w[3]].kind == TokenKind::Ident
                && file.text_of(&toks[w[4]]) == "="
                && file.text_of(&toks[w[5]]) == ">"
                && toks[w[6]].kind == TokenKind::Str
            {
                let wire = file.text_of(&toks[w[6]]).trim_matches('"').to_string();
                codes.push((file.text_of(&toks[w[3]]).to_string(), wire));
            }
        }
        if !codes.is_empty() {
            return Ok(CodeTable {
                codes,
                as_str_span: span,
            });
        }
    }
    Err(Finding {
        rule: RULE,
        file: PROTOCOL_FILE.into(),
        line: 0,
        message: "no `fn as_str` with `ErrorCode::… => \"…\"` arms found in protocol.rs".into(),
    })
}

/// Parses the backticked first-column entries of the markdown table that
/// follows `header` in `readme`. Returns `(code, line)` pairs.
pub fn readme_table_entries(readme: &str, header: &str) -> Vec<(String, u32)> {
    let mut entries = Vec::new();
    let mut in_table = false;
    for (idx, line) in readme.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with(header) {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        if !trimmed.starts_with('|') {
            break; // table ended
        }
        // Skip the separator row `| --- | --- |`.
        let first_cell = trimmed
            .trim_start_matches('|')
            .split('|')
            .next()
            .unwrap_or("");
        let cell = first_cell.trim();
        if let Some(code) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            entries.push((code.to_string(), idx as u32 + 1));
        }
    }
    entries
}

/// Runs the rule over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let table = match extract_table(ws) {
        Ok(t) => t,
        Err(f) => return vec![f],
    };
    let mut findings = Vec::new();
    let readme_rows = readme_table_entries(&ws.readme, README_HEADER);
    if readme_rows.is_empty() {
        findings.push(Finding {
            rule: RULE,
            file: "README.md".into(),
            line: 0,
            message: format!("no error-code table under `{README_HEADER}` in README"),
        });
    }

    for (variant, wire) in &table.codes {
        if !readme_rows.iter().any(|(c, _)| c == wire) {
            findings.push(Finding {
                rule: RULE,
                file: "README.md".into(),
                line: 0,
                message: format!("error code `{wire}` has no row in the README error-code table"),
            });
        }
        if !is_constructed(ws, variant, table.as_str_span) {
            findings.push(Finding {
                rule: RULE,
                file: PROTOCOL_FILE.into(),
                line: 0,
                message: format!(
                    "ErrorCode::{variant} (`{wire}`) is never constructed in service production code"
                ),
            });
        }
        if !is_test_asserted(ws, variant, wire) {
            findings.push(Finding {
                rule: RULE,
                file: PROTOCOL_FILE.into(),
                line: 0,
                message: format!("error code `{wire}` is not asserted by any test"),
            });
        }
    }
    // Reverse direction: stale README rows.
    for (code, line) in &readme_rows {
        if !table.codes.iter().any(|(_, wire)| wire == code) {
            findings.push(Finding {
                rule: RULE,
                file: "README.md".into(),
                line: *line,
                message: format!(
                    "README error-code table lists `{code}`, which ErrorCode does not define"
                ),
            });
        }
    }
    findings
}

/// True when `ErrorCode::variant` appears in service-crate production code
/// outside the `as_str` body itself.
fn is_constructed(ws: &Workspace, variant: &str, as_str_span: (usize, usize)) -> bool {
    for file in &ws.files {
        if !file.rel_path.starts_with("crates/service/src/") {
            continue;
        }
        let sig: Vec<usize> = file.significant().collect();
        for w in sig.windows(4) {
            let toks = &file.tokens;
            if file.test_mask[w[0]] {
                continue;
            }
            if file.rel_path == PROTOCOL_FILE
                && toks[w[0]].start >= as_str_span.0
                && toks[w[0]].start < as_str_span.1
            {
                continue;
            }
            if file.is_ident(w[0], "ErrorCode")
                && file.text_of(&toks[w[1]]) == ":"
                && file.text_of(&toks[w[2]]) == ":"
                && file.is_ident(w[3], variant)
            {
                return true;
            }
        }
    }
    false
}

/// True when some test mentions the code: a test-code string literal whose
/// content contains `"code":"<wire>"` (raw or `\"`-escaped) or equals the
/// bare wire string, or a test-code `ErrorCode::Variant` path.
fn is_test_asserted(ws: &Workspace, variant: &str, wire: &str) -> bool {
    let escaped = format!("\\\"code\\\":\\\"{wire}\\\"");
    let raw = format!("\"code\":\"{wire}\"");
    let bare = format!("\"{wire}\"");
    for file in &ws.files {
        for i in file.significant() {
            if !file.test_mask[i] {
                continue;
            }
            let tok = &file.tokens[i];
            match tok.kind {
                TokenKind::Str => {
                    let txt = file.text_of(tok);
                    if txt.contains(&escaped) || txt.contains(&raw) || txt == bare {
                        return true;
                    }
                }
                TokenKind::Ident if file.text_of(tok) == variant => {
                    // Require the `ErrorCode::` path prefix.
                    let sig: Vec<usize> = file.significant().collect();
                    if let Some(p) = sig.iter().position(|&s| s == i) {
                        if p >= 3
                            && file.is_ident(sig[p - 3], "ErrorCode")
                            && file.text_of(&file.tokens[sig[p - 2]]) == ":"
                            && file.text_of(&file.tokens[sig[p - 1]]) == ":"
                        {
                            return true;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    false
}
