//! Rule `protocol-ops`: every dispatched protocol op is documented and
//! tested.
//!
//! The op set is extracted from the string match arms inside
//! `fn parse_request` in `protocol.rs` — the place a request name becomes
//! a typed `Request`. Each op must have a row in the README ops table and
//! at least one test that sends it (an `"op":"…"` literal in test code or
//! a `Request::Variant` construction). Stale README rows are flagged in
//! the reverse direction.

use crate::lexer::TokenKind;
use crate::rules::error_codes::readme_table_entries;
use crate::rules::Finding;
use crate::Workspace;

/// This rule's name.
pub const RULE: &str = "protocol-ops";

/// Where the dispatcher lives.
pub const PROTOCOL_FILE: &str = "crates/service/src/protocol.rs";
/// README table header the ops must appear under.
pub const README_HEADER: &str = "| Op | Request fields |";

/// Extracts the op names from the `parse_request` match arms, in source
/// order, deduplicated.
pub fn extract_ops(ws: &Workspace) -> Result<Vec<String>, Finding> {
    let Some(file) = ws.file(PROTOCOL_FILE) else {
        return Err(Finding {
            rule: RULE,
            file: PROTOCOL_FILE.into(),
            line: 0,
            message: "protocol.rs not found; cannot extract op table".into(),
        });
    };
    let Some(span) = crate::fn_body_span(file, "parse_request") else {
        return Err(Finding {
            rule: RULE,
            file: PROTOCOL_FILE.into(),
            line: 0,
            message: "no `fn parse_request` in protocol.rs; cannot extract op table".into(),
        });
    };
    // String-literal match arms `"op" =>` inside the body.
    let sig: Vec<usize> = file.significant().collect();
    let mut ops: Vec<String> = Vec::new();
    for w in sig.windows(3) {
        let toks = &file.tokens;
        if toks[w[0]].start < span.0 || toks[w[2]].end > span.1 {
            continue;
        }
        if toks[w[0]].kind == TokenKind::Str
            && file.text_of(&toks[w[1]]) == "="
            && file.text_of(&toks[w[2]]) == ">"
        {
            let op = file.text_of(&toks[w[0]]).trim_matches('"').to_string();
            // Op names are lowercase identifiers; anything else matched
            // against a string in parse_request (a field name, a unit
            // value) is not an op arm.
            if !op.is_empty()
                && op.chars().all(|c| c.is_ascii_lowercase() || c == '_')
                && !ops.contains(&op)
            {
                ops.push(op);
            }
        }
    }
    if ops.is_empty() {
        return Err(Finding {
            rule: RULE,
            file: PROTOCOL_FILE.into(),
            line: 0,
            message: "extracted zero ops from `parse_request`".into(),
        });
    }
    Ok(ops)
}

/// `insert` → `Insert`: the `Request` variant for an op name.
fn camelize(op: &str) -> String {
    let mut out = String::with_capacity(op.len());
    let mut upper = true;
    for c in op.chars() {
        if c == '_' {
            upper = true;
        } else if upper {
            out.push(c.to_ascii_uppercase());
            upper = false;
        } else {
            out.push(c);
        }
    }
    out
}

/// Runs the rule over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let ops = match extract_ops(ws) {
        Ok(o) => o,
        Err(f) => return vec![f],
    };
    let mut findings = Vec::new();
    let readme_rows = readme_table_entries(&ws.readme, README_HEADER);
    if readme_rows.is_empty() {
        findings.push(Finding {
            rule: RULE,
            file: "README.md".into(),
            line: 0,
            message: format!("no op table under `{README_HEADER}` in README"),
        });
    }
    for op in &ops {
        if !readme_rows.iter().any(|(o, _)| o == op) {
            findings.push(Finding {
                rule: RULE,
                file: "README.md".into(),
                line: 0,
                message: format!("op `{op}` has no row in the README protocol-ops table"),
            });
        }
        if !is_test_covered(ws, op) {
            findings.push(Finding {
                rule: RULE,
                file: PROTOCOL_FILE.into(),
                line: 0,
                message: format!("op `{op}` is not exercised by any test"),
            });
        }
    }
    for (op, line) in &readme_rows {
        if !ops.contains(op) {
            findings.push(Finding {
                rule: RULE,
                file: "README.md".into(),
                line: *line,
                message: format!(
                    "README op table lists `{op}`, which parse_request does not dispatch"
                ),
            });
        }
    }
    findings
}

/// True when some test sends the op: a test-code string literal containing
/// `"op":"<op>"` (raw or `\"`-escaped), or a test-code
/// `Request::<Camelized>` path.
fn is_test_covered(ws: &Workspace, op: &str) -> bool {
    let escaped = format!("\\\"op\\\":\\\"{op}\\\"");
    let raw = format!("\"op\":\"{op}\"");
    let variant = camelize(op);
    for file in &ws.files {
        let sig: Vec<usize> = file.significant().collect();
        for (p, &i) in sig.iter().enumerate() {
            if !file.test_mask[i] {
                continue;
            }
            let tok = &file.tokens[i];
            match tok.kind {
                TokenKind::Str => {
                    let txt = file.text_of(tok);
                    if txt.contains(&escaped) || txt.contains(&raw) {
                        return true;
                    }
                }
                TokenKind::Ident
                    if file.text_of(tok) == variant
                        && p >= 3
                        && file.is_ident(sig[p - 3], "Request")
                        && file.text_of(&file.tokens[sig[p - 2]]) == ":"
                        && file.text_of(&file.tokens[sig[p - 1]]) == ":" =>
                {
                    return true;
                }
                _ => {}
            }
        }
    }
    false
}
