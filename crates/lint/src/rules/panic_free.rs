//! Rule `panic-freedom`: no panicking calls in serving hot paths.
//!
//! The serving hot paths — the event loop, op log, replication, tenancy,
//! the engine/server dispatch layers, the network shim, and the compressed
//! index probed on every request — must not
//! contain `unwrap()`, `expect()`, `panic!`, `todo!`, or `unimplemented!`
//! outside test code. A panic there takes down live connections (or the
//! whole process), so fallibility must surface as typed errors. Guarded
//! cases where the invariant is locally provable use
//! `// LINT-ALLOW(panic-freedom): reason`.

use crate::analysis::SourceFile;
use crate::lexer::TokenKind;
use crate::rules::Finding;
use crate::Workspace;

/// This rule's name.
pub const RULE: &str = "panic-freedom";

/// Hot-path files (workspace-relative). A path under `HOT_DIRS` is also
/// hot.
const HOT_FILES: [&str; 8] = [
    "crates/service/src/event.rs",
    "crates/service/src/oplog.rs",
    "crates/service/src/replica.rs",
    "crates/service/src/tenant.rs",
    "crates/service/src/engine.rs",
    "crates/service/src/server.rs",
    "crates/index/src/compressed.rs",
    "crates/index/src/container.rs",
];
const HOT_DIRS: [&str; 1] = ["crates/service/src/net/"];

/// Method calls banned in hot paths.
const BANNED_METHODS: [&str; 2] = ["unwrap", "expect"];
/// Macros banned in hot paths.
const BANNED_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// True when this file is part of a serving hot path.
pub fn is_hot_path(rel_path: &str) -> bool {
    HOT_FILES.contains(&rel_path) || HOT_DIRS.iter().any(|d| rel_path.starts_with(d))
}

/// Runs the rule over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in ws.files.iter().filter(|f| is_hot_path(&f.rel_path)) {
        check_file(file, &mut findings);
    }
    findings
}

fn check_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    for i in file.significant() {
        if file.test_mask[i] || file.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let text = file.text_of(&file.tokens[i]);
        let line = file.tokens[i].line;
        if BANNED_METHODS.contains(&text) {
            // Only a *call* counts: `.unwrap(` / `.expect(`. Bare idents
            // (a field named `expect`, `unwrap_or_else`) are fine —
            // `unwrap_or_else` is a distinct token, so no prefix issues.
            let is_method = file
                .prev_significant(i)
                .is_some_and(|p| file.text_of(p) == ".");
            let is_call = file
                .next_significant(i)
                .is_some_and(|n| file.text_of(n) == "(");
            if is_method && is_call {
                findings.push(Finding {
                    rule: RULE,
                    file: file.rel_path.clone(),
                    line,
                    message: format!(
                        "`.{text}()` in serving hot path (propagate the error instead)"
                    ),
                });
            }
        } else if BANNED_MACROS.contains(&text) {
            let is_macro = file
                .next_significant(i)
                .is_some_and(|n| file.text_of(n) == "!");
            // `panic` as a path segment (`std::panic::catch_unwind`) or
            // ident is fine; only the macro invocation is banned.
            if is_macro {
                findings.push(Finding {
                    rule: RULE,
                    file: file.rel_path.clone(),
                    line,
                    message: format!("`{text}!` in serving hot path"),
                });
            }
        }
    }
}
