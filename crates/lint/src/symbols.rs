//! A cross-file symbol table for the concurrency rules.
//!
//! For every production `fn` in the workspace it records which **blocking
//! primitives** the body calls directly (`write_all`, `sync_data`,
//! `accept`, …), which **locks** it acquires (named by the receiver of
//! `.lock()`), and which other functions it calls. A fixpoint then
//! propagates both facts through the call graph so a rule can ask "does
//! calling `log_mutation` block?" and get back the chain
//! `log_mutation → append → write_all`.
//!
//! Resolution is deliberately conservative: a call site resolves only
//! when exactly **one** production `fn` in the workspace has that name.
//! Ambiguous names (`new`, `len`, `run`) stay unresolved rather than
//! guessing — the table exists to catch real guard-across-I/O hazards,
//! not to win a soundness contest against `dyn Trait`.

use crate::analysis::SourceFile;
use crate::lexer::TokenKind;
use crate::parser::FileAst;
use crate::Workspace;
use std::collections::HashMap;

/// Method names treated as blocking I/O (or scheduling) primitives when
/// called as `.name(…)`. `sleep` additionally matches as a bare/path call
/// (`thread::sleep`). Deliberately absent: `recv` (the event loop's
/// channel hand-off is its own design decision) and the `write!`/
/// `writeln!` macros (formatting into a `String` is not I/O; macro calls
/// never match the `.name(` shape anyway).
pub const BLOCKING_PRIMITIVES: [&str; 14] = [
    "write",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "read",
    "read_exact",
    "read_line",
    "read_until",
    "read_to_end",
    "read_to_string",
    "accept",
    "connect",
    "sleep",
];

/// True when `name` is one of the blocking primitives.
pub fn is_blocking_primitive(name: &str) -> bool {
    BLOCKING_PRIMITIVES.contains(&name)
}

/// One production function known to the table.
pub struct FnFacts {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Blocking primitives the body calls directly.
    pub primitives: Vec<String>,
    /// Locks the body acquires directly (receiver names of `.lock()`).
    pub locks: Vec<String>,
    /// Names of functions the body calls (method and bare calls alike).
    pub calls: Vec<String>,
}

/// How a function ends up blocking: the call chain from it down to the
/// primitive, e.g. `["append", "write_all"]` for a fn that calls
/// `append` which calls `.write_all()`.
pub type BlockingChain = Vec<String>;

/// One lock a function acquires, directly (`via` empty) or through the
/// chain of calls in `via`.
#[derive(Clone)]
pub struct AcquiredLock {
    /// The lock's receiver name (`engine`, `oplog`, …).
    pub lock: String,
    /// Call chain leading to the acquisition; empty for direct `.lock()`.
    pub via: Vec<String>,
}

/// The workspace-wide table.
pub struct SymbolTable {
    /// Facts for every production fn, in discovery order.
    pub fns: Vec<FnFacts>,
    /// `name → fn index`, only for names with exactly one production defn.
    unique: HashMap<String, usize>,
    /// Transitive blocking chains, keyed by fn index.
    blocking: HashMap<usize, BlockingChain>,
    /// Transitive lock acquisitions, keyed by fn index.
    acquires: HashMap<usize, Vec<AcquiredLock>>,
}

impl SymbolTable {
    /// Builds the table over every production fn in the workspace.
    pub fn build(ws: &Workspace) -> SymbolTable {
        let mut fns = Vec::new();
        for file in &ws.files {
            let ast = FileAst::build(file);
            for def in &ast.fns {
                if file.test_mask.get(def.fn_tok).copied().unwrap_or(false) {
                    continue;
                }
                let (start, end) = ast.body_span(file, def);
                fns.push(collect_facts(file, &def.name, def.line, start, end));
            }
        }

        let mut counts: HashMap<&str, usize> = HashMap::new();
        for f in &fns {
            *counts.entry(f.name.as_str()).or_default() += 1;
        }
        let unique: HashMap<String, usize> = fns
            .iter()
            .enumerate()
            .filter(|(_, f)| counts[f.name.as_str()] == 1)
            .map(|(i, f)| (f.name.clone(), i))
            .collect();

        // Seed with direct facts, then propagate through uniquely-resolved
        // calls until nothing changes.
        let mut blocking: HashMap<usize, BlockingChain> = HashMap::new();
        let mut acquires: HashMap<usize, Vec<AcquiredLock>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            if let Some(p) = f.primitives.first() {
                blocking.insert(i, vec![p.clone()]);
            }
            if !f.locks.is_empty() {
                acquires.insert(
                    i,
                    f.locks
                        .iter()
                        .map(|l| AcquiredLock {
                            lock: l.clone(),
                            via: Vec::new(),
                        })
                        .collect(),
                );
            }
        }
        loop {
            let mut changed = false;
            for (i, f) in fns.iter().enumerate() {
                for callee in &f.calls {
                    let Some(&j) = unique.get(callee) else {
                        continue;
                    };
                    if j == i {
                        continue; // direct recursion adds nothing
                    }
                    if !blocking.contains_key(&i) {
                        if let Some(sub) = blocking.get(&j).cloned() {
                            let mut chain = vec![callee.clone()];
                            chain.extend(sub);
                            blocking.insert(i, chain);
                            changed = true;
                        }
                    }
                    if let Some(subs) = acquires.get(&j).cloned() {
                        let mine = acquires.entry(i).or_default();
                        for sub in subs {
                            if mine.iter().any(|a| a.lock == sub.lock) {
                                continue;
                            }
                            let mut via = vec![callee.clone()];
                            via.extend(sub.via);
                            mine.push(AcquiredLock {
                                lock: sub.lock,
                                via,
                            });
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        SymbolTable {
            fns,
            unique,
            blocking,
            acquires,
        }
    }

    /// The blocking chain for a call to `callee`, when `callee` names
    /// exactly one production fn and that fn (transitively) blocks.
    pub fn blocking_chain(&self, callee: &str) -> Option<&BlockingChain> {
        self.unique.get(callee).and_then(|i| self.blocking.get(i))
    }

    /// The locks a call to `callee` (transitively) acquires; empty when
    /// the name is ambiguous, unknown, or lock-free.
    pub fn acquired_locks(&self, callee: &str) -> &[AcquiredLock] {
        self.unique
            .get(callee)
            .and_then(|i| self.acquires.get(i))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// The receiver name of a `.lock()` call: the last identifier before the
/// dot (`self.registered.lock()` → `registered`). `None` when the
/// receiver is not a simple field/binding chain.
pub fn lock_receiver(file: &SourceFile, sig: &[usize], lock_pos: usize) -> Option<String> {
    // sig[lock_pos] is the `lock` ident; sig[lock_pos - 1] must be `.`.
    let recv = sig.get(lock_pos.checked_sub(2)?)?;
    let tok = &file.tokens[*recv];
    if tok.kind == TokenKind::Ident {
        let name = file.text_of(tok);
        if name != "self" {
            return Some(name.to_string());
        }
    }
    None
}

/// Scans one fn body for direct facts.
fn collect_facts(file: &SourceFile, name: &str, line: u32, start: usize, end: usize) -> FnFacts {
    let sig: Vec<usize> = file
        .significant()
        .filter(|&i| file.tokens[i].start >= start && file.tokens[i].end <= end)
        .collect();
    let mut primitives = Vec::new();
    let mut locks = Vec::new();
    let mut calls = Vec::new();
    for p in 0..sig.len() {
        let i = sig[p];
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = file.text_of(tok);
        let next_is = |s: &str| {
            sig.get(p + 1)
                .is_some_and(|&j| file.text_of(&file.tokens[j]) == s)
        };
        let prev_is_dot = p > 0 && file.text_of(&file.tokens[sig[p - 1]]) == ".";
        if !next_is("(") {
            continue;
        }
        if text == "lock" && prev_is_dot {
            if let Some(recv) = lock_receiver(file, &sig, p) {
                if !locks.contains(&recv) {
                    locks.push(recv);
                }
            }
            continue;
        }
        let is_primitive = is_blocking_primitive(text) && (prev_is_dot || text == "sleep");
        if is_primitive {
            if !primitives.contains(&text.to_string()) {
                primitives.push(text.to_string());
            }
            continue;
        }
        if !calls.contains(&text.to_string()) {
            calls.push(text.to_string());
        }
    }
    FnFacts {
        file: file.rel_path.clone(),
        name: name.to_string(),
        line,
        primitives,
        locks,
        calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SourceFile;
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files: files
                .iter()
                .map(|(rel, src)| {
                    SourceFile::new(rel.to_string(), PathBuf::from(rel), src.to_string())
                })
                .collect(),
            readme: String::new(),
        }
    }

    #[test]
    fn blocking_propagates_through_unique_calls() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn low(f: &mut std::fs::File) { f.sync_data().ok(); }\n\
                 fn mid() { low(&mut f()); }\n\
                 fn top() { mid(); }\n",
            ),
            ("crates/b/src/lib.rs", "fn pure() -> u8 { 1 }\n"),
        ]);
        let st = SymbolTable::build(&w);
        assert_eq!(st.blocking_chain("low"), Some(&vec!["sync_data".into()]));
        assert_eq!(
            st.blocking_chain("top"),
            Some(&vec!["mid".into(), "low".into(), "sync_data".into()])
        );
        assert_eq!(st.blocking_chain("pure"), None);
        assert_eq!(st.blocking_chain("no_such_fn"), None);
    }

    #[test]
    fn ambiguous_names_do_not_resolve() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl A { fn go(&self) { x.sync_all(); } }\n\
             impl B { fn go(&self) {} }\n\
             fn caller() { thing.go(); }\n",
        )]);
        let st = SymbolTable::build(&w);
        assert_eq!(st.blocking_chain("go"), None);
        assert_eq!(st.blocking_chain("caller"), None);
    }

    #[test]
    fn lock_acquisitions_propagate_with_chains() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn inner(m: &std::sync::Mutex<u8>) { let g = oplog.lock(); g; }\n\
             fn outer() { inner(&m); }\n",
        )]);
        let st = SymbolTable::build(&w);
        let direct = st.acquired_locks("inner");
        assert_eq!(direct.len(), 1);
        assert_eq!(direct[0].lock, "oplog");
        assert!(direct[0].via.is_empty());
        let transitive = st.acquired_locks("outer");
        assert_eq!(transitive.len(), 1);
        assert_eq!(transitive[0].lock, "oplog");
        assert_eq!(transitive[0].via, vec!["inner".to_string()]);
    }

    #[test]
    fn test_code_contributes_no_fns() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "#[cfg(test)]\nmod tests { fn helper() { f.sync_all(); } }\n",
        )]);
        let st = SymbolTable::build(&w);
        assert!(st.fns.is_empty());
        assert_eq!(st.blocking_chain("helper"), None);
    }
}
