//! `mithra-lint`: the in-tree conformance linter.
//!
//! Clippy and rustc enforce language-level hygiene; this crate enforces
//! *project* invariants that no off-the-shelf tool knows about (and, per
//! the offline-build policy, no off-the-shelf tool could be added for):
//!
//! * `panic-freedom` — serving hot paths must not contain panicking calls;
//! * `unsafe-audit` — every `unsafe` carries an adjacent `// SAFETY:`;
//! * `error-codes` — the `ErrorCode` enum, the README table, production
//!   construction sites, and test assertions all agree;
//! * `protocol-ops` — every dispatched op is documented and tested;
//! * `snapshot-version` — the snapshot format version is consistent across
//!   the writer, the restore gates, and the README;
//! * `lock-across-blocking` — no Mutex/RwLock guard in a serving hot path
//!   is held across blocking I/O (directly or through a call chain);
//! * `lock-order` — the lock-acquisition graph stays acyclic;
//! * `oplog-format` — the op-log entry wire format agrees across the
//!   writer, the reader, the README, and the tests;
//! * `replicate-protocol` — the catch-up protocol agrees across the
//!   leader, the follower, the README, and the tests.
//!
//! The rules work on a token stream from a small hand-rolled lexer
//! ([`lexer`]), a lightweight item/block parse on top of it ([`parser`]),
//! and a cross-file symbol table ([`symbols`]) — enough Rust to never
//! mistake string/comment content for code, and no more. Findings can be
//! suppressed with a `// LINT-ALLOW(rule): reason` comment on the
//! offending line or the line above; allows are counted in the report,
//! and a malformed or unused allow is itself a finding (rule
//! `lint-allow`). `mithra-lint fix` mechanically repairs drift the rules
//! detect ([`fix`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod fix;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;

use analysis::SourceFile;
use rules::Finding;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The loaded workspace: every first-party `.rs` file plus the README.
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All discovered source files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// `README.md` content (empty when absent — rules report that).
    pub readme: String,
}

/// Top-level directories scanned for Rust sources. `vendor/` is included:
/// the shims are first-party code and subject to the unsafe audit.
const SCAN_DIRS: [&str; 5] = ["crates", "src", "tests", "examples", "vendor"];

impl Workspace {
    /// Loads all sources under `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        for dir in SCAN_DIRS {
            let top = root.join(dir);
            if top.is_dir() {
                collect_rs_files(&top, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for abs in paths {
            let rel = abs
                .strip_prefix(root)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&abs)?;
            files.push(SourceFile::new(rel, abs, text));
        }
        let readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            readme,
        })
    }

    /// Looks up a file by workspace-relative path.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

/// Recursively collects `.rs` files, skipping build output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Returns the byte spans (`{` start .. `}` end) of every `fn <name>` body
/// in the file. Multiple impls may define the same method name, so all
/// spans are returned; callers pick the one whose contents match.
pub fn fn_body_spans(file: &SourceFile, name: &str) -> Vec<(usize, usize)> {
    let sig: Vec<usize> = file.significant().collect();
    let mut spans = Vec::new();
    let mut p = 0;
    while p + 1 < sig.len() {
        if file.is_ident(sig[p], "fn") && file.is_ident(sig[p + 1], name) {
            // Find the opening brace of the body, then its match.
            let mut q = p + 2;
            while q < sig.len() && file.text_of(&file.tokens[sig[q]]) != "{" {
                if file.text_of(&file.tokens[sig[q]]) == ";" {
                    break; // trait method declaration — no body
                }
                q += 1;
            }
            if q < sig.len() && file.text_of(&file.tokens[sig[q]]) == "{" {
                let open = sig[q];
                let mut depth = 0usize;
                let mut close = None;
                for &j in &sig[q..] {
                    match file.text_of(&file.tokens[j]) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                close = Some(j);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if let Some(close) = close {
                    spans.push((file.tokens[open].start, file.tokens[close].end));
                }
            }
        }
        p += 1;
    }
    spans
}

/// Convenience: the first `fn <name>` body span, when there is exactly one
/// obvious candidate. Returns `None` when the fn is absent.
pub fn fn_body_span(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    fn_body_spans(file, name).into_iter().next()
}

/// Per-rule totals for the report.
#[derive(Debug, Clone)]
pub struct RuleSummary {
    /// Rule name.
    pub rule: &'static str,
    /// Unsuppressed findings.
    pub findings: usize,
    /// Findings suppressed by a `LINT-ALLOW`.
    pub allows: usize,
}

/// The result of a full workspace check.
pub struct Report {
    /// How many source files were scanned.
    pub files_scanned: usize,
    /// All unsuppressed findings, in rule order.
    pub findings: Vec<Finding>,
    /// Per-rule totals, in [`rules::RULE_NAMES`] order.
    pub rules: Vec<RuleSummary>,
}

impl Report {
    /// True when no findings survived suppression.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// A rule's entry point.
pub type RuleFn = fn(&Workspace) -> Vec<Finding>;

/// The runnable rules, in [`rules::RULE_NAMES`] order (the trailing
/// `lint-allow` entry is the driver's own audit, not a rule function).
pub const RULES: [(&str, RuleFn); 9] = [
    (rules::panic_free::RULE, rules::panic_free::run),
    (rules::unsafe_audit::RULE, rules::unsafe_audit::run),
    (rules::error_codes::RULE, rules::error_codes::run),
    (rules::protocol_ops::RULE, rules::protocol_ops::run),
    (rules::snapshot_version::RULE, rules::snapshot_version::run),
    (rules::lock_blocking::RULE, rules::lock_blocking::run),
    (rules::lock_order::RULE, rules::lock_order::run),
    (rules::oplog_format::RULE, rules::oplog_format::run),
    (
        rules::replicate_protocol::RULE,
        rules::replicate_protocol::run,
    ),
];

/// Loads the workspace at `root` and runs every rule, applying
/// `LINT-ALLOW` suppression centrally.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let ws = Workspace::load(root)?;
    Ok(check_loaded(&ws))
}

/// Runs every rule over an already-loaded workspace.
pub fn check_loaded(ws: &Workspace) -> Report {
    check_loaded_filtered(ws, None)
}

/// Runs the rules over an already-loaded workspace, optionally restricted
/// to a single rule by name.
///
/// When filtering, the `lint-allow` audit narrows with it: malformed and
/// unknown-rule allows are reported only for the full run (or when
/// `lint-allow` itself is selected), and the unused-allow check covers
/// only allows naming the selected rule — an allow for a rule that did
/// not run cannot be judged unused.
pub fn check_loaded_filtered(ws: &Workspace, only: Option<&str>) -> Report {
    let raw: Vec<(usize, Finding)> = RULES
        .iter()
        .enumerate()
        .filter(|(_, (name, _))| only.is_none_or(|o| o == *name))
        .flat_map(|(ri, (_, run))| run(ws).into_iter().map(move |f| (ri, f)))
        .collect();

    // Suppression: an allow for the finding's rule on the finding's line,
    // or on the line directly above, silences it. Track which allows
    // fired so unused ones can be reported.
    let mut used: Vec<Vec<bool>> = ws
        .files
        .iter()
        .map(|f| vec![false; f.allows.len()])
        .collect();
    let mut summaries: Vec<RuleSummary> = rules::RULE_NAMES
        .iter()
        .map(|&rule| RuleSummary {
            rule,
            findings: 0,
            allows: 0,
        })
        .collect();
    let mut findings = Vec::new();
    for (ri, finding) in raw {
        let suppressed = finding.line > 0
            && ws.files.iter().enumerate().any(|(fi, file)| {
                file.rel_path == finding.file
                    && file.allows.iter().enumerate().any(|(ai, allow)| {
                        let hit = allow.rule == finding.rule
                            && (allow.line == finding.line || allow.line + 1 == finding.line);
                        if hit {
                            used[fi][ai] = true;
                        }
                        hit
                    })
            });
        if suppressed {
            summaries[ri].allows += 1;
        } else {
            summaries[ri].findings += 1;
            findings.push(finding);
        }
    }

    // The escape hatch itself is audited: malformed allows and allows that
    // suppressed nothing are findings under the internal `lint-allow` rule.
    let audit_mechanism = only.is_none_or(|o| o == "lint-allow");
    let allow_rule_idx = summaries.len() - 1;
    for (fi, file) in ws.files.iter().enumerate() {
        if audit_mechanism {
            for bad in &file.malformed_allows {
                summaries[allow_rule_idx].findings += 1;
                findings.push(Finding {
                    rule: "lint-allow",
                    file: file.rel_path.clone(),
                    line: bad.line,
                    message: format!("malformed LINT-ALLOW: {}", bad.problem),
                });
            }
        }
        for (ai, allow) in file.allows.iter().enumerate() {
            if !rules::RULE_NAMES.contains(&allow.rule.as_str()) {
                if audit_mechanism {
                    summaries[allow_rule_idx].findings += 1;
                    findings.push(Finding {
                        rule: "lint-allow",
                        file: file.rel_path.clone(),
                        line: allow.line,
                        message: format!("LINT-ALLOW names unknown rule `{}`", allow.rule),
                    });
                }
            } else if !used[fi][ai] && only.is_none_or(|o| o == allow.rule && o != "lint-allow") {
                summaries[allow_rule_idx].findings += 1;
                findings.push(Finding {
                    rule: "lint-allow",
                    file: file.rel_path.clone(),
                    line: allow.line,
                    message: format!(
                        "unused LINT-ALLOW({}) — nothing to suppress here, remove it",
                        allow.rule
                    ),
                });
            }
        }
    }

    Report {
        files_scanned: ws.files.len(),
        findings,
        rules: summaries,
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn fn_body_spans_finds_all_overloads() {
        let src = "\
impl A { fn go(&self) -> u8 { 1 } }
impl B { fn go(&self) -> u8 { { 2 } } }
trait T { fn go(&self) -> u8; }
";
        let file = SourceFile::new("x.rs".into(), PathBuf::from("x.rs"), src.into());
        let spans = fn_body_spans(&file, "go");
        assert_eq!(spans.len(), 2);
        assert!(src[spans[0].0..spans[0].1].contains('1'));
        assert!(src[spans[1].0..spans[1].1].contains('2'));
    }
}
