//! CLI for the in-tree conformance linter.
//!
//! ```text
//! mithra-lint check [--root PATH]
//! ```
//!
//! Findings stream to stdout as NDJSON (one object per finding, then one
//! `{"summary":…}` line), matching the service's wire idiom so CI and
//! scripts can parse them the same way. A human per-rule summary goes to
//! stderr. Exit code: 0 clean, 1 findings, 2 usage/IO error.

use mithra_lint::{check_workspace, json_escape, Report};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: mithra-lint check [--root PATH]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command != "check" {
        eprintln!("unknown command `{command}`\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "mithra-lint: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    print_ndjson(&report);
    print_human_summary(&report);
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// One NDJSON object per finding, then the summary object.
fn print_ndjson(report: &Report) {
    for f in &report.findings {
        println!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        );
    }
    let rules: Vec<String> = report
        .rules
        .iter()
        .map(|r| {
            format!(
                "{{\"rule\":\"{}\",\"findings\":{},\"allows\":{}}}",
                json_escape(r.rule),
                r.findings,
                r.allows
            )
        })
        .collect();
    println!(
        "{{\"summary\":{{\"files_scanned\":{},\"total_findings\":{},\"rules\":[{}]}}}}",
        report.files_scanned,
        report.findings.len(),
        rules.join(",")
    );
}

/// Per-rule table on stderr for humans reading CI logs.
fn print_human_summary(report: &Report) {
    eprintln!("mithra-lint: scanned {} files", report.files_scanned);
    for r in &report.rules {
        eprintln!(
            "  {:<18} {:>3} finding{}  {:>3} allow{}",
            r.rule,
            r.findings,
            if r.findings == 1 { " " } else { "s" },
            r.allows,
            if r.allows == 1 { " " } else { "s" },
        );
    }
    if report.clean() {
        eprintln!("mithra-lint: clean");
    } else {
        eprintln!("mithra-lint: {} finding(s)", report.findings.len());
    }
}
