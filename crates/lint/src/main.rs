//! CLI for the in-tree conformance linter.
//!
//! ```text
//! mithra-lint check [--root PATH] [--rule NAME] [--format human|ndjson]
//! mithra-lint fix   [--root PATH] [--check]
//! ```
//!
//! `check` findings stream to stdout as NDJSON (one object per finding,
//! then one `{"summary":…}` line), matching the service's wire idiom so
//! CI and scripts can parse them the same way. A human per-rule summary
//! goes to stderr. `--format ndjson` keeps stdout machine-only (no stderr
//! table); `--format human` prints only the table, on stdout. `--rule`
//! restricts the run to one rule. Exit code: 0 clean, 1 findings, 2
//! usage/IO error.
//!
//! `fix` applies the mechanical rewrites (LINT-ALLOW normalization,
//! README table regeneration); `fix --check` is the CI dry run — it
//! prints what would change and exits 1 without touching anything.

use mithra_lint::rules::RULE_NAMES;
use mithra_lint::{check_loaded_filtered, fix, json_escape, Report, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: mithra-lint check [--root PATH] [--rule NAME] [--format human|ndjson]\n       mithra-lint fix [--root PATH] [--check]";

#[derive(PartialEq)]
enum Format {
    Both,
    Human,
    Ndjson,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command != "check" && command != "fix" {
        eprintln!("unknown command `{command}`\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut root = PathBuf::from(".");
    let mut rule: Option<String> = None;
    let mut format = Format::Both;
    let mut dry_run = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--rule" if command == "check" => match args.next() {
                Some(name) => {
                    if !RULE_NAMES.contains(&name.as_str()) {
                        eprintln!(
                            "unknown rule `{name}`; rules are: {}",
                            RULE_NAMES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                    rule = Some(name);
                }
                None => {
                    eprintln!("--rule requires a rule name\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" if command == "check" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("ndjson") => format = Format::Ndjson,
                Some(other) => {
                    eprintln!("unknown format `{other}` (human|ndjson)\n{USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--format requires human|ndjson\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--check" if command == "fix" => dry_run = true,
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "mithra-lint: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if command == "fix" {
        return run_fix(&ws, dry_run);
    }

    let report = check_loaded_filtered(&ws, rule.as_deref());
    if format != Format::Human {
        print_ndjson(&report);
    }
    if format != Format::Ndjson {
        print_human_summary(&report, format == Format::Human);
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// `fix` / `fix --check`: plan the rewrites, then apply or report them.
fn run_fix(ws: &Workspace, dry_run: bool) -> ExitCode {
    let fixes = fix::plan(ws);
    if fixes.is_empty() {
        eprintln!("mithra-lint: nothing to fix");
        return ExitCode::SUCCESS;
    }
    for f in &fixes {
        for note in &f.notes {
            println!("{}: {}", f.rel_path, note);
        }
    }
    if dry_run {
        eprintln!(
            "mithra-lint: {} file(s) would be rewritten (run `mithra-lint fix` to apply)",
            fixes.len()
        );
        return ExitCode::from(1);
    }
    match fix::apply(ws, &fixes) {
        Ok(()) => {
            eprintln!("mithra-lint: rewrote {} file(s)", fixes.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mithra-lint: fix failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// One NDJSON object per finding, then the summary object.
fn print_ndjson(report: &Report) {
    for f in &report.findings {
        println!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        );
    }
    let rules: Vec<String> = report
        .rules
        .iter()
        .map(|r| {
            format!(
                "{{\"rule\":\"{}\",\"findings\":{},\"allows\":{}}}",
                json_escape(r.rule),
                r.findings,
                r.allows
            )
        })
        .collect();
    println!(
        "{{\"summary\":{{\"files_scanned\":{},\"total_findings\":{},\"rules\":[{}]}}}}",
        report.files_scanned,
        report.findings.len(),
        rules.join(",")
    );
}

/// Per-rule table for humans reading CI logs. Goes to stderr in the
/// default combined mode (stdout is the NDJSON stream), to stdout when
/// the human format was requested alone.
fn print_human_summary(report: &Report, to_stdout: bool) {
    let emit = |line: String| {
        if to_stdout {
            println!("{line}");
        } else {
            eprintln!("{line}");
        }
    };
    emit(format!(
        "mithra-lint: scanned {} files",
        report.files_scanned
    ));
    for r in &report.rules {
        emit(format!(
            "  {:<20} {:>3} finding{}  {:>3} allow{}",
            r.rule,
            r.findings,
            if r.findings == 1 { " " } else { "s" },
            r.allows,
            if r.allows == 1 { " " } else { "s" },
        ));
    }
    if report.clean() {
        emit("mithra-lint: clean".to_string());
    } else {
        emit(format!("mithra-lint: {} finding(s)", report.findings.len()));
    }
}
