//! A lightweight item/block parse layer on top of the lexer.
//!
//! The original rules were token-window scanners; the concurrency rules
//! need *structure*: which block a token lives in, where a statement
//! ends, which `fn` a call site belongs to. This module builds exactly
//! that and no more — a brace tree with item kinds plus a flat list of
//! `fn` definitions with body spans — still with zero dependencies and
//! zero allocation beyond the two vectors.
//!
//! Everything here speaks **token indices** into `SourceFile::tokens`
//! (comments included), matching the rest of the crate.

use crate::analysis::SourceFile;
use crate::lexer::TokenKind;

/// What kind of item (or expression) opened a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// The body of a `fn`.
    FnBody,
    /// A `struct`/`enum`/`union` body.
    TypeBody,
    /// An `impl` block.
    Impl,
    /// A `mod` block.
    Mod,
    /// A `trait` block.
    Trait,
    /// A `match` expression's arm list.
    Match,
    /// Anything else: plain blocks, control flow, struct literals.
    Other,
}

/// One `{ … }` region of the file.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the matching `}` (the last token when unbalanced).
    pub close: usize,
    /// Index of the enclosing block in [`FileAst::blocks`], if any.
    pub parent: Option<usize>,
    /// What introduced the block.
    pub kind: BlockKind,
}

/// One `fn` definition with a body.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Index of the body block in [`FileAst::blocks`].
    pub body: usize,
}

/// The parsed shape of one file: a brace tree plus its `fn` definitions.
pub struct FileAst {
    /// All blocks, in opening order (so parents precede children).
    pub blocks: Vec<Block>,
    /// All `fn` definitions that have bodies, in source order.
    pub fns: Vec<FnDef>,
}

impl FileAst {
    /// Parses `file` into a brace tree. Never fails: unbalanced input
    /// degrades to blocks closed at end-of-file.
    pub fn build(file: &SourceFile) -> FileAst {
        let sig: Vec<usize> = file.significant().collect();
        let mut blocks: Vec<Block> = Vec::new();
        let mut fns: Vec<FnDef> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        // A pending item keyword arms the next `{` at bracket depth 0.
        type PendingItem = (BlockKind, Option<(String, usize, u32)>);
        let mut pending: Option<PendingItem> = None;
        let mut bracket_depth = 0usize; // `(` and `[` nesting since the pending item

        let mut p = 0usize;
        while p < sig.len() {
            let i = sig[p];
            let tok = &file.tokens[i];
            let text = file.text_of(tok);
            match (tok.kind, text) {
                (TokenKind::Ident, "fn") => {
                    // `fn name` — anything else (e.g. a field named `fn`?)
                    // cannot occur; a missing name just leaves no pending.
                    if let Some(&j) = sig.get(p + 1) {
                        if file.tokens[j].kind == TokenKind::Ident {
                            pending = Some((
                                BlockKind::FnBody,
                                Some((file.text_of(&file.tokens[j]).to_string(), i, tok.line)),
                            ));
                            bracket_depth = 0;
                        }
                    }
                }
                (TokenKind::Ident, "struct" | "enum" | "union") => {
                    pending = Some((BlockKind::TypeBody, None));
                    bracket_depth = 0;
                }
                (TokenKind::Ident, "impl") => {
                    pending = Some((BlockKind::Impl, None));
                    bracket_depth = 0;
                }
                (TokenKind::Ident, "mod") => {
                    pending = Some((BlockKind::Mod, None));
                    bracket_depth = 0;
                }
                (TokenKind::Ident, "trait") => {
                    pending = Some((BlockKind::Trait, None));
                    bracket_depth = 0;
                }
                (TokenKind::Ident, "match") => {
                    pending = Some((BlockKind::Match, None));
                    bracket_depth = 0;
                }
                (TokenKind::Punct, "(" | "[") => bracket_depth += 1,
                (TokenKind::Punct, ")" | "]") => bracket_depth = bracket_depth.saturating_sub(1),
                (TokenKind::Punct, ";") if bracket_depth == 0 => {
                    // `fn f(…);` trait declaration, `struct S;`, etc.
                    pending = None;
                }
                (TokenKind::Punct, "{") => {
                    let kind = match pending.take() {
                        Some((k, f)) if bracket_depth == 0 => {
                            if let Some((name, fn_tok, line)) = f {
                                fns.push(FnDef {
                                    name,
                                    fn_tok,
                                    line,
                                    body: blocks.len(),
                                });
                            }
                            k
                        }
                        other => {
                            pending = other; // `{` inside brackets: keep waiting
                            BlockKind::Other
                        }
                    };
                    blocks.push(Block {
                        open: i,
                        close: file.tokens.len().saturating_sub(1),
                        parent: stack.last().copied(),
                        kind,
                    });
                    stack.push(blocks.len() - 1);
                }
                (TokenKind::Punct, "}") => {
                    if let Some(b) = stack.pop() {
                        blocks[b].close = i;
                    }
                }
                _ => {}
            }
            p += 1;
        }
        FileAst { blocks, fns }
    }

    /// The innermost block containing token index `tok` (strictly between
    /// its braces), if any.
    pub fn innermost_block(&self, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (bi, b) in self.blocks.iter().enumerate() {
            if b.open < tok && tok < b.close && best.is_none_or(|p| self.blocks[p].open < b.open) {
                best = Some(bi);
            }
        }
        best
    }

    /// The `fn` whose body contains token index `tok`, if any (the
    /// innermost one, so closures inside fns still resolve to the fn).
    pub fn fn_containing(&self, tok: usize) -> Option<&FnDef> {
        let mut best: Option<&FnDef> = None;
        for f in &self.fns {
            let b = &self.blocks[f.body];
            if b.open <= tok
                && tok <= b.close
                && best.is_none_or(|p| self.blocks[p.body].open < b.open)
            {
                best = Some(f);
            }
        }
        best
    }

    /// Byte span of a fn's body (including the braces).
    pub fn body_span(&self, file: &SourceFile, f: &FnDef) -> (usize, usize) {
        let b = &self.blocks[f.body];
        (file.tokens[b.open].start, file.tokens[b.close].end)
    }
}

/// Finds the end of the statement containing significant-position `pos`
/// (an index into `sig`): the position of the `;` that closes it at the
/// same brace depth, or of the `}` that closes the enclosing block.
/// Brace pairs opened inside the statement (match bodies, closures) are
/// skipped whole.
pub fn statement_end(file: &SourceFile, sig: &[usize], pos: usize) -> usize {
    let mut depth = 0usize;
    let mut p = pos;
    while p < sig.len() {
        match file.text_of(&file.tokens[sig[p]]) {
            "{" => depth += 1,
            "}" => {
                if depth == 0 {
                    return p;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return p,
            _ => {}
        }
        p += 1;
    }
    sig.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("x.rs".into(), PathBuf::from("x.rs"), src.into())
    }

    #[test]
    fn brace_tree_nests_and_kinds_attach() {
        let src = "\
mod m {
    struct S { x: u8 }
    impl S {
        fn get(&self) -> u8 {
            match self.x { 0 => 1, n => n }
        }
    }
}
";
        let f = file(src);
        let ast = FileAst::build(&f);
        let kinds: Vec<BlockKind> = ast.blocks.iter().map(|b| b.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BlockKind::Mod,
                BlockKind::TypeBody,
                BlockKind::Impl,
                BlockKind::FnBody,
                BlockKind::Match,
            ]
        );
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "get");
        // The match block's parent chain walks up to the mod.
        let m = ast.blocks.len() - 1;
        assert_eq!(ast.blocks[m].parent, Some(3));
        assert_eq!(ast.blocks[3].parent, Some(2));
        assert_eq!(ast.blocks[0].parent, None);
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let src = "trait T { fn a(&self); fn b(&self) -> u8 { 2 } }";
        let f = file(src);
        let ast = FileAst::build(&f);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "b");
        assert_eq!(ast.blocks[ast.fns[0].body].kind, BlockKind::FnBody);
    }

    #[test]
    fn array_types_in_signatures_do_not_end_the_pending_fn() {
        let src = "fn f(x: [u8; 3]) -> u8 { x[0] }";
        let f = file(src);
        let ast = FileAst::build(&f);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "f");
    }

    #[test]
    fn innermost_block_and_fn_containing_resolve() {
        let src = "fn outer() { let c = || { inner_marker(); }; }";
        let f = file(src);
        let ast = FileAst::build(&f);
        let marker = (0..f.tokens.len())
            .find(|&i| f.is_ident(i, "inner_marker"))
            .unwrap();
        let b = ast.innermost_block(marker).unwrap();
        assert_eq!(ast.blocks[b].kind, BlockKind::Other); // the closure body
        assert_eq!(ast.fn_containing(marker).unwrap().name, "outer");
    }

    #[test]
    fn statement_end_skips_inner_braces() {
        let src = "fn f() { let g = match x { A => { y(); 1 } }; tail(); }";
        let f = file(src);
        let sig: Vec<usize> = f.significant().collect();
        let let_pos = sig.iter().position(|&i| f.is_ident(i, "let")).unwrap();
        let end = statement_end(&f, &sig, let_pos);
        assert_eq!(f.text_of(&f.tokens[sig[end]]), ";");
        // The `;` found is the one after the match, not inside an arm.
        let tail = sig.iter().position(|&i| f.is_ident(i, "tail")).unwrap();
        assert!(end < tail);
        assert!(sig[end] > sig[let_pos]);
    }
}
