//! Per-file analysis shared by every rule.
//!
//! A [`SourceFile`] wraps the raw text plus its token stream and two derived
//! layers the rules consume:
//!
//! * a **test mask** — which tokens live in `#[cfg(test)]` / `#[test]` code
//!   (or in a file under a `tests/` directory), so rules can restrict
//!   themselves to production code;
//! * the **allow list** — parsed `// LINT-ALLOW(rule): reason` escape
//!   hatches, which the check driver uses to suppress findings and which
//!   must themselves be well-formed and actually used.

use crate::lexer::{lex, Token, TokenKind};
use std::path::PathBuf;

/// A parsed `// LINT-ALLOW(rule): reason` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// 1-based line of the comment. The allow suppresses findings of
    /// `rule` on this line and the next one (so it can sit above the
    /// offending expression or trail it on the same line).
    pub line: u32,
    /// The free-text justification after the colon.
    pub reason: String,
}

/// A `LINT-ALLOW` marker that could not be parsed (missing rule name or
/// missing reason). Reported as a finding so typos don't silently
/// disable nothing.
#[derive(Debug, Clone)]
pub struct MalformedAllow {
    /// 1-based line of the comment.
    pub line: u32,
    /// Why it failed to parse.
    pub problem: String,
}

/// One workspace source file, lexed and annotated.
pub struct SourceFile {
    /// Path relative to the workspace root (always with `/` separators).
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// The raw source text.
    pub text: String,
    /// All tokens, including comments.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` is true when `tokens[i]` is in test-only code.
    pub test_mask: Vec<bool>,
    /// Parsed `LINT-ALLOW` escape hatches.
    pub allows: Vec<Allow>,
    /// Unparseable `LINT-ALLOW` markers.
    pub malformed_allows: Vec<MalformedAllow>,
}

impl SourceFile {
    /// Lexes and annotates one file.
    pub fn new(rel_path: String, abs_path: PathBuf, text: String) -> Self {
        let tokens = lex(&text);
        let test_mask = compute_test_mask(&rel_path, &text, &tokens);
        let (allows, malformed_allows) = parse_allows(&text, &tokens);
        SourceFile {
            rel_path,
            abs_path,
            text,
            tokens,
            test_mask,
            allows,
            malformed_allows,
        }
    }

    /// Token text, for matching.
    pub fn text_of(&self, tok: &Token) -> &str {
        tok.text(&self.text)
    }

    /// Indices of significant (non-comment) tokens, in order.
    pub fn significant(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(|&i| {
            !matches!(
                self.tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
    }

    /// The previous significant token before index `i`, if any.
    pub fn prev_significant(&self, i: usize) -> Option<&Token> {
        self.tokens[..i]
            .iter()
            .rev()
            .find(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }

    /// The next significant token after index `i`, if any.
    pub fn next_significant(&self, i: usize) -> Option<&Token> {
        self.tokens[i + 1..]
            .iter()
            .find(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }

    /// True when `tokens[i]` is an `Ident` with exactly this text.
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tokens[i].kind == TokenKind::Ident && self.text_of(&self.tokens[i]) == text
    }
}

/// Marks tokens that belong to test-only code.
///
/// Two sources of testness:
/// * the whole file, when its relative path has a `tests` component
///   (integration tests, fixture dirs);
/// * any item annotated `#[test]` or `#[cfg(test)]` — detected as an
///   attribute whose token run contains both `cfg` and `test`, or is
///   exactly `[test]`. The mask covers the attribute itself, any stacked
///   attributes after it, and the following item through its matching
///   closing brace (or trailing semicolon for brace-less items).
fn compute_test_mask(rel_path: &str, text: &str, tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    if rel_path.split('/').any(|c| c == "tests") {
        mask.iter_mut().for_each(|m| *m = true);
        return mask;
    }
    let significant: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let text_of = |i: usize| tokens[i].text(text);

    // Scans one attribute starting at significant position `s` (which must
    // point at `#`). Returns (next significant position after the
    // attribute, whether it is a test attribute).
    let scan_attr = |s: usize| -> (usize, bool) {
        let mut p = s + 1; // past `#`
        if significant.get(p).is_some_and(|&i| text_of(i) == "!") {
            p += 1; // inner attribute `#![…]`
        }
        let Some(&open) = significant.get(p) else {
            return (p, false);
        };
        if text_of(open) != "[" {
            return (p, false);
        }
        let mut depth = 0usize;
        let mut has_cfg = false;
        let mut has_test = false;
        let mut count = 0usize;
        while p < significant.len() {
            let i = significant[p];
            match text_of(i) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return (p + 1, has_test && (has_cfg || count == 1));
                    }
                }
                "cfg" if tokens[i].kind == TokenKind::Ident => has_cfg = true,
                "test" if tokens[i].kind == TokenKind::Ident => {
                    has_test = true;
                    count += 1;
                }
                other => {
                    if tokens[i].kind == TokenKind::Ident && other != "test" {
                        count += 2; // anything besides a bare `test` disqualifies the `#[test]` form
                    }
                }
            }
            p += 1;
        }
        (p, false)
    };

    let mut s = 0usize;
    while s < significant.len() {
        if text_of(significant[s]) != "#" {
            s += 1;
            continue;
        }
        let attr_start = s;
        let (mut p, mut is_test) = scan_attr(s);
        // Stacked attributes: keep scanning while the next token is `#`.
        while p < significant.len() && text_of(significant[p]) == "#" {
            let (np, t) = scan_attr(p);
            is_test |= t;
            p = np;
        }
        if !is_test {
            s = p.max(s + 1);
            continue;
        }
        // Mask from the first attribute through the annotated item: to the
        // matching `}` of the first `{`, or to the first `;` seen before
        // any `{` (e.g. `#[cfg(test)] use …;`).
        let mut depth = 0usize;
        let mut end = p;
        let mut entered = false;
        while end < significant.len() {
            match text_of(significant[end]) {
                "{" => {
                    depth += 1;
                    entered = true;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        break;
                    }
                }
                ";" if !entered => break,
                _ => {}
            }
            end += 1;
        }
        let span_start = tokens[significant[attr_start]].start;
        let span_end = if end < significant.len() {
            tokens[significant[end]].end
        } else {
            text.len()
        };
        for (ti, tok) in tokens.iter().enumerate() {
            if tok.start >= span_start && tok.end <= span_end {
                mask[ti] = true;
            }
        }
        s = (end + 1).max(s + 1);
    }
    mask
}

/// Extracts `LINT-ALLOW(rule): reason` markers from comment tokens.
///
/// Only plain comments count: doc comments (`///`, `//!`, `/**`, `/*!`)
/// are rendered prose — the linter's own documentation *describes* the
/// escape hatch without enacting it.
fn parse_allows(text: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<MalformedAllow>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for tok in tokens {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let body = tok.text(text);
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| body.starts_with(p))
            && !body.starts_with("/**/")
        {
            continue;
        }
        let Some(at) = body.find("LINT-ALLOW") else {
            continue;
        };
        let rest = &body[at + "LINT-ALLOW".len()..];
        let Some(open_rel) = rest.find('(') else {
            malformed.push(MalformedAllow {
                line: tok.line,
                problem: "missing `(rule)` after LINT-ALLOW".into(),
            });
            continue;
        };
        if !rest[..open_rel].trim().is_empty() {
            malformed.push(MalformedAllow {
                line: tok.line,
                problem: "text between LINT-ALLOW and `(`".into(),
            });
            continue;
        }
        let after_open = &rest[open_rel + 1..];
        let Some(close_rel) = after_open.find(')') else {
            malformed.push(MalformedAllow {
                line: tok.line,
                problem: "unclosed `(rule)` in LINT-ALLOW".into(),
            });
            continue;
        };
        let rule = after_open[..close_rel].trim().to_string();
        if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            malformed.push(MalformedAllow {
                line: tok.line,
                problem: format!("bad rule name `{rule}` in LINT-ALLOW"),
            });
            continue;
        }
        let after_close = &after_open[close_rel + 1..];
        let reason = after_close
            .trim_start()
            .strip_prefix(':')
            .map(|r| r.trim().trim_end_matches("*/").trim().to_string());
        match reason {
            Some(r) if !r.is_empty() => allows.push(Allow {
                rule,
                line: tok.line,
                reason: r,
            }),
            _ => malformed.push(MalformedAllow {
                line: tok.line,
                problem: format!("LINT-ALLOW({rule}) has no `: reason`"),
            }),
        }
    }
    (allows, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(rel.to_string(), PathBuf::from(rel), src.to_string())
    }

    fn unmasked_idents(f: &SourceFile) -> Vec<String> {
        f.tokens
            .iter()
            .zip(&f.test_mask)
            .filter(|(t, &m)| !m && t.kind == TokenKind::Ident)
            .map(|(t, _)| t.text(&f.text).to_string())
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let f = file(
            "crates/x/src/lib.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn after() {}\n",
        );
        let idents = unmasked_idents(&f);
        assert!(idents.contains(&"prod".to_string()));
        assert!(idents.contains(&"after".to_string()));
        assert!(!idents.contains(&"unwrap".to_string()));
        assert!(!idents.contains(&"helper".to_string()));
    }

    #[test]
    fn test_attr_masks_single_fn() {
        let f = file(
            "crates/x/src/lib.rs",
            "#[test]\nfn t() { a.unwrap(); }\nfn prod() { b(); }\n",
        );
        let idents = unmasked_idents(&f);
        assert!(!idents.contains(&"unwrap".to_string()));
        assert!(idents.contains(&"prod".to_string()));
    }

    #[test]
    fn stacked_attrs_and_cfg_attr_forms() {
        let f = file(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\n#[derive(Debug)]\nstruct T { x: u8 }\n\n#[derive(Clone)]\n#[cfg(all(test, feature = \"x\"))]\nfn t() { y.unwrap(); }\nfn keep() {}\n",
        );
        let idents = unmasked_idents(&f);
        assert!(!idents.contains(&"unwrap".to_string()));
        assert!(idents.contains(&"keep".to_string()));
    }

    #[test]
    fn non_test_attrs_do_not_mask() {
        let f = file(
            "crates/x/src/lib.rs",
            "#[derive(Debug)]\nstruct S;\n#[cfg(feature = \"testing\")]\nfn gated() { z.unwrap(); }\n",
        );
        // `feature = "testing"` has cfg but no bare `test` ident — the
        // string literal "testing" is not an Ident token.
        let idents = unmasked_idents(&f);
        assert!(idents.contains(&"unwrap".to_string()));
    }

    #[test]
    fn tests_dir_masks_whole_file() {
        let f = file("crates/x/tests/it.rs", "fn t() { a.unwrap(); }\n");
        assert!(f.test_mask.iter().all(|&m| m));
    }

    #[test]
    fn semicolon_item_after_test_attr() {
        let f = file(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() { q(); }\n",
        );
        let idents = unmasked_idents(&f);
        assert!(!idents.contains(&"HashMap".to_string()));
        assert!(idents.contains(&"prod".to_string()));
    }

    #[test]
    fn allows_parse_and_malformed_are_caught() {
        let src = "\
// LINT-ALLOW(panic-freedom): guarded by len check above
fn a() {}
// LINT-ALLOW(panic-freedom) missing colon
// LINT-ALLOW: no rule
/* LINT-ALLOW(unsafe-audit): block comment form */
// LINT-ALLOW(bad rule!): spaces
";
        let f = file("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "panic-freedom");
        assert_eq!(f.allows[0].line, 1);
        assert_eq!(f.allows[0].reason, "guarded by len check above");
        assert_eq!(f.allows[1].rule, "unsafe-audit");
        assert_eq!(f.allows[1].reason, "block comment form");
        assert_eq!(f.malformed_allows.len(), 3);
    }

    #[test]
    fn doc_comments_do_not_enact_allows() {
        let src = "\
//! The `LINT-ALLOW(panic-freedom): reason` escape hatch.
/// Write LINT-ALLOW(unsafe-audit): like this.
/** LINT-ALLOW broken prose */
fn a() {}
";
        let f = file("crates/x/src/lib.rs", src);
        assert!(f.allows.is_empty());
        assert!(f.malformed_allows.is_empty());
    }

    #[test]
    fn lint_allow_in_string_is_ignored() {
        let f = file(
            "crates/x/src/lib.rs",
            "let s = \"LINT-ALLOW(panic-freedom): not a comment\";\n",
        );
        assert!(f.allows.is_empty());
        assert!(f.malformed_allows.is_empty());
    }
}
