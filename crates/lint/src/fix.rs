//! `mithra-lint fix`: mechanical repair for the drift the rules detect.
//!
//! Two families of rewrite, both deterministic and idempotent (fixing an
//! already-fixed workspace plans zero rewrites — CI runs `fix --check` as
//! a dry run to enforce that the tree is in the fixed point):
//!
//! * **LINT-ALLOW normalization** — a line comment whose marker deviates
//!   from the canonical `LINT-ALLOW(rule): reason` spelling (stray spaces,
//!   a missing colon, an unparenthesized rule) is rewritten to canonical
//!   form, provided the rule name and a non-empty reason are recoverable.
//!   Markers missing a rule or a reason are *not* invented — those stay
//!   findings for a human.
//! * **README table regeneration** — the key-anchored conformance tables
//!   (error codes, protocol ops, op-log entry fields, replicate response
//!   fields, rule list) are reconciled against the source of truth the
//!   corresponding rule extracts: stale rows are deleted, missing rows are
//!   appended with a placeholder meaning, and the `(currently N)` version
//!   markers are refreshed from the constants.
//!
//! Only files already loaded in the [`Workspace`] are rewritten; `fix`
//! never creates files or invents sections, so a README without one of the
//! tables is left for `check` to report.

use crate::analysis::SourceFile;
use crate::lexer::TokenKind;
use crate::rules::{error_codes, oplog_format, protocol_ops, replicate_protocol, snapshot_version};
use crate::{rules, Workspace};
use std::fs;
use std::io;

/// One planned file rewrite.
pub struct FileFix {
    /// Workspace-relative path of the file to rewrite.
    pub rel_path: String,
    /// Human-readable description of each change, for the dry run.
    pub notes: Vec<String>,
    /// The full post-fix file content.
    pub new_text: String,
}

/// Plans every rewrite for the workspace. Empty when already fixed.
pub fn plan(ws: &Workspace) -> Vec<FileFix> {
    let mut out = Vec::new();
    for file in &ws.files {
        if let Some(fix) = fix_allow_markers(file) {
            out.push(fix);
        }
    }
    if let Some(fix) = fix_readme(ws) {
        out.push(fix);
    }
    out
}

/// Writes the planned rewrites back to disk under the workspace root.
pub fn apply(ws: &Workspace, fixes: &[FileFix]) -> io::Result<()> {
    for fix in fixes {
        fs::write(ws.root.join(&fix.rel_path), &fix.new_text)?;
    }
    Ok(())
}

/// Rewrites non-canonical `LINT-ALLOW` markers in one file's ordinary
/// line comments (doc comments are prose, never markers).
fn fix_allow_markers(file: &SourceFile) -> Option<FileFix> {
    let mut edits: Vec<(usize, usize, String, u32)> = Vec::new();
    for tok in &file.tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let text = file.text_of(tok);
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(marker) = text.find("LINT-ALLOW") else {
            continue;
        };
        let tail = &text[marker + "LINT-ALLOW".len()..];
        let Some((rule, reason)) = recover_allow(tail) else {
            continue;
        };
        let canonical = format!("LINT-ALLOW({rule}): {reason}");
        if text[marker..] != canonical {
            edits.push((tok.start + marker, tok.end, canonical, tok.line));
        }
    }
    if edits.is_empty() {
        return None;
    }
    let mut new_text = file.text.clone();
    let mut notes = Vec::new();
    for (start, end, replacement, line) in edits.into_iter().rev() {
        new_text.replace_range(start..end, &replacement);
        notes.push(format!("line {line}: normalized to `{replacement}`"));
    }
    notes.reverse();
    Some(FileFix {
        rel_path: file.rel_path.clone(),
        notes,
        new_text,
    })
}

/// Recovers `(rule, reason)` from the text after a `LINT-ALLOW` marker,
/// tolerating stray spaces, a missing colon, and unparenthesized rule
/// names. `None` when either part is missing or implausible.
fn recover_allow(tail: &str) -> Option<(String, String)> {
    let tail = tail.trim_start_matches([' ', '\t']);
    let (rule, rest) = if let Some(inner) = tail.strip_prefix('(') {
        let close = inner.find(')')?;
        (inner[..close].trim().to_string(), &inner[close + 1..])
    } else {
        // An unparenthesized marker — the rule name runs to the colon.
        let colon = tail.find(':')?;
        (tail[..colon].trim().to_string(), &tail[colon..])
    };
    if rule.is_empty()
        || !rule
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return None;
    }
    let rest = rest.trim_start_matches([' ', '\t']);
    let reason = rest.strip_prefix(':').unwrap_or(rest).trim();
    if reason.is_empty() {
        return None;
    }
    Some((rule, reason.to_string()))
}

/// Reconciles the README's key-anchored tables and version markers.
fn fix_readme(ws: &Workspace) -> Option<FileFix> {
    if ws.readme.is_empty() {
        return None;
    }
    let mut text = ws.readme.clone();
    let mut notes = Vec::new();

    if let Ok(table) = error_codes::extract_table(ws) {
        let keys: Vec<String> = table.codes.iter().map(|(_, wire)| wire.clone()).collect();
        fix_table(&mut text, error_codes::README_HEADER, &keys, &mut notes);
    }
    if let Ok(ops) = protocol_ops::extract_ops(ws) {
        fix_table(&mut text, protocol_ops::README_HEADER, &ops, &mut notes);
    }
    if let Some((fields, _)) = oplog_format::writer_facts(ws) {
        fix_table(&mut text, oplog_format::README_HEADER, &fields, &mut notes);
    }
    if let Some(fields) = replicate_protocol::arm_fields(ws) {
        fix_table(
            &mut text,
            replicate_protocol::README_HEADER,
            &fields,
            &mut notes,
        );
    }
    let rule_names: Vec<String> = rules::RULE_NAMES.iter().map(|r| r.to_string()).collect();
    fix_table(&mut text, "| Rule | Invariant |", &rule_names, &mut notes);

    if let Some(file) = ws.file(oplog_format::OPLOG_FILE) {
        if let Some(version) = rules::extract_const(file, "OPLOG_VERSION") {
            fix_version_markers(&mut text, true, version, &mut notes);
        }
    }
    if let Some(file) = ws.file(snapshot_version::SNAPSHOT_FILE) {
        if let Some(version) = rules::extract_const(file, "SNAPSHOT_VERSION") {
            fix_version_markers(&mut text, false, version, &mut notes);
        }
    }

    if text == ws.readme {
        return None;
    }
    Some(FileFix {
        rel_path: "README.md".into(),
        notes,
        new_text: text,
    })
}

/// Reconciles one key-anchored table: rows whose backticked first cell is
/// not in `keys` are deleted; keys with no row are appended with a
/// placeholder meaning. Rows without a backticked key (separators, prose
/// cells) are kept as-is. No-op when the header is absent.
fn fix_table(text: &mut String, header: &str, keys: &[String], notes: &mut Vec<String>) {
    let lines: Vec<&str> = text.lines().collect();
    let Some(header_idx) = lines.iter().position(|l| l.trim().starts_with(header)) else {
        return;
    };
    let columns = lines[header_idx].matches('|').count().saturating_sub(1);
    let mut end = header_idx + 1;
    while end < lines.len() && lines[end].trim().starts_with('|') {
        end += 1;
    }

    let mut kept: Vec<String> = Vec::new();
    let mut present: Vec<String> = Vec::new();
    for line in &lines[header_idx + 1..end] {
        let first_cell = line
            .trim()
            .trim_start_matches('|')
            .split('|')
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        match first_cell
            .strip_prefix('`')
            .and_then(|c| c.strip_suffix('`'))
        {
            Some(key) if !keys.iter().any(|k| k == key) => {
                notes.push(format!("removed stale `{key}` row from `{header}` table"));
            }
            Some(key) => {
                present.push(key.to_string());
                kept.push((*line).to_string());
            }
            None => kept.push((*line).to_string()),
        }
    }
    for key in keys {
        if !present.contains(key) {
            let mut row = format!("| `{key}` |");
            for _ in 1..columns.max(2) {
                row.push_str(" *(fill in: undocumented)* |");
            }
            kept.push(row);
            notes.push(format!("added missing `{key}` row to `{header}` table"));
        }
    }

    let mut rebuilt: Vec<String> = Vec::with_capacity(lines.len());
    rebuilt.extend(lines[..=header_idx].iter().map(|l| l.to_string()));
    rebuilt.extend(kept);
    rebuilt.extend(lines[end..].iter().map(|l| l.to_string()));
    let mut joined = rebuilt.join("\n");
    if text.ends_with('\n') {
        joined.push('\n');
    }
    *text = joined;
}

/// Refreshes `(currently N)` version markers. The op-log marker is the
/// one preceded by `entry-format version `; every other occurrence is the
/// snapshot version.
fn fix_version_markers(text: &mut String, oplog: bool, version: u64, notes: &mut Vec<String>) {
    const PREFIX: &str = "entry-format version ";
    const MARKER: &str = "(currently ";
    let mut out = String::with_capacity(text.len());
    let mut rest = text.as_str();
    let mut changed = false;
    while let Some(at) = rest.find(MARKER) {
        let is_oplog = rest[..at].ends_with(PREFIX);
        out.push_str(&rest[..at + MARKER.len()]);
        rest = &rest[at + MARKER.len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty() && rest[digits.len()..].starts_with(')') && is_oplog == oplog {
            let current = format!("{version}");
            if digits != current {
                notes.push(format!(
                    "refreshed `{}(currently {digits})` to `(currently {current})`",
                    if oplog { PREFIX } else { "" }
                ));
                changed = true;
            }
            out.push_str(&current);
            rest = &rest[digits.len()..];
        }
    }
    out.push_str(rest);
    if changed {
        *text = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recover_allow_normalizes_common_malformations() {
        assert_eq!(
            recover_allow("(panic-freedom): fine"),
            Some(("panic-freedom".into(), "fine".into()))
        );
        assert_eq!(
            recover_allow(" ( panic-freedom )  fine"),
            Some(("panic-freedom".into(), "fine".into()))
        );
        assert_eq!(
            recover_allow(" panic-freedom: fine"),
            Some(("panic-freedom".into(), "fine".into()))
        );
        assert_eq!(recover_allow("(panic-freedom):"), None);
        assert_eq!(recover_allow("(Panic Freedom): x"), None);
        assert_eq!(recover_allow("no marker shape"), None);
    }

    #[test]
    fn fix_table_deletes_stale_and_appends_missing() {
        let mut text = "intro\n\n| Code | Meaning |\n| --- | --- |\n| `ok` | yes |\n| `gone` | old |\n\ntail\n".to_string();
        let keys = vec!["ok".to_string(), "new".to_string()];
        let mut notes = Vec::new();
        fix_table(&mut text, "| Code | Meaning |", &keys, &mut notes);
        assert!(!text.contains("`gone`"));
        assert!(text.contains("| `new` | *(fill in: undocumented)* |"));
        assert!(text.contains("| `ok` | yes |"));
        assert_eq!(notes.len(), 2);
        // Idempotent: a second pass plans nothing.
        let before = text.clone();
        let mut notes2 = Vec::new();
        fix_table(&mut text, "| Code | Meaning |", &keys, &mut notes2);
        assert_eq!(text, before);
        assert!(notes2.is_empty());
    }

    #[test]
    fn version_markers_pick_the_right_constant() {
        let mut text =
            "snapshot format (currently 4).\nentry-format version (currently 3).\n".to_string();
        let mut notes = Vec::new();
        fix_version_markers(&mut text, true, 1, &mut notes);
        fix_version_markers(&mut text, false, 5, &mut notes);
        assert!(text.contains("entry-format version (currently 1)"));
        assert!(text.contains("snapshot format (currently 5)"));
        assert_eq!(notes.len(), 2);
    }
}
