//! A small hand-rolled Rust lexer.
//!
//! The linter's rules are token-level — "an `unwrap` ident called as a
//! method", "an `unsafe` keyword without an adjacent `SAFETY:` comment" —
//! so the lexer's one job is to split source text into tokens *without*
//! being fooled by the places those words can appear as inert text: string
//! literals (including raw strings with any number of `#`s and byte/C
//! strings), char and byte literals, lifetimes, line comments, and nested
//! block comments. It does not parse: structure (brace matching, attribute
//! grouping, test-region tracking) is layered on top in [`crate::analysis`].
//!
//! Fidelity notes, deliberately modest:
//!
//! * Keywords are not distinguished from identifiers — rules match on
//!   token text.
//! * Multi-character punctuation (`::`, `=>`, `..=`) is emitted as single
//!   characters; rules match the sequence.
//! * Numeric literals are lexed loosely (enough to never leak into
//!   neighbouring tokens); their decimal value is recovered on demand via
//!   [`Token::integer_value`].

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers keep their `r#` prefix).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"`, `cr#"…"#`.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// A `// …` comment (text includes the slashes, excludes the newline).
    LineComment,
    /// A `/* … */` comment, possibly nested and multi-line.
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: a kind plus its byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// The 1-based line the token *ends* on (differs from `line` only for
    /// multi-line block comments and strings).
    pub fn end_line(&self, src: &str) -> u32 {
        self.line + self.text(src).bytes().filter(|&b| b == b'\n').count() as u32
    }

    /// The token's value as a non-negative integer, when it is a plain
    /// decimal [`TokenKind::Number`] (underscores and suffixes stripped).
    pub fn integer_value(&self, src: &str) -> Option<u64> {
        if self.kind != TokenKind::Number {
            return None;
        }
        let digits: String = self
            .text(src)
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '_')
            .filter(|c| c.is_ascii_digit())
            .collect();
        if digits.is_empty() {
            return None;
        }
        digits.parse().ok()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes an identifier run starting at the current position.
    fn ident_run(&mut self) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
    }

    /// Consumes a `"…"` body (opening quote already consumed), honouring
    /// `\\` and `\"` escapes. Unterminated strings run to EOF (the rules
    /// only care that no later text is misread as code).
    fn escaped_string_body(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body: the caller consumed the prefix through
    /// the opening quote; `hashes` is the number of `#`s that must follow a
    /// `"` to terminate it.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut matched = 0;
                while matched < hashes && self.peek(1 + matched) == Some(b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Consumes a char/byte-literal body (opening quote already consumed).
    fn char_body(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a (loose) numeric literal starting on a digit.
    fn number(&mut self) {
        let mut prev = 0u8;
        while let Some(b) = self.peek(0) {
            let take = if b.is_ascii_alphanumeric() || b == b'_' {
                true
            } else if b == b'.' {
                // A dot continues the number only when a digit follows
                // (`1.5` yes, `1..5` and `x.0.abs()` handled elsewhere).
                self.peek(1).is_some_and(|n| n.is_ascii_digit())
            } else {
                // An exponent sign: `1e-3`, `2E+7`.
                (b == b'+' || b == b'-') && (prev == b'e' || prev == b'E')
            };
            if !take {
                break;
            }
            prev = b;
            self.bump();
        }
    }
}

/// Lexes `src` into tokens. Whitespace is dropped; comments are kept (the
/// rules need them for `SAFETY:` and `LINT-ALLOW` detection). The lexer
/// never fails: malformed trailing input degrades to `Punct` tokens.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = lx.peek(0) {
        // Whitespace.
        if b.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let start = lx.pos;
        let line = lx.line;
        let kind = match b {
            b'/' if lx.peek(1) == Some(b'/') => {
                while lx.peek(0).is_some_and(|b| b != b'\n') {
                    lx.bump();
                }
                TokenKind::LineComment
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                lx.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            lx.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            lx.bump_n(2);
                        }
                        (Some(_), _) => lx.bump(),
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                lx.bump();
                lx.escaped_string_body();
                TokenKind::Str
            }
            b'\'' => {
                lx.bump();
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime; everything else is a char.
                if lx.peek(0).is_some_and(is_ident_start) && lx.peek(0) != Some(b'_') {
                    let probe = lx.pos;
                    let mut ahead = 0;
                    while lx
                        .src
                        .get(probe + ahead)
                        .copied()
                        .is_some_and(is_ident_continue)
                    {
                        ahead += 1;
                    }
                    if lx.src.get(probe + ahead) == Some(&b'\'') {
                        lx.bump_n(ahead + 1);
                        TokenKind::Char
                    } else {
                        lx.bump_n(ahead);
                        TokenKind::Lifetime
                    }
                } else {
                    lx.char_body();
                    TokenKind::Char
                }
            }
            b if b.is_ascii_digit() => {
                lx.number();
                TokenKind::Number
            }
            b if is_ident_start(b) => {
                // Check for literal prefixes before lexing a plain ident:
                // r"…", r#"…"#, r#ident, b"…", b'…', br#"…"#, c"…", cr#"…"#.
                let mut run = 0usize;
                while lx.peek(run).is_some_and(is_ident_continue) {
                    run += 1;
                }
                let word = &lx.src[lx.pos..lx.pos + run];
                let after = lx.peek(run);
                match (word, after) {
                    (b"r" | b"br" | b"cr", Some(b'#')) => {
                        let mut hashes = 0usize;
                        while lx.peek(run + hashes) == Some(b'#') {
                            hashes += 1;
                        }
                        if lx.peek(run + hashes) == Some(b'"') {
                            lx.bump_n(run + hashes + 1);
                            lx.raw_string_body(hashes);
                            TokenKind::Str
                        } else if word == b"r" && hashes == 1 {
                            // Raw identifier `r#ident`.
                            lx.bump_n(2);
                            lx.ident_run();
                            TokenKind::Ident
                        } else {
                            lx.bump_n(run);
                            TokenKind::Ident
                        }
                    }
                    (b"r" | b"b" | b"br" | b"c" | b"cr", Some(b'"')) => {
                        lx.bump_n(run + 1);
                        if word == b"r" || word == b"br" || word == b"cr" {
                            lx.raw_string_body(0);
                        } else {
                            lx.escaped_string_body();
                        }
                        TokenKind::Str
                    }
                    (b"b", Some(b'\'')) => {
                        lx.bump_n(run + 1);
                        lx.char_body();
                        TokenKind::Char
                    }
                    _ => {
                        lx.bump_n(run);
                        TokenKind::Ident
                    }
                }
            }
            _ => {
                // One punctuation character (consume a whole UTF-8 scalar
                // so multi-byte garbage cannot desync the byte walk).
                let len = src[lx.pos..].chars().next().map_or(1, char::len_utf8);
                lx.bump_n(len);
                TokenKind::Punct
            }
        };
        tokens.push(Token {
            kind,
            start,
            end: lx.pos,
            line,
        });
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_text(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            kinds_and_text("let x = foo.unwrap();"),
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Ident, "foo".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Ident, "unwrap".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
        assert_eq!(
            kinds_and_text("1_000u64 0xff 1.5e-3 1..5"),
            vec![
                (TokenKind::Number, "1_000u64".into()),
                (TokenKind::Number, "0xff".into()),
                (TokenKind::Number, "1.5e-3".into()),
                (TokenKind::Number, "1".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Number, "5".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_content() {
        // The word `unwrap` inside string literals of every flavour must
        // not produce an Ident token.
        let sources = [
            r#"let s = "call unwrap() here";"#,
            r##"let s = r"raw unwrap()";"##,
            r###"let s = r#"raw " quoted unwrap()"#;"###,
            r###"let s = r##"nested "# unwrap()"##;"###,
            r#"let s = b"bytes unwrap()";"#,
            r###"let s = br#"raw bytes unwrap()"#;"###,
            r#"let s = "escaped \" unwrap()";"#,
            r#"let s = c"c-string unwrap()";"#,
        ];
        for src in sources {
            let idents: Vec<_> = lex(src)
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text(src).to_string())
                .collect();
            assert_eq!(idents, vec!["let", "s"], "leaked from `{src}`");
            assert_eq!(
                lex(src).iter().filter(|t| t.kind == TokenKind::Str).count(),
                1,
                "string not lexed as one token in `{src}`"
            );
        }
    }

    #[test]
    fn comments_hide_their_content_and_nest() {
        let src = "/* outer /* unwrap() */ still comment */ code /* two */";
        let toks = kinds_and_text(src);
        assert_eq!(
            toks,
            vec![
                (
                    TokenKind::BlockComment,
                    "/* outer /* unwrap() */ still comment */".into()
                ),
                (TokenKind::Ident, "code".into()),
                (TokenKind::BlockComment, "/* two */".into()),
            ]
        );
        let src = "x // trailing unwrap()\ny";
        let toks = kinds_and_text(src);
        assert_eq!(
            toks[1],
            (TokenKind::LineComment, "// trailing unwrap()".into())
        );
        assert_eq!(toks[2], (TokenKind::Ident, "y".into()));
    }

    #[test]
    fn char_byte_and_lifetime_disambiguation() {
        assert_eq!(
            kinds_and_text(r"'a' b'x' '\n' '\'' 'static &'a str"),
            vec![
                (TokenKind::Char, "'a'".into()),
                (TokenKind::Char, "b'x'".into()),
                (TokenKind::Char, r"'\n'".into()),
                (TokenKind::Char, r"'\''".into()),
                (TokenKind::Lifetime, "'static".into()),
                (TokenKind::Punct, "&".into()),
                (TokenKind::Lifetime, "'a".into()),
                (TokenKind::Ident, "str".into()),
            ]
        );
        // A char literal containing a quote-adjacent word: `'"'` then text.
        assert_eq!(
            kinds_and_text(r#"'"' x"#),
            vec![
                (TokenKind::Char, "'\"'".into()),
                (TokenKind::Ident, "x".into()),
            ]
        );
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert_eq!(
            kinds_and_text("r#type r#fn plain"),
            vec![
                (TokenKind::Ident, "r#type".into()),
                (TokenKind::Ident, "r#fn".into()),
                (TokenKind::Ident, "plain".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_and_end_lines() {
        let src = "a\nb\n/* c\nd */ e\n\"s1\ns2\" f";
        let toks = lex(src);
        let by_text: Vec<(String, u32, u32)> = toks
            .iter()
            .map(|t| (t.text(src).to_string(), t.line, t.end_line(src)))
            .collect();
        assert_eq!(by_text[0], ("a".into(), 1, 1));
        assert_eq!(by_text[1], ("b".into(), 2, 2));
        assert_eq!(by_text[2], ("/* c\nd */".into(), 3, 4));
        assert_eq!(by_text[3], ("e".into(), 4, 4));
        assert_eq!(by_text[4], ("\"s1\ns2\"".into(), 5, 6));
        assert_eq!(by_text[5], ("f".into(), 6, 6));
    }

    #[test]
    fn integer_values_parse() {
        let src = "4 1_000 0xff 2.5 SNAPSHOT_VERSION 9u64";
        let toks = lex(src);
        let vals: Vec<Option<u64>> = toks.iter().map(|t| t.integer_value(src)).collect();
        assert_eq!(vals[0], Some(4));
        assert_eq!(vals[1], Some(1000));
        // Hex lexes as one token; only its leading `0` parses — the rules
        // that consume integer_value only deal in small decimal constants.
        assert_eq!(vals[2], Some(0));
        assert_eq!(vals[3], Some(2)); // leading digits of a float
        assert_eq!(vals[4], None); // ident
        assert_eq!(vals[5], Some(9));
    }

    #[test]
    fn unterminated_tails_do_not_loop() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b'"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "no tokens for `{src}`");
        }
    }
}
