//! The linter's own acceptance gate: the real workspace must be clean.
//!
//! CI runs `mithra-lint check` as a required job; this test enforces the
//! same invariant from inside `cargo test`, so a violation merged without
//! CI (or a rule regression that stops findings from surfacing) still
//! fails the suite.

use mithra_lint::check_workspace;
use std::path::Path;

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let report = check_workspace(root).expect("load workspace");
    assert!(
        report.files_scanned > 50,
        "workspace discovery looks broken: only {} files",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  [{}] {}:{} {}", f.rule, f.file, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn real_workspace_rules_all_ran() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = check_workspace(root).expect("load workspace");
    // Every rule must appear in the summary — a rule silently dropped
    // from the driver would otherwise pass unnoticed.
    let names: Vec<&str> = report.rules.iter().map(|r| r.rule).collect();
    for expected in mithra_lint::rules::RULE_NAMES {
        assert!(
            names.contains(&expected),
            "rule `{expected}` missing from summary"
        );
    }
}
