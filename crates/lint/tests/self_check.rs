//! The linter's own acceptance gate: the real workspace must be clean.
//!
//! CI runs `mithra-lint check` as a required job; this test enforces the
//! same invariant from inside `cargo test`, so a violation merged without
//! CI (or a rule regression that stops findings from surfacing) still
//! fails the suite.

use mithra_lint::check_workspace;
use std::path::Path;

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let report = check_workspace(root).expect("load workspace");
    assert!(
        report.files_scanned > 50,
        "workspace discovery looks broken: only {} files",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  [{}] {}:{} {}", f.rule, f.file, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn real_workspace_rules_all_ran() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = check_workspace(root).expect("load workspace");
    // Every rule must appear in the summary — a rule silently dropped
    // from the driver would otherwise pass unnoticed.
    let names: Vec<&str> = report.rules.iter().map(|r| r.rule).collect();
    for expected in mithra_lint::rules::RULE_NAMES {
        assert!(
            names.contains(&expected),
            "rule `{expected}` missing from summary"
        );
    }
}

#[test]
fn real_workspace_lock_allows_are_counted() {
    // The service deliberately holds the oplog lock across its own
    // appends (that lock is what serializes the log) — each such site
    // carries a counted allow marker, so the guard-scope analysis must
    // both see the blocking call and see it suppressed. Zero allows
    // would mean the rule went blind, not that the code got cleaner.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = check_workspace(root).expect("load workspace");
    let row = report
        .rules
        .iter()
        .find(|r| r.rule == "lock-across-blocking")
        .expect("lock-across-blocking summary row");
    assert_eq!(row.findings, 0);
    assert!(
        row.allows >= 1,
        "expected counted lock-across-blocking allows, got {}",
        row.allows
    );
}

#[test]
fn real_workspace_is_at_the_fix_point() {
    // CI runs `mithra-lint fix --check`; enforce the same invariant from
    // inside `cargo test`: the committed tree plans zero rewrites.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let ws = mithra_lint::Workspace::load(root).expect("load workspace");
    let fixes = mithra_lint::fix::plan(&ws);
    assert!(
        fixes.is_empty(),
        "pending fixes:\n{}",
        fixes
            .iter()
            .flat_map(|f| f
                .notes
                .iter()
                .map(move |n| format!("  {}: {n}", f.rel_path)))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
