//! Fixture tests: each rule must fire exactly where a seeded violation
//! sits, and stay quiet on a conforming workspace.
//!
//! Every test materializes a miniature workspace under a temp directory —
//! a hot-path file, a `protocol.rs`, a `snapshot.rs`, and a README — then
//! mutates one facet and asserts the resulting findings.

use mithra_lint::{check_workspace, Report};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A miniature workspace on disk, deleted on drop.
struct Fixture {
    root: PathBuf,
}

static COUNTER: AtomicUsize = AtomicUsize::new(0);

impl Fixture {
    fn new() -> Fixture {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let root =
            std::env::temp_dir().join(format!("mithra-lint-fixture-{}-{n}", std::process::id()));
        fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    /// Writes `content` at `rel` (creating parent dirs) and returns self
    /// for chaining.
    fn file(self, rel: &str, content: &str) -> Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("rel has a parent")).expect("create parent");
        fs::write(path, content).expect("write fixture file");
        self
    }

    fn check(&self) -> Report {
        check_workspace(&self.root).expect("check fixture workspace")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// A conforming `protocol.rs`: two error codes, two ops, all constructed
/// and test-asserted.
const PROTOCOL_OK: &str = r#"
pub enum ErrorCode { Parse, Internal }
impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Internal => "internal",
        }
    }
}
pub fn classify(bad: bool) -> ErrorCode {
    if bad { ErrorCode::Parse } else { ErrorCode::Internal }
}
pub fn parse_request(op: &str) -> u8 {
    match op {
        "insert" => 1,
        "stats" => 2,
        _ => 0,
    }
}
#[cfg(test)]
mod tests {
    #[test]
    fn wire_strings() {
        assert_eq!(super::classify(true).as_str(), "parse");
        let resp = "{\"ok\":false,\"code\":\"internal\"}";
        assert!(resp.contains("\"code\":\"internal\""));
        assert_eq!(super::parse_request("insert"), 1);
        let _ = "{\"op\":\"insert\"}";
        let _ = "{\"op\":\"stats\"}";
    }
}
"#;

/// A conforming `snapshot.rs`: version 3, restorable from 1, gates for
/// the two upgrades, writer interpolates the constant.
const SNAPSHOT_OK: &str = r#"
pub const SNAPSHOT_VERSION: u64 = 3;
pub const SNAPSHOT_MIN_VERSION: u64 = 1;
pub fn restore(version: u64) -> u8 {
    let mut format = 0;
    if version >= 2 { format += 1; }
    if version >= 3 { format += 1; }
    format
}
pub fn header() -> String {
    format!("{{\"version\":{SNAPSHOT_VERSION}}}")
}
"#;

/// A conforming README with both drift-checked tables.
const README_OK: &str = "\
# fixture

| Op | Request fields | Success response fields |
| --- | --- | --- |
| `insert` | rows | ok |
| `stats` | — | ok |

| Code | Meaning |
| --- | --- |
| `parse` | malformed request |
| `internal` | handler bug |

Snapshots carry an integer `\"version\"` (currently 3).
";

/// A hot-path file with no violations.
const EVENT_OK: &str = r#"
pub fn tick(input: Option<u8>) -> u8 {
    input.unwrap_or(0)
}
"#;

fn conforming() -> Fixture {
    Fixture::new()
        .file("crates/service/src/protocol.rs", PROTOCOL_OK)
        .file("crates/service/src/snapshot.rs", SNAPSHOT_OK)
        .file("crates/service/src/event.rs", EVENT_OK)
        .file("README.md", README_OK)
}

fn rule_findings<'r>(report: &'r Report, rule: &str) -> Vec<&'r mithra_lint::rules::Finding> {
    report.findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn conforming_fixture_is_clean() {
    let report = conforming().check();
    assert!(report.clean(), "expected clean, got: {:?}", report.findings);
    assert_eq!(report.files_scanned, 3);
}

#[test]
fn panic_freedom_fires_on_each_banned_form() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
pub fn tick(input: Option<u8>) -> u8 {
    let a = input.unwrap();
    let b = input.expect("present");
    if a + b > 9 { panic!("overflow"); }
    if a == 1 { todo!() }
    if b == 2 { unimplemented!() }
    a
}
"#,
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "panic-freedom");
    assert_eq!(findings.len(), 5, "{:?}", report.findings);
    assert_eq!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![3, 4, 5, 6, 7]
    );
    assert!(findings
        .iter()
        .all(|f| f.file == "crates/service/src/event.rs"));
}

#[test]
fn panic_freedom_skips_strings_comments_and_tests() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
pub fn tick() -> &'static str {
    // a comment may say unwrap() freely
    /* so may a block comment: expect("x") */
    let s = r"raw string with unwrap() inside";
    let t = "escaped \" unwrap() too";
    let _ = (s, t);
    "panic!(no)"
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Option<u8> = Some(1);
        v.unwrap();
    }
}
"#,
    );
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
}

#[test]
fn panic_freedom_ignores_cold_paths() {
    // The same unwrap in a non-hot-path file is not a finding.
    let fixture = conforming().file(
        "crates/core/src/solver.rs",
        "pub fn go(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
}

#[test]
fn lint_allow_suppresses_and_is_counted() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
pub fn tick(input: Option<u8>) -> u8 {
    // LINT-ALLOW(panic-freedom): fixture-justified
    input.unwrap()
}
pub fn tock(input: Option<u8>) -> u8 {
    input.expect("same line") // LINT-ALLOW(panic-freedom): trailing form
}
"#,
    );
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
    let summary = report
        .rules
        .iter()
        .find(|r| r.rule == "panic-freedom")
        .expect("summary row");
    assert_eq!(summary.allows, 2);
    assert_eq!(summary.findings, 0);
}

#[test]
fn unused_and_malformed_allows_are_findings() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
// LINT-ALLOW(panic-freedom): nothing here needs it
pub fn tick() -> u8 { 0 }
// LINT-ALLOW(panic-freedom) missing the colon
pub fn tock() -> u8 { 1 }
// LINT-ALLOW(no-such-rule): unknown rule name
pub fn tuck() -> u8 { 2 }
"#,
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "lint-allow");
    assert_eq!(findings.len(), 3, "{:?}", report.findings);
    assert!(findings.iter().any(|f| f.message.contains("unused")));
    assert!(findings.iter().any(|f| f.message.contains("malformed")));
    assert!(findings.iter().any(|f| f.message.contains("unknown rule")));
}

#[test]
fn unsafe_audit_requires_adjacent_safety() {
    let fixture = conforming().file(
        "crates/service/src/net/mod.rs",
        r#"
pub fn good(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid (fixture).
    unsafe { *p }
}
pub fn bad(p: *const u8) -> u8 {
    unsafe { *p }
}
pub fn stale(p: *const u8) -> u8 {
    // SAFETY: too far away — a statement intervenes.
    let _x = 1;
    unsafe { *p }
}
"#,
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "unsafe-audit");
    assert_eq!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![7, 12],
        "{:?}",
        report.findings
    );
}

#[test]
fn unsafe_audit_accepts_multiline_safety_runs() {
    let fixture = conforming().file(
        "crates/service/src/net/mod.rs",
        r#"
pub fn good(p: *const u8) -> u8 {
    // SAFETY: the marker sits on the first line of a run
    // whose later lines elaborate on the invariant.
    unsafe { *p }
}
"#,
    );
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
}

#[test]
fn error_codes_catch_dropped_readme_row() {
    let fixture = conforming().file(
        "README.md",
        &README_OK.replace("| `internal` | handler bug |\n", ""),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "error-codes");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("`internal`"));
    assert!(findings[0].message.contains("README"));
}

#[test]
fn error_codes_catch_stale_readme_row() {
    let fixture = conforming().file(
        "README.md",
        &README_OK.replace(
            "| `internal` | handler bug |",
            "| `internal` | handler bug |\n| `retired` | no longer exists |",
        ),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "error-codes");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("`retired`"));
    assert!(findings[0].line > 0, "stale rows carry the README line");
}

#[test]
fn error_codes_catch_unconstructed_and_untested() {
    // Remove the production constructor and the test assertions for
    // `internal`: two findings.
    let fixture = conforming().file(
        "crates/service/src/protocol.rs",
        &PROTOCOL_OK
            .replace(
                "if bad { ErrorCode::Parse } else { ErrorCode::Internal }",
                "let _ = bad; ErrorCode::Parse",
            )
            .replace(
                "let resp = \"{\\\"ok\\\":false,\\\"code\\\":\\\"internal\\\"}\";",
                "let resp = \"\";",
            )
            .replace(
                "assert!(resp.contains(\"\\\"code\\\":\\\"internal\\\"\"));",
                "let _ = resp;",
            ),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "error-codes");
    assert_eq!(findings.len(), 2, "{:?}", report.findings);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("never constructed") && f.message.contains("Internal")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("not asserted") && f.message.contains("`internal`")));
}

#[test]
fn protocol_ops_catch_dropped_readme_row_and_missing_test() {
    let fixture = conforming()
        .file(
            "README.md",
            &README_OK.replace("| `stats` | — | ok |\n", ""),
        )
        .file(
            "crates/service/src/protocol.rs",
            &PROTOCOL_OK.replace("let _ = \"{\\\"op\\\":\\\"stats\\\"}\";", ""),
        );
    let report = fixture.check();
    let findings = rule_findings(&report, "protocol-ops");
    assert_eq!(findings.len(), 2, "{:?}", report.findings);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`stats`") && f.message.contains("README")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`stats`") && f.message.contains("not exercised")));
}

#[test]
fn protocol_ops_catch_stale_readme_row() {
    let fixture = conforming().file(
        "README.md",
        &README_OK.replace(
            "| `stats` | — | ok |",
            "| `stats` | — | ok |\n| `vacuum` | — | ok |",
        ),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "protocol-ops");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("`vacuum`"));
}

#[test]
fn snapshot_version_catches_bump_without_gate_and_stale_readme() {
    // Bump the constant without teaching restore about version 4 and
    // without refreshing the README sentence: two findings.
    let fixture = conforming().file(
        "crates/service/src/snapshot.rs",
        &SNAPSHOT_OK.replace("SNAPSHOT_VERSION: u64 = 3", "SNAPSHOT_VERSION: u64 = 4"),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "snapshot-version");
    assert_eq!(findings.len(), 2, "{:?}", report.findings);
    assert!(findings.iter().any(|f| f.message.contains("restore gates")));
    assert!(findings.iter().any(|f| f.message.contains("(currently 4)")));
}

#[test]
fn snapshot_version_catches_hardcoded_writer_digit() {
    let fixture = conforming().file(
        "crates/service/src/snapshot.rs",
        &SNAPSHOT_OK.replace(
            "format!(\"{{\\\"version\\\":{SNAPSHOT_VERSION}}}\")",
            "String::from(\"{\\\"version\\\":3}\")",
        ),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "snapshot-version");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("hardcodes"));
    assert!(findings[0].line > 0);
}

#[test]
fn cli_exits_zero_on_clean_and_one_on_violations() {
    use std::process::Command;
    let clean = conforming();
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["check", "--root"])
        .arg(&clean.root)
        .output()
        .expect("run mithra-lint");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"summary\""), "{stdout}");
    assert!(stdout.contains("\"files_scanned\":3"), "{stdout}");

    let dirty = conforming().file(
        "crates/service/src/event.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["check", "--root"])
        .arg(&dirty.root)
        .output()
        .expect("run mithra-lint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let first = stdout.lines().next().expect("a finding line");
    assert!(first.starts_with("{\"rule\":\"panic-freedom\""), "{first}");
    assert!(first.contains("\"line\":1"), "{first}");

    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .arg("frobnicate")
        .output()
        .expect("run mithra-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

// ---- multi-pass fixtures: concurrency rules ----

/// A hot-path file where a mutex guard is live across an fsync: the
/// canonical `lock-across-blocking` violation.
const LOCK_ACROSS_FSYNC: &str = r#"
use std::sync::Mutex;
pub struct Shared { state: Mutex<u8> }
pub fn tick(shared: &Shared, file: &mut std::fs::File) {
    let guard = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    let _ = file.sync_all();
    let _ = *guard;
}
"#;

#[test]
fn lock_blocking_fires_on_guard_across_fsync() {
    let fixture = conforming().file("crates/service/src/event.rs", LOCK_ACROSS_FSYNC);
    let report = fixture.check();
    let findings = rule_findings(&report, "lock-across-blocking");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert_eq!(findings[0].line, 6);
    assert!(findings[0]
        .message
        .contains("guard `guard` of lock `state`"));
    assert!(findings[0].message.contains("`.sync_all()`"));
}

#[test]
fn lock_blocking_fires_transitively_via_the_symbol_table() {
    // The blocking call is one hop away: the guard scope calls a
    // workspace fn whose body fsyncs.
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
use std::sync::Mutex;
pub struct Shared { state: Mutex<u8> }
fn persist(file: &mut std::fs::File) {
    let _ = file.sync_all();
}
pub fn tick(shared: &Shared, file: &mut std::fs::File) {
    let guard = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    persist(file);
    let _ = *guard;
}
"#,
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "lock-across-blocking");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("`persist()`"));
    assert!(findings[0].message.contains("blocks via"));
}

#[test]
fn lock_blocking_fires_inside_the_engine_wrapper() {
    // `with_engine_contained(…)`'s argument span is an implicit live
    // `engine`-lock scope.
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
pub fn apply(file: &mut std::fs::File) -> u8 {
    with_engine_contained(|engine| {
        let _ = file.sync_all();
        engine
    })
}
"#,
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "lock-across-blocking");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("with_engine_contained"));
}

#[test]
fn lock_blocking_quiet_after_early_drop_and_in_cold_files() {
    // `drop(guard)` ends the live range before the fsync.
    let dropped = conforming().file(
        "crates/service/src/event.rs",
        r#"
use std::sync::Mutex;
pub struct Shared { state: Mutex<u8> }
pub fn tick(shared: &Shared, file: &mut std::fs::File) -> u8 {
    let guard = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    let value = *guard;
    drop(guard);
    let _ = file.sync_all();
    value
}
"#,
    );
    let report = dropped.check();
    assert!(report.clean(), "{:?}", report.findings);

    // The same guard-across-fsync shape in a non-hot-path file is fine.
    let cold = conforming().file("crates/core/src/persist.rs", LOCK_ACROSS_FSYNC);
    let report = cold.check();
    assert!(report.clean(), "{:?}", report.findings);
}

#[test]
fn lock_blocking_allow_suppresses_and_is_counted() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
use std::sync::Mutex;
pub struct Shared { state: Mutex<u8> }
pub fn tick(shared: &Shared, file: &mut std::fs::File) {
    let guard = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    // LINT-ALLOW(lock-across-blocking): fixture-justified
    let _ = file.sync_all();
    let _ = *guard;
}
"#,
    );
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
    let summary = report
        .rules
        .iter()
        .find(|r| r.rule == "lock-across-blocking")
        .expect("summary row");
    assert_eq!(summary.allows, 1);
}

#[test]
fn lock_order_fires_on_cycle_and_self_edge() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
use std::sync::Mutex;
pub struct Shared { alpha: Mutex<u8>, beta: Mutex<u8> }
pub fn forward(shared: &Shared) {
    let a = shared.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let b = shared.beta.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (*a, *b);
}
pub fn backward(shared: &Shared) {
    let b = shared.beta.lock().unwrap_or_else(|e| e.into_inner());
    let a = shared.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (*a, *b);
}
pub fn reenter(shared: &Shared) {
    let a = shared.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let again = shared.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (*a, *again);
}
"#,
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "lock-order");
    assert_eq!(findings.len(), 2, "{:?}", report.findings);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("self-deadlock") && f.message.contains("`alpha`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("cycle") && f.message.contains("alpha → beta → alpha")));
}

#[test]
fn lock_order_quiet_on_consistent_order() {
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
use std::sync::Mutex;
pub struct Shared { alpha: Mutex<u8>, beta: Mutex<u8> }
pub fn first(shared: &Shared) {
    let a = shared.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let b = shared.beta.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (*a, *b);
}
pub fn second(shared: &Shared) {
    let a = shared.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let b = shared.beta.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (*a, *b);
}
"#,
    );
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
}

// ---- multi-pass fixtures: wire-format drift rules ----

/// A conforming op log: flat versioned writer, symmetric reader behind
/// the version gate, literal-line / torn-tail / paging test anchors.
const OPLOG_OK: &str = r#"
pub const OPLOG_VERSION: u64 = 1;
pub const REPLICATE_BATCH_LIMIT: u64 = 4;
pub struct LogEntry { pub seq: u64 }
impl LogEntry {
    pub fn to_line(&self) -> String {
        format!(
            "{{\"v\":{OPLOG_VERSION},\"seq\":{},\"op\":\"insert\",\"rows\":[]}}",
            self.seq
        )
    }
    pub fn from_json(json: &Json) -> Option<LogEntry> {
        let version = json.get("v")?;
        if version > OPLOG_VERSION {
            return None;
        }
        let seq = json.get("seq")?;
        let _rows = json.get("rows")?;
        match json.get("op")? {
            "insert" => Some(LogEntry { seq }),
            _ => None,
        }
    }
}
#[cfg(test)]
mod tests {
    #[test]
    fn literal_entry_line() {
        let line = "{\"v\":1,\"seq\":7,\"op\":\"insert\",\"rows\":[]}";
        assert!(line.contains("\"seq\":7"));
    }
    #[test]
    fn torn_tail_is_dropped() {
        let torn = "{\"v\":1,\"se";
        let _ = torn;
    }
    #[test]
    fn paging_respects_the_cap() {
        let _ = (entries_from, REPLICATE_BATCH_LIMIT);
    }
}
"#;

/// README additions documenting the fixture op log.
const OPLOG_README_EXTRA: &str = "\
Entries are one JSON object per line:

    {\"v\":1,\"seq\":7,\"op\":\"insert\",\"rows\":[]}

| Entry field | Meaning |
| --- | --- |
| `v` | entry-format version (currently 1) |
| `seq` | sequence number |
| `op` | mutation name |
| `rows` | payload |

A torn final line is dropped on replay.
";

fn conforming_oplog() -> Fixture {
    conforming()
        .file("crates/service/src/oplog.rs", OPLOG_OK)
        .file("README.md", &format!("{README_OK}\n{OPLOG_README_EXTRA}"))
}

#[test]
fn conforming_oplog_fixture_is_clean() {
    let report = conforming_oplog().check();
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.files_scanned, 4);
}

#[test]
fn oplog_format_fires_on_reader_writer_drift() {
    // The reader stops reading `rows` and loses the version gate.
    let fixture = conforming_oplog().file(
        "crates/service/src/oplog.rs",
        &OPLOG_OK
            .replace("let _rows = json.get(\"rows\")?;", "let _rows = 0;")
            .replace("if version > OPLOG_VERSION {", "if version > 9000 {"),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "oplog-format");
    assert_eq!(findings.len(), 2, "{:?}", report.findings);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`rows`") && f.message.contains("never reads")));
    assert!(findings.iter().any(|f| f.message.contains("refusal gate")));
}

#[test]
fn oplog_format_fires_on_stale_readme() {
    // A stale table row, a wrong version marker, and no torn-tail note.
    let fixture = conforming_oplog().file(
        "README.md",
        &format!(
            "{README_OK}\n{}",
            OPLOG_README_EXTRA
                .replace(
                    "| `rows` | payload |",
                    "| `rows` | payload |\n| `crc` | checksum |"
                )
                .replace("(currently 1)", "(currently 2)")
                .replace("A torn final line is dropped on replay.\n", "")
        ),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "oplog-format");
    assert_eq!(findings.len(), 3, "{:?}", report.findings);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`crc`") && f.line > 0));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("entry-format version (currently 1)")));
    assert!(findings.iter().any(|f| f.message.contains("torn-tail")));
}

/// A conforming leader: the `Request::Replicate` arm references the
/// batch-limit constant, clamps the cursor, and refuses stale history.
const SERVER_OK: &str = r#"
pub enum Request { Replicate { from_seq: u64 } }
pub fn dispatch(req: Request, log: &OpLog) -> String {
    match req {
        Request::Replicate { from_seq } => {
            let start = from_seq.max(1);
            if start < log.first_seq() {
                return error(BadRequest);
            }
            let (entries, next) = log.entries_from(start, REPLICATE_BATCH_LIMIT);
            let _ = entries;
            format!(
                "{{\"op\":\"replicate\",\"from\":{start},\"last_seq\":9,\"count\":1,\"entries\":[],\"next\":{next}}}"
            )
        }
    }
}
"#;

/// A conforming follower: sends the replicate request, reads only fields
/// the leader sends (plus the shared envelope).
const REPLICA_OK: &str = r#"
pub fn fetch_tcp(from: u64) -> String {
    let request = format!("{{\"op\":\"replicate\",\"from\":{from}}}");
    let ok = response.get("ok");
    let entries = response.get("entries");
    let next = response.get("next");
    let last_seq = response.get("last_seq");
    let _ = (ok, entries, next, last_seq);
    request
}
"#;

/// README additions documenting the fixture replicate protocol.
const REPLICATE_README_EXTRA: &str = "\
| Replicate field | Meaning |
| --- | --- |
| `op` | echoes `replicate` |
| `from` | the cursor served |
| `last_seq` | the log tail |
| `count` | entries in this batch |
| `entries` | the entry lines |
| `next` | cursor for the next call |
";

fn replication_readme() -> String {
    let ops = README_OK.replace(
        "| `stats` | — | ok |",
        "| `stats` | — | ok |\n| `replicate` | from (`0 = beginning`) | entries (≤4), next |",
    );
    format!("{ops}\n{OPLOG_README_EXTRA}\n{REPLICATE_README_EXTRA}")
}

fn conforming_replication() -> Fixture {
    conforming_oplog()
        .file(
            "crates/service/src/protocol.rs",
            &PROTOCOL_OK
                .replace("\"stats\" => 2,", "\"stats\" => 2,\n        \"replicate\" => 3,")
                .replace(
                    "let _ = \"{\\\"op\\\":\\\"stats\\\"}\";",
                    "let _ = \"{\\\"op\\\":\\\"stats\\\"}\";\n        let _ = \"{\\\"op\\\":\\\"replicate\\\"}\";",
                ),
        )
        .file("crates/service/src/server.rs", SERVER_OK)
        .file("crates/service/src/replica.rs", REPLICA_OK)
        .file("README.md", &replication_readme())
}

#[test]
fn conforming_replication_fixture_is_clean() {
    let report = conforming_replication().check();
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.files_scanned, 6);
}

#[test]
fn replicate_protocol_fires_on_arm_regressions() {
    // Re-hardcode the cap and drop the cursor clamp: two findings.
    let fixture = conforming_replication().file(
        "crates/service/src/server.rs",
        &SERVER_OK
            .replace("from_seq.max(1)", "from_seq")
            .replace("REPLICATE_BATCH_LIMIT", "4"),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "replicate-protocol");
    assert_eq!(findings.len(), 2, "{:?}", report.findings);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("REPLICATE_BATCH_LIMIT")));
    assert!(findings.iter().any(|f| f.message.contains("cursor clamp")));
}

#[test]
fn replicate_protocol_fires_on_follower_extra_read() {
    let fixture = conforming_replication().file(
        "crates/service/src/replica.rs",
        &REPLICA_OK.replace(
            "let last_seq = response.get(\"last_seq\");",
            "let last_seq = response.get(\"last_seq\");\n    let bogus = response.get(\"checksum\");\n    let _ = bogus;",
        ),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "replicate-protocol");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert!(findings[0].message.contains("`checksum`"));
    assert!(findings[0].message.contains("never sends"));
}

#[test]
fn replicate_protocol_fires_on_stale_readme_table() {
    let fixture = conforming_replication().file(
        "README.md",
        &replication_readme()
            .replace("| `count` | entries in this batch |\n", "")
            .replace("entries (≤4), next", "entries, next"),
    );
    let report = fixture.check();
    let findings = rule_findings(&report, "replicate-protocol");
    assert_eq!(findings.len(), 2, "{:?}", report.findings);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`count`") && f.message.contains("no row")));
    assert!(findings.iter().any(|f| f.message.contains("batch cap")));
}

// ---- fix mode ----

#[test]
fn fix_normalizes_malformed_allow_and_is_idempotent() {
    use std::process::Command;
    let fixture = conforming().file(
        "crates/service/src/event.rs",
        r#"
pub fn tick(input: Option<u8>) -> u8 {
    // LINT-ALLOW panic-freedom: fixture-justified
    input.expect("present")
}
"#,
    );
    // Before the fix: the marker is malformed (a finding) and does not
    // suppress the `.expect()` (another finding).
    let report = fixture.check();
    assert!(!rule_findings(&report, "lint-allow").is_empty());
    assert!(!rule_findings(&report, "panic-freedom").is_empty());

    // Dry run: exit 1, names the rewrite, touches nothing.
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["fix", "--check", "--root"])
        .arg(&fixture.root)
        .output()
        .expect("run mithra-lint fix --check");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("normalized to `LINT-ALLOW(panic-freedom): fixture-justified`"),
        "{stdout}"
    );
    assert!(!fixture.check().clean(), "dry run must not rewrite");

    // Apply: the canonical marker now suppresses, and the workspace is
    // at the fixed point (a second fix plans nothing).
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["fix", "--root"])
        .arg(&fixture.root)
        .output()
        .expect("run mithra-lint fix");
    assert!(out.status.success(), "{out:?}");
    let report = fixture.check();
    assert!(report.clean(), "{:?}", report.findings);
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["fix", "--check", "--root"])
        .arg(&fixture.root)
        .output()
        .expect("run mithra-lint fix --check again");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("nothing to fix"));
}

#[test]
fn fix_regenerates_readme_table_rows() {
    let fixture = conforming().file(
        "README.md",
        &README_OK.replace("| `internal` | handler bug |\n", "| `retired` | gone |\n"),
    );
    assert!(!fixture.check().clean());

    let ws = mithra_lint::Workspace::load(&fixture.root).expect("load fixture");
    let fixes = mithra_lint::fix::plan(&ws);
    assert_eq!(fixes.len(), 1, "one README rewrite expected");
    assert!(fixes[0]
        .notes
        .iter()
        .any(|n| n.contains("removed stale `retired` row")));
    assert!(fixes[0]
        .notes
        .iter()
        .any(|n| n.contains("added missing `internal` row")));
    mithra_lint::fix::apply(&ws, &fixes).expect("apply fixes");

    let readme = fs::read_to_string(fixture.root.join("README.md")).expect("read back");
    assert!(!readme.contains("`retired`"));
    assert!(readme.contains("| `internal` |"));

    // Idempotent: re-planning on the rewritten tree is empty, and the
    // error-codes rule is satisfied again.
    let ws = mithra_lint::Workspace::load(&fixture.root).expect("reload fixture");
    assert!(mithra_lint::fix::plan(&ws).is_empty());
    let report = fixture.check();
    assert!(
        rule_findings(&report, "error-codes").is_empty(),
        "{:?}",
        report.findings
    );
}

// ---- CLI: --rule and --format ----

#[test]
fn cli_rule_filter_restricts_the_run() {
    use std::process::Command;
    let dirty = conforming().file(
        "crates/service/src/event.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    // The violated rule still fails…
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["check", "--rule", "panic-freedom", "--root"])
        .arg(&dirty.root)
        .output()
        .expect("run filtered check");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout
        .lines()
        .next()
        .expect("a finding")
        .contains("panic-freedom"));

    // …while filtering to an unrelated rule exits clean on the same tree.
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["check", "--rule", "error-codes", "--root"])
        .arg(&dirty.root)
        .output()
        .expect("run filtered check");
    assert!(out.status.success(), "{out:?}");

    // An unknown rule is a usage error.
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["check", "--rule", "no-such-rule", "--root"])
        .arg(&dirty.root)
        .output()
        .expect("run filtered check");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule"));
}

#[test]
fn cli_format_selects_the_stream() {
    use std::process::Command;
    let clean = conforming();
    // ndjson: machine stream only, nothing on stderr.
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["check", "--format", "ndjson", "--root"])
        .arg(&clean.root)
        .output()
        .expect("run ndjson check");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"summary\""));
    assert!(out.stderr.is_empty(), "{out:?}");

    // human: the table alone, on stdout, no JSON anywhere.
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["check", "--format", "human", "--root"])
        .arg(&clean.root)
        .output()
        .expect("run human check");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mithra-lint: clean"), "{stdout}");
    assert!(!stdout.contains("\"summary\""), "{stdout}");
    assert!(out.stderr.is_empty(), "{out:?}");

    // Exit-code semantics are unchanged by the format flag.
    let dirty = conforming().file(
        "crates/service/src/event.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let out = Command::new(env!("CARGO_BIN_EXE_mithra-lint"))
        .args(["check", "--format", "human", "--root"])
        .arg(&dirty.root)
        .output()
        .expect("run human check on dirty tree");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}
